//! Integration test: the full Figure-1/§2.4 "Eve" scenario driven through
//! the public API of the umbrella crate, with the paper's bookkeeping
//! checked at every step.

use aware::core::hypothesis::{HypothesisStatus, NullSpec};
use aware::core::session::Session;
use aware::data::census::CensusGenerator;
use aware::data::predicate::Predicate;
use aware::mht::investing::policies::EpsilonHybrid;
use aware::mht::Decision;

#[test]
fn eve_walkthrough_end_to_end() {
    let table = CensusGenerator::new(1612).generate(30_000);
    let policy = EpsilonHybrid::new(10.0, 10.0, 0.5, None).unwrap();
    let mut eve = Session::new(table, 0.05, policy).unwrap();
    let w0 = eve.wealth();
    assert!((w0 - 0.05 * 0.95).abs() < 1e-12, "W(0) = α(1−α)");

    let over_50k = Predicate::eq("salary_over_50k", true);
    let phd = Predicate::eq("education", "PhD");
    let not_married = Predicate::eq("marital_status", "Married").negate();
    let chain = phd.clone().and(not_married.clone());

    // A: descriptive.
    let a = eve.add_visualization("sex", Predicate::True).unwrap();
    assert!(a.hypothesis.is_none());
    assert_eq!(eve.wealth(), w0, "descriptive views are free");

    // B: m1 (rule 2). sex↔salary is planted → should reject.
    let b = eve.add_visualization("sex", over_50k.clone()).unwrap();
    let (m1, r1) = b.hypothesis.expect("rule 2 fires");
    assert_eq!(r1.decision, Decision::Reject, "p = {}", r1.outcome.p_value);

    // C: m1′ (rule 3) supersedes m1.
    let c = eve
        .add_visualization("sex", over_50k.clone().negate())
        .unwrap();
    let (m1p, r1p) = c.hypothesis.expect("rule 3 fires");
    assert!(matches!(
        eve.hypothesis(m1).unwrap().status,
        HypothesisStatus::Superseded { by } if by == m1p
    ));
    assert_eq!(
        r1p.outcome.kind,
        aware::stats::tests::TestKind::ChiSquareIndependence
    );

    // D: m2. marital|PhD vs global — marital↔education dependent via age.
    let d = eve
        .add_visualization("marital_status", phd.clone())
        .unwrap();
    let (_m2, _) = d.hypothesis.expect("rule 2 fires");

    // E: m3. salary | PhD ∧ ¬married.
    let e = eve
        .add_visualization("salary_over_50k", chain.clone())
        .unwrap();
    let (_m3, r3) = e.hypothesis.expect("rule 2 fires");
    assert!(
        r3.support_fraction < 0.2,
        "chain selects a small population"
    );

    // F: the linked age pair and the t-test override.
    eve.add_visualization("age", chain.clone().and(over_50k.clone()))
        .unwrap();
    let f2 = eve
        .add_visualization("age", chain.clone().and(over_50k.clone().negate()))
        .unwrap();
    let (m4, _) = f2.hypothesis.expect("rule 3 fires on the age pair");
    let (m4p, rec) = eve
        .override_hypothesis(
            m4,
            NullSpec::MeanEquality {
                attribute: "age".into(),
                filter_a: chain.clone().and(over_50k.clone()),
                filter_b: chain.clone().and(over_50k.clone().negate()),
            },
        )
        .unwrap();
    assert_eq!(rec.outcome.kind, aware::stats::tests::TestKind::WelchT);
    assert!(matches!(
        eve.hypothesis(m4).unwrap().status,
        HypothesisStatus::Superseded { by } if by == m4p
    ));

    // Bookkeeping: every decision recorded, none revised, wealth consistent.
    let hypotheses = eve.hypotheses();
    assert_eq!(
        hypotheses.len(),
        7,
        "m1, m1′, m2, m3, m4(f1), m4(pair), m4′"
    );
    let last_wealth = hypotheses
        .iter()
        .filter_map(|h| h.record().map(|r| r.wealth_after))
        .next_back()
        .unwrap();
    assert!((eve.wealth() - last_wealth).abs() < 1e-12);

    // Bookmarks flow into important_discoveries only when discoveries.
    eve.bookmark(m4p).unwrap();
    eve.bookmark(m1p).unwrap();
    let starred = eve.important_discoveries();
    assert!(starred.iter().all(|h| h.is_discovery()));

    // The gauge renders every state without panicking.
    let text = aware::core::gauge::render(&eve);
    assert!(text.contains("ε-hybrid"));
    assert!(text.contains("★"));
}

#[test]
fn session_decisions_survive_deletion_and_more_exploration() {
    let table = CensusGenerator::new(77).generate(10_000);
    let mut s = Session::new(
        table,
        0.05,
        EpsilonHybrid::new(10.0, 10.0, 0.5, None).unwrap(),
    )
    .unwrap();

    let (id, rec) = s
        .add_visualization("education", Predicate::eq("salary_over_50k", true))
        .unwrap()
        .hypothesis
        .unwrap();
    let decision = rec.decision;

    // Delete an unrelated hypothesis, add more views, bookmark things…
    let (other, _) = s
        .add_visualization("race", Predicate::eq("sex", "Female"))
        .unwrap()
        .hypothesis
        .unwrap();
    s.delete_hypothesis(other).unwrap();
    for wave in ["Wave-1", "Wave-2", "Wave-3"] {
        let _ = s.add_visualization("occupation", Predicate::eq("survey_wave", wave));
    }

    // …the original decision is untouched (paper §3 requirement 2).
    assert_eq!(
        s.hypothesis(id).unwrap().record().unwrap().decision,
        decision
    );
}

#[test]
fn session_flip_annotations_are_coherent() {
    let table = CensusGenerator::new(41).generate(10_000);
    let mut s = Session::new(
        table,
        0.05,
        EpsilonHybrid::new(10.0, 10.0, 0.5, None).unwrap(),
    )
    .unwrap();
    let (_, rec) = s
        .add_visualization("education", Predicate::eq("salary_over_50k", true))
        .unwrap()
        .hypothesis
        .unwrap();
    let flip = rec.flip.expect("flip estimate computed");
    match rec.decision {
        Decision::Reject => {
            assert_eq!(
                flip.direction,
                aware::stats::power::FlipDirection::ToAcceptance
            )
        }
        Decision::Accept => {
            assert_eq!(
                flip.direction,
                aware::stats::power::FlipDirection::ToRejection
            )
        }
    }
    assert!(flip.factor >= 1.0);
}
