//! Integration test: the data path — generator → CSV → filters →
//! histograms → χ² — behaves identically across round-trips, and the
//! randomized-census workflow keeps every procedure's FDR in check.

use aware::data::census::CensusGenerator;
use aware::data::csv::{read_csv, write_csv};
use aware::data::hist::{categorical_histogram, contingency_rows};
use aware::data::predicate::Predicate;
use aware::data::sample::downsample;
use aware::mht::registry::ProcedureSpec;
use aware::sim::metrics::RepMetrics;
use aware::sim::workflow::WorkflowGenerator;
use aware::stats::tests::chi_square_independence;

#[test]
fn csv_roundtrip_preserves_statistics() {
    let table = CensusGenerator::new(5).generate(2_000);
    let mut buf = Vec::new();
    write_csv(&table, &mut buf).unwrap();
    let back = read_csv(buf.as_slice()).unwrap();
    assert_eq!(back.rows(), table.rows());
    assert_eq!(back.column_names(), table.column_names());

    // The exact same test on both tables gives the exact same p-value.
    let p_of = |t: &aware::data::table::Table| {
        let hi = Predicate::eq("salary_over_50k", true).eval(t).unwrap();
        let lo = hi.not();
        let a = categorical_histogram(t, "education", Some(&hi)).unwrap();
        let b = categorical_histogram(t, "education", Some(&lo)).unwrap();
        chi_square_independence(&contingency_rows(&a, &b).unwrap())
            .unwrap()
            .p_value
    };
    assert_eq!(p_of(&table), p_of(&back));
}

#[test]
fn downsampling_preserves_schema_and_shrinks_support() {
    let table = CensusGenerator::new(6).generate(5_000);
    let sample = downsample(&table, 0.25, 3).unwrap();
    assert_eq!(sample.rows(), 1_250);
    assert_eq!(sample.column_names(), table.column_names());
    let full_sel = Predicate::eq("education", "PhD").eval(&table).unwrap();
    let small_sel = Predicate::eq("education", "PhD").eval(&sample).unwrap();
    // Selectivity is roughly preserved under uniform sampling.
    assert!((full_sel.selectivity() - small_sel.selectivity()).abs() < 0.03);
}

#[test]
fn randomized_census_yields_no_structural_discoveries() {
    // On the permuted census every workflow hypothesis is null; across
    // procedures the average false-discovery count must stay near the
    // α-investing budget (≈ α per session), nowhere near PCER's blowup.
    let table = CensusGenerator::new(9).generate_randomized(8_000);
    let workflow = WorkflowGenerator::paper_default(12).generate();
    let (ps, supports) = workflow.evaluate(&table);
    let labels = vec![false; ps.len()];

    for spec in ProcedureSpec::exp1b_procedures() {
        let ds = spec.run_with_support(0.05, &ps, &supports).unwrap();
        let m = RepMetrics::score(&ds, &labels);
        assert!(
            m.discoveries <= 4,
            "{spec}: {} discoveries on fully randomized data",
            m.discoveries
        );
    }
    // PCER, for contrast, rejects ~5% of 115 ≈ 6 hypotheses.
    let pcer = RepMetrics::score(&ProcedureSpec::Pcer.run(0.05, &ps).unwrap(), &labels);
    assert!(pcer.discoveries >= 1, "PCER should stumble into something");
}

#[test]
fn oracle_and_bonferroni_labels_are_consistent() {
    let table = CensusGenerator::new(10).generate(20_000);
    let workflow = WorkflowGenerator::paper_default(11).generate();
    let oracle = workflow.oracle_labels();
    let bonf = workflow.bonferroni_labels(&table, 0.05);
    // Bonferroni labels are (almost surely) a subset of the oracle truth:
    // it can miss weak effects but should not invent dependencies.
    let invented = bonf
        .iter()
        .zip(&oracle)
        .filter(|(b, o)| **b && !**o)
        .count();
    assert!(invented <= 1, "Bonferroni invented {invented} dependencies");
    let agreement =
        bonf.iter().zip(&oracle).filter(|(b, o)| b == o).count() as f64 / bonf.len() as f64;
    assert!(agreement > 0.6, "label agreement {agreement}");
}
