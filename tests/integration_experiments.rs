//! Integration test: reduced-scale versions of the paper's experiments
//! must reproduce the qualitative shapes of Figures 3–6. The full-scale
//! regeneration lives in the `aware-sim` binaries; these are the fast
//! guardrails that run on every `cargo test`.

use aware::sim::experiments::{exp1a, holdout, motivating, subset};
use aware::sim::runner::RunConfig;

fn quick(reps: usize) -> RunConfig {
    RunConfig {
        reps,
        threads: 0,
        ..RunConfig::default()
    }
}

#[test]
fn figure3_static_procedure_ordering() {
    let figs = exp1a::run(&quick(80));
    // Panels: [disc75, fdr75, power75, disc100, fdr100].
    let power = &figs[2];
    let fdr100 = &figs[4];
    // At every m: PCER power ≥ BH power ≥ Bonferroni power.
    for row in &power.rows {
        let pcer = row.cells[0].unwrap().mean;
        let bonf = row.cells[1].unwrap().mean;
        let bh = row.cells[2].unwrap().mean;
        assert!(pcer + 1e-9 >= bh, "m={}: PCER {pcer} < BH {bh}", row.x);
        assert!(
            bh + 0.02 >= bonf,
            "m={}: BH {bh} < Bonferroni {bonf}",
            row.x
        );
    }
    // On fully random data, PCER's FDR grows with m; BH's does not.
    let first = fdr100.rows.first().unwrap();
    let last = fdr100.rows.last().unwrap();
    assert!(last.cells[0].unwrap().mean > first.cells[0].unwrap().mean);
    assert!(last.cells[2].unwrap().mean <= 0.05 + 0.03);
}

#[test]
fn motivating_example_reproduces_the_headline_numbers() {
    let figs = motivating::run(&quick(200));
    let fig = &figs[0];
    // Theory column: 12.5 expected discoveries, 36% false share.
    assert!((fig.rows[0].cells[0].unwrap().mean - 12.5).abs() < 1e-9);
    assert!((fig.rows[1].cells[0].unwrap().mean - 0.36).abs() < 0.001);
    // Simulated PCER lands on the same numbers.
    let sim_disc = fig.rows[0].cells[1].unwrap();
    assert!((sim_disc.mean - 12.5).abs() < 3.0 * sim_disc.half_width + 0.3);
}

#[test]
fn holdout_analysis_matches_paper() {
    let figs = holdout::run(&quick(300));
    let fig = &figs[0];
    let power_full = fig.rows[0].cells[0].unwrap().mean;
    let power_split = fig.rows[1].cells[0].unwrap().mean;
    assert!(power_full > 0.985);
    assert!((0.73..0.79).contains(&power_split), "{power_split}");
    // The simulated split power is far below the full-data power.
    let sim_full = fig.rows[0].cells[1].unwrap().mean;
    let sim_split = fig.rows[1].cells[1].unwrap().mean;
    assert!(sim_full - sim_split > 0.1);
}

#[test]
fn theorem1_subset_experiment_shape() {
    let figs = subset::run(&quick(300));
    let fig = &figs[0];
    let all = fig.rows[0].cells[0].unwrap().mean;
    let random = fig.rows[1].cells[0].unwrap().mean;
    let adversarial = fig.rows[3].cells[0].unwrap().mean;
    assert!(all <= subset::SUBSET_ALPHA + 0.05, "base FDR {all}");
    assert!(
        random <= subset::SUBSET_ALPHA + 0.06,
        "random subset {random}"
    );
    assert!(
        adversarial > random,
        "adversarial {adversarial} vs random {random}"
    );
}
