//! Integration test: cross-crate statistical guarantees. Real p-values
//! from `aware-stats` tests flow through every `aware-mht` procedure, and
//! the paper's headline claims are checked empirically.

use aware::mht::decision::num_rejections;
use aware::mht::registry::ProcedureSpec;
use aware::sim::metrics::RepMetrics;
use aware::sim::workload::SyntheticWorkload;

fn all_procedures() -> Vec<ProcedureSpec> {
    let mut v = ProcedureSpec::exp1a_procedures();
    v.extend(ProcedureSpec::exp1b_procedures());
    v.extend(ProcedureSpec::extension_procedures());
    v
}

/// Weak FWER control: under the complete null, P(any rejection) ≤ α for
/// every procedure except PCER (for which the paper's whole point is that
/// it explodes).
#[test]
fn weak_fwer_under_complete_null() {
    let workload = SyntheticWorkload::paper_default(32, 1.0);
    let reps = 400;
    for spec in all_procedures() {
        if spec == ProcedureSpec::Pcer {
            continue;
        }
        let mut any_rejection = 0;
        for seed in 0..reps {
            let s = workload.generate(seed);
            let ds = spec
                .run_with_support(0.05, &s.p_values, &s.support_fractions)
                .unwrap();
            if num_rejections(&ds) > 0 {
                any_rejection += 1;
            }
        }
        let fwer = any_rejection as f64 / reps as f64;
        // Binomial CI slack at 400 reps: ~2.2%.
        assert!(fwer <= 0.05 + 0.035, "{spec}: weak FWER {fwer}");
    }
}

/// PCER's family-wise error explodes with m — the §1 motivation.
#[test]
fn pcer_family_wise_error_explodes() {
    let workload = SyntheticWorkload::paper_default(32, 1.0);
    let mut any_rejection = 0;
    let reps = 200;
    for seed in 0..reps {
        let s = workload.generate(seed);
        let ds = ProcedureSpec::Pcer.run(0.05, &s.p_values).unwrap();
        if num_rejections(&ds) > 0 {
            any_rejection += 1;
        }
    }
    let fwer = any_rejection as f64 / reps as f64;
    // 1 − 0.95³² ≈ 0.81.
    assert!(fwer > 0.6, "PCER FWER {fwer} should be far above α");
}

/// Interactive procedures never overturn decisions: prefix stability over
/// real simulated streams, for every interactive spec in the registry.
#[test]
fn interactive_procedures_are_prefix_stable() {
    let workload = SyntheticWorkload::paper_default(24, 0.5);
    for spec in all_procedures() {
        if !spec.is_interactive() {
            continue;
        }
        for seed in 0..5 {
            let s = workload.generate(seed);
            let full = spec
                .run_with_support(0.05, &s.p_values, &s.support_fractions)
                .unwrap();
            for k in [1usize, 7, 13, 24] {
                let prefix = spec
                    .run_with_support(0.05, &s.p_values[..k], &s.support_fractions[..k])
                    .unwrap();
                assert_eq!(prefix, full[..k].to_vec(), "{spec} prefix {k}");
            }
        }
    }
}

/// ForwardStop (SeqFDR) is *not* prefix stable — the very property that
/// disqualifies it for interactive exploration (§5 opening).
#[test]
fn forward_stop_is_not_prefix_stable() {
    let ps = [0.12, 0.0001, 0.0001, 0.0001];
    let spec = ProcedureSpec::ForwardStop;
    let full = spec.run(0.05, &ps).unwrap();
    let prefix = spec.run(0.05, &ps[..1]).unwrap();
    assert_ne!(prefix[0], full[0], "late evidence flips the first decision");
}

/// mFDR control on mixed streams for the α-investing rules: average
/// V/(R+1) over many sessions stays ≤ α (the quantity the procedure
/// actually bounds, with η = 1).
#[test]
fn investing_rules_control_mfdr_on_mixed_streams() {
    let workload = SyntheticWorkload::paper_default(48, 0.75);
    for spec in ProcedureSpec::exp1b_procedures() {
        if spec == ProcedureSpec::ForwardStop {
            continue;
        }
        let reps = 300;
        let mut v_sum = 0.0;
        let mut r_sum = 0.0;
        for seed in 0..reps {
            let s = workload.generate(seed);
            let ds = spec
                .run_with_support(0.05, &s.p_values, &s.support_fractions)
                .unwrap();
            let m = RepMetrics::score(&ds, &s.truth);
            v_sum += m.false_discoveries as f64;
            r_sum += m.discoveries as f64;
        }
        let mfdr = (v_sum / reps as f64) / (r_sum / reps as f64 + 1.0);
        assert!(mfdr <= 0.05 + 0.02, "{spec}: mFDR₁ = {mfdr}");
    }
}

/// Static FDR procedures agree with hand-computed decisions when fed
/// p-values produced by the stats crate's own tests.
#[test]
fn real_p_values_flow_through_batch_procedures() {
    use aware::stats::tests::{welch_t_test, Alternative};
    // Build 6 two-sample comparisons: 3 with real effects, 3 without.
    let base: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut p_values = Vec::new();
    for shift in [2.0, 1.5, 1.0, 0.0, 0.0, 0.0] {
        let shifted: Vec<f64> = base.iter().map(|x| x + shift).collect();
        let out = welch_t_test(&base, &shifted, Alternative::TwoSided).unwrap();
        p_values.push(out.p_value);
    }
    let bh = ProcedureSpec::BenjaminiHochberg
        .run(0.05, &p_values)
        .unwrap();
    // The three real effects are found; the three identical-sample tests
    // (p = 1) are not.
    for i in 0..3 {
        assert!(
            bh[i].is_rejection(),
            "effect {i} missed, p = {}",
            p_values[i]
        );
    }
    for i in 3..6 {
        assert!(
            !bh[i].is_rejection(),
            "null {i} rejected, p = {}",
            p_values[i]
        );
    }
}
