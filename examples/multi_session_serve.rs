//! Multi-session serving: many explorers, one dataset, one mFDR budget
//! *per explorer*.
//!
//! Run with `cargo run -p aware --example multi_session_serve --release`.
//!
//! Three "users" explore the same census concurrently through the
//! `aware-serve` service. Each gets an isolated α-investing session —
//! user A burning budget on null questions never affects user B's
//! wealth — while the immutable table is shared (`Arc`) across all of
//! them.

use aware::data::census::CensusGenerator;
use aware_data::predicate::CmpOp;
use aware_data::value::Value;
use aware_serve::proto::{Command, FilterSpec, PolicySpec, TranscriptFormat};
use aware_serve::service::{Service, ServiceConfig};
use aware_serve::Response;

fn eq(column: &str, value: Value) -> FilterSpec {
    FilterSpec::Cmp {
        column: column.into(),
        op: CmpOp::Eq,
        value,
    }
}

fn main() {
    let service = Service::start(ServiceConfig::default());
    let handle = service.handle();
    handle.register_table("census", CensusGenerator::new(2024).generate(20_000));

    // Three users with different investing temperaments.
    let users = [
        ("alice", PolicySpec::Fixed { gamma: 10.0 }),
        ("bob", PolicySpec::Hopeful { delta: 5.0 }),
        (
            "carol",
            PolicySpec::PsiSupport {
                gamma: 10.0,
                psi: 0.5,
            },
        ),
    ];

    std::thread::scope(|scope| {
        for (name, policy) in users {
            let handle = handle.clone();
            scope.spawn(move || {
                let sid = match handle.call(Command::CreateSession {
                    dataset: "census".into(),
                    alpha: 0.05,
                    policy,
                }) {
                    Response::SessionCreated {
                        session,
                        policy,
                        wealth,
                    } => {
                        println!("[{name}] session {session} open: {policy}, wealth {wealth:.4}");
                        session
                    }
                    other => panic!("{other:?}"),
                };

                // The same exploration each: one descriptive view, then
                // filtered views that trigger hypothesis tests — fired
                // as ONE protocol-v2 batch. The service executes the
                // whole same-session run as a pinned unit, so the
                // α-investing decision order is exactly what four
                // separate calls would have produced, for one round
                // trip's worth of dispatch.
                let views: [(&str, FilterSpec); 4] = [
                    ("sex", FilterSpec::True),
                    ("education", eq("salary_over_50k", Value::Bool(true))),
                    ("race", eq("survey_wave", Value::Str("Wave-2".into()))),
                    ("marital_status", eq("education", Value::Str("PhD".into()))),
                ];
                let batch = views
                    .iter()
                    .map(|(attribute, filter)| Command::AddVisualization {
                        session: sid,
                        attribute: (*attribute).into(),
                        filter: filter.clone(),
                    })
                    .collect();
                for ((attribute, _), response) in views.iter().zip(handle.call_batch(batch)) {
                    match response {
                        Response::VizAdded {
                            hypothesis: Some(h),
                            ..
                        } => println!(
                            "[{name}] {attribute}: p = {:.2e} -> {}",
                            h.p_value,
                            if h.rejected {
                                "DISCOVERY"
                            } else {
                                "accept null"
                            },
                        ),
                        Response::VizAdded {
                            hypothesis: None, ..
                        } => {
                            println!("[{name}] {attribute}: descriptive (no α spent)")
                        }
                        Response::Error(e) => println!("[{name}] {attribute}: {e}"),
                        other => panic!("{other:?}"),
                    }
                }

                if let Response::TranscriptText { text, .. } = handle.call(Command::Transcript {
                    session: sid,
                    format: TranscriptFormat::Text,
                }) {
                    let header = text.lines().take(2).collect::<Vec<_>>().join("\n");
                    println!("[{name}] final state:\n{header}");
                }
            });
        }
    });

    if let Response::Stats(s) = handle.call(Command::Stats) {
        println!(
            "server totals: {} sessions, {} hypotheses, {} discoveries, {} commands",
            s.sessions_created, s.hypotheses_tested, s.discoveries, s.commands
        );
    }
}
