//! Eve's exploration session — the paper's Figure 1 / §2.4 walk-through,
//! replayed end to end through the public API.
//!
//! Steps:
//!   A  gender, unfiltered                      → descriptive, no test
//!   B  gender | salary>50k                     → m1  (rule 2, χ² GoF)
//!   C  gender | ¬(salary>50k), linked to B     → m1′ (rule 3, χ² indep.; supersedes m1)
//!   D  marital | education=PhD                 → m2  (rule 2)
//!   E  salary | PhD ∧ ¬married                 → m3  (rule 2)
//!   F  age | chain ∧ salary>50k  vs  age | chain ∧ ¬(salary>50k)
//!        → m4 (rule 3) which Eve overrides to m4′, a t-test on mean age —
//!          the one test she performs *explicitly* in the paper.
//!
//! Run with `cargo run -p aware --example eve_session`.

use aware::core::gauge;
use aware::core::hypothesis::NullSpec;
use aware::core::session::Session;
use aware::data::census::CensusGenerator;
use aware::data::predicate::Predicate;
use aware::mht::investing::policies::EpsilonHybrid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = CensusGenerator::new(1612).generate(30_000);
    // ε-hybrid, the paper's most robust rule, with its §7.2 parameters.
    let policy = EpsilonHybrid::new(10.0, 10.0, 0.5, None)?;
    let mut eve = Session::new(table, 0.05, policy)?;

    let over_50k = Predicate::eq("salary_over_50k", true);
    let phd = Predicate::eq("education", "PhD");
    let not_married = Predicate::eq("marital_status", "Married").negate();
    let chain = phd.clone().and(not_married.clone());

    // Step A — overview of gender. Just looking.
    let a = eve.add_visualization("sex", Predicate::True)?;
    assert!(a.hypothesis.is_none());
    println!(
        "A: descriptive view of `sex` — no hypothesis, wealth {:.4}",
        eve.wealth()
    );

    // Step B — gender filtered by high salary: m1.
    let b = eve.add_visualization("sex", over_50k.clone())?;
    report("B (m1)", &b);

    // Step C — the inverted selection next to it: m1′ supersedes m1.
    let c = eve.add_visualization("sex", over_50k.clone().negate())?;
    report("C (m1′ supersedes m1)", &c);

    // Step D — marital status of PhDs: m2.
    let d = eve.add_visualization("marital_status", phd.clone())?;
    report("D (m2)", &d);

    // Step E — salary of unmarried PhDs: m3.
    let e = eve.add_visualization("salary_over_50k", chain.clone())?;
    report("E (m3)", &e);

    // Step F — the two age histograms for the chain, high vs low salary.
    let f1 = eve.add_visualization("age", chain.clone().and(over_50k.clone()))?;
    report("F₁ (m4 pending pair)", &f1);
    let f2 = eve.add_visualization("age", chain.clone().and(over_50k.clone().negate()))?;
    report("F₂ (m4, rule 3)", &f2);

    // Eve drags the charts together for an explicit t-test: m4′.
    let (m4, _) = f2.hypothesis.expect("rule 3 fired");
    let (m4_prime, record) = eve.override_hypothesis(
        m4,
        NullSpec::MeanEquality {
            attribute: "age".into(),
            filter_a: chain.clone().and(over_50k.clone()),
            filter_b: chain.clone().and(over_50k.clone().negate()),
        },
    )?;
    println!(
        "F (m4′ override): t-test p = {:.4}, decision = {}, cohen's d = {:.3}",
        record.outcome.p_value, record.decision, record.outcome.effect_size
    );

    // Eve stars the finding she wants to present.
    eve.bookmark(m4_prime)?;

    println!("\n{}", gauge::render(&eve));
    println!(
        "\nEve's starred discoveries keep mFDR ≤ {:.0}% by Theorem 1: {:?}",
        eve.alpha() * 100.0,
        eve.important_discoveries()
            .iter()
            .map(|h| h.id.to_string())
            .collect::<Vec<_>>()
    );
    Ok(())
}

fn report(step: &str, out: &aware::core::session::VizOutcome) {
    match &out.hypothesis {
        Some((id, r)) => println!(
            "{step}: {id} p = {:.4} vs bid {:.4} → {}",
            r.outcome.p_value, r.bid, r.decision
        ),
        None => println!("{step}: no hypothesis"),
    }
}
