//! Quickstart: open an AWARE session, explore, and read the risk gauge.
//!
//! Run with `cargo run -p aware --example quickstart`.

use aware::core::gauge;
use aware::core::session::Session;
use aware::data::census::CensusGenerator;
use aware::data::predicate::Predicate;
use aware::mht::investing::policies::Fixed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A census-like table with known planted dependencies.
    let table = CensusGenerator::new(2024).generate(20_000);

    // Control mFDR at 5% with the γ-fixed investing rule (γ = 10).
    let mut session = Session::new(table, 0.05, Fixed::new(10.0))?;

    // An unfiltered overview is descriptive — no hypothesis, no α spent.
    session.add_visualization("sex", Predicate::True)?;

    // Filtered views become hypotheses automatically (heuristic rule 2).
    let out = session.add_visualization("education", Predicate::eq("salary_over_50k", true))?;
    if let Some((id, record)) = out.hypothesis {
        println!(
            "{id}: p = {:.2e}, decision = {}, effect = {:.3}",
            record.outcome.p_value, record.decision, record.outcome.effect_size
        );
        // Star it for the report; Theorem 1 keeps the starred subset's
        // mFDR at the same 5%.
        session.bookmark(id)?;
    }

    // A known-null attribute: the gauge should (usually) show an accept.
    session.add_visualization("race", Predicate::eq("salary_over_50k", true))?;

    println!("\n{}", gauge::render(&session));
    println!(
        "\nimportant discoveries: {}",
        session
            .important_discoveries()
            .iter()
            .map(|h| h.null.alternative_label())
            .collect::<Vec<_>>()
            .join("; ")
    );
    Ok(())
}
