//! Compares every incremental procedure on one synthetic exploration
//! stream — a miniature of the paper's Exp.1b you can read in seconds.
//!
//! Run with `cargo run -p aware --release --example policy_comparison`.

use aware::mht::registry::ProcedureSpec;
use aware::sim::metrics::{aggregate, RepMetrics};
use aware::sim::runner::{par_map, RunConfig};
use aware::sim::workload::SyntheticWorkload;

fn main() {
    let cfg = RunConfig {
        reps: 400,
        ..RunConfig::default()
    };
    println!(
        "m = 64 hypotheses/session, 75% true nulls, α = {}, {} replications\n",
        cfg.alpha, cfg.reps
    );
    println!(
        "{:<14}{:>14}{:>14}{:>14}",
        "procedure", "avg disc.", "avg FDR", "avg power"
    );

    let workload = SyntheticWorkload::paper_default(64, 0.75);
    let mut specs = ProcedureSpec::exp1a_procedures();
    specs.extend(ProcedureSpec::exp1b_procedures());
    specs.extend(ProcedureSpec::extension_procedures());

    for spec in specs {
        let reps: Vec<RepMetrics> = par_map(&cfg, |seed| {
            let s = workload.generate(seed);
            let ds = spec
                .run_with_support(cfg.alpha, &s.p_values, &s.support_fractions)
                .expect("valid stream");
            RepMetrics::score(&ds, &s.truth)
        });
        let agg = aggregate(&reps, cfg.ci_level);
        println!(
            "{:<14}{:>14}{:>14}{:>14}",
            spec.label(),
            format!("{:.2}", agg.avg_discoveries.mean),
            format!("{:.3}", agg.avg_fdr.mean),
            agg.avg_power
                .map(|p| format!("{:.3}", p.mean))
                .unwrap_or_else(|| "—".into()),
        );
    }
    println!(
        "\nReading guide: PCER's FDR ignores α; Bonferroni trades almost all power \
         for FWER; the α-investing rules keep FDR ≤ α while staying incremental \
         and interactive."
    );
}
