//! Renders the Figure-2 risk gauge for a longer unscripted exploration,
//! including wealth exhaustion — what the end of an AWARE session looks
//! like when a user keeps chasing noise.
//!
//! Run with `cargo run -p aware --example risk_gauge`.

use aware::core::gauge;
use aware::core::session::Session;
use aware::data::census::{CensusGenerator, EDUCATION, MARITAL, RACE, REGION, WAVE};
use aware::data::predicate::Predicate;
use aware::mht::investing::policies::Hopeful;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = CensusGenerator::new(99).generate(15_000);
    // δ-hopeful: aggressive re-investment; drains fast on null-heavy paths.
    let mut session = Session::new(table, 0.05, Hopeful::new(10.0))?;

    // A realistic meander: a couple of real effects, then a long dig
    // through attributes that contain nothing.
    let mut probes: Vec<(&str, Predicate)> = vec![
        ("education", Predicate::eq("salary_over_50k", true)),
        ("hours_per_week", Predicate::eq("sex", "Male")),
    ];
    for label in RACE {
        probes.push(("salary_over_50k", Predicate::eq("race", label)));
    }
    for label in REGION {
        probes.push(("education", Predicate::eq("native_region", label)));
    }
    for label in WAVE {
        probes.push(("marital_status", Predicate::eq("survey_wave", label)));
    }
    for label in EDUCATION {
        probes.push(("race", Predicate::eq("education", label)));
    }
    for label in MARITAL {
        probes.push(("native_region", Predicate::eq("marital_status", label)));
    }

    let mut stopped_at = None;
    for (i, (attribute, filter)) in probes.into_iter().enumerate() {
        match session.add_visualization(attribute, filter) {
            Ok(_) => {}
            Err(e) if e.is_wealth_exhausted() => {
                stopped_at = Some(i);
                break;
            }
            Err(e) => return Err(e.into()),
        }
    }

    println!("{}", gauge::render(&session));
    match stopped_at {
        Some(i) => println!(
            "\nα-wealth exhausted at probe {i}: AWARE refuses further tests — \
             continuing would break the mFDR ≤ {:.0}% guarantee (§5.8).",
            session.alpha() * 100.0
        ),
        None => println!(
            "\nwealth remaining: {:.4} — the session could continue.",
            session.wealth()
        ),
    }
    Ok(())
}
