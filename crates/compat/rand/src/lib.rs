//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to a crates registry, so the
//! workspace vendors the narrow API subset it actually uses: a seedable
//! small PRNG (`rngs::SmallRng`), the [`Rng`] sampling surface
//! (`gen`, `gen_range`, `gen_bool`), and `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets. Sampling
//! conventions follow `rand 0.8`: `gen::<f64>()` is uniform on `[0, 1)`
//! from the top 53 bits, integer ranges use rejection-free multiply-shift
//! (Lemire) reduction, and `shuffle` is a Fisher–Yates walk from the back.
//! Streams are deterministic per seed but are **not** bit-identical to the
//! real crate; workspace tests assert statistical properties, not exact
//! draws.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`f64` uniform on `[0,1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from raw bits without parameters.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against round-up to the exclusive bound; `next_down`
        // lands on the largest representable value below `end` at any
        // magnitude (a relative-epsilon nudge would round back to `end`
        // for wide-ULP ranges like 1e16..1e16+2).
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        // Map the closed interval through 53-bit resolution; the top value
        // is reachable, matching rand's inclusive sampler semantics.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// Uniform integer in `[0, span)` via 128-bit multiply-shift with a
/// rejection step to remove modulo bias (Lemire 2019). `span == 0` means
/// the full 2^64 range.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable, non-cryptographic PRNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion; guarantees a non-zero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence utilities (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(18..55);
            assert!((18..55).contains(&a));
            let b = rng.gen_range(0.01..=1.0);
            assert!((0.01..=1.0).contains(&b));
            let c = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(c > 0.0 && c < 1.0);
            let d: usize = rng.gen_range(0..3usize);
            assert!(d < 3);
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }
}
