//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), range
//! and tuple strategies, [`any`], [`collection::vec`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its case number and seed
//!   instead of a minimized input;
//! * inputs are drawn from a per-test deterministic PRNG (seeded by the
//!   test name), so failures reproduce across runs and machines.

// The `proptest!` doc example necessarily shows `#[test]` inside the
// macro invocation — that is the crate's API — so the doctest cannot
// execute it as a test; the macro-expansion tests below cover it.
#![allow(clippy::test_attr_in_doctest)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Per-test configuration. Only `cases` is honoured, and the
/// `AWARE_PROPTEST_CASES` environment variable overrides it globally
/// (see [`ProptestConfig::effective_cases`]).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// The case count after the `AWARE_PROPTEST_CASES` override.
    ///
    /// When the variable is set (CI's deep-props sweep exports 1024),
    /// it replaces every per-test count, so raised runs need no edits
    /// to the suites; unset or unparsable, the configured count
    /// stands.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("AWARE_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Why a property case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Hard failure: the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject(String),
}

impl TestCaseError {
    /// A hard failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A skipped (assumption-rejected) case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The RNG handed to strategies. Deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeds from an arbitrary string (the test's name).
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name: stable across runs, compilers, platforms.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (the real proptest's
    /// `prop_map`, minus shrinking — this shim never shrinks).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strategy.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Strategy for "any value of `T`" (standard distribution).
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the canonical whole-type strategy.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let m: f64 = rng.gen_range(-1.0..1.0);
        let e: i32 = rng.gen_range(-64..64);
        m * (2.0f64).powi(e)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Accepted size specifications for [`vec`]: a fixed length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "vec strategy: empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body; ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}/{}: {}",
                                stringify!($name), case + 1, cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body (fails the case, not the
/// whole process, so the harness can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.05f64..50.0, n in 1usize..40, b in any::<bool>()) {
            prop_assert!((0.05..50.0).contains(&x));
            prop_assert!((1..40).contains(&n));
            let _ = b;
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(0.0f64..=1.0, 3..40)) {
            prop_assert!((3..40).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
        }

        #[test]
        fn tuples_and_assume(pair in (0u64..10, 0u64..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(v in crate::collection::vec(any::<bool>(), 8)) {
            prop_assert_eq!(v.len(), 8);
        }
    }

    #[test]
    fn failures_report_case_number() {
        // A deliberately failing property, run through the same machinery.
        // No #[test] attribute on the inner property: it must not register
        // with the harness, we invoke it by hand.
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u64..10) {
                    prop_assert!(x > 100, "x = {} is not > 100", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("case 1/"), "{msg}");
    }
}
