//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! throughput annotations, and the `criterion_group!` / `criterion_main!`
//! macros — with a simple but honest timing loop: warm-up, then timed
//! batches until the measurement window closes, reporting the median
//! batch's per-iteration time and derived throughput.
//!
//! When invoked with `--test` (as `cargo test --benches` does) every
//! benchmark runs exactly one iteration, so benches double as smoke tests
//! without burning CI time.

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` like the real crate.
pub use std::hint::black_box;

/// Top-level harness state and configuration.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 30,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the target number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(self, &id.render(), None, &mut f);
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function` at `parameter` (rendered `fn/param`).
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Only a parameter, for groups benchmarking one function.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (rows, commands, hypotheses …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim times the routine only,
/// so the variants are equivalent and kept for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a per-iteration workload size.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_bench(self.criterion, &label, self.throughput, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        run_bench(self.criterion, &label, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report flushing is per-benchmark in the shim).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; drives the timing loop.
pub struct Bencher {
    iters_per_sample: u64,
    samples_ns: Vec<f64>, // per-iteration nanoseconds, one entry per sample
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, which is called `iters_per_sample` times per
    /// timed sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.samples_ns.push(0.0);
            return;
        }
        let n = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        self.samples_ns.push(elapsed / n as f64);
    }

    /// Times `routine` on fresh values from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<S, R, FS, FR>(&mut self, mut setup: FS, mut routine: FR, _size: BatchSize)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> R,
    {
        if self.test_mode {
            let input = setup();
            black_box(routine(input));
            self.samples_ns.push(0.0);
            return;
        }
        let n = self.iters_per_sample.max(1);
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples_ns.push(total.as_nanos() as f64 / n as f64);
    }
}

/// Appends one benchmark record to the JSON-lines file named by the
/// `BENCH_JSON` environment variable (no-op when unset). CI points this
/// at an artifact (e.g. `BENCH_serve.json`) so the perf trajectory is
/// tracked across PRs; test-mode runs record `"mode":"test"` with zero
/// timings, real runs record the measured median and rate.
fn record_json(label: &str, mode: &str, median_ns: f64, throughput: Option<Throughput>) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    record_json_to(&path, label, mode, median_ns, throughput);
}

fn record_json_to(
    path: &str,
    label: &str,
    mode: &str,
    median_ns: f64,
    throughput: Option<Throughput>,
) {
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    let rate = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
            n as f64 / (median_ns * 1e-9)
        }
        _ => 0.0,
    };
    let unit = match throughput {
        Some(Throughput::Bytes(_)) => "bytes_per_sec",
        _ => "elements_per_sec",
    };
    let line = format!(
        "{{\"bench\":\"{escaped}\",\"mode\":\"{mode}\",\"median_ns\":{median_ns:.1},\"{unit}\":{rate:.1}}}\n",
    );
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
}

fn run_bench<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    if c.test_mode {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples_ns: Vec::new(),
            test_mode: true,
        };
        f(&mut b);
        println!("test-mode bench {label}: ok");
        record_json(label, "test", 0.0, throughput);
        return;
    }

    // Warm-up and calibration: find an iteration count whose sample takes
    // roughly measurement/sample_size, by doubling from 1.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    let target_sample = c.measurement.div_f64(c.sample_size as f64);
    loop {
        let mut b = Bencher {
            iters_per_sample: iters,
            samples_ns: Vec::new(),
            test_mode: false,
        };
        let t0 = Instant::now();
        f(&mut b);
        let sample_time = t0.elapsed();
        if warm_start.elapsed() >= c.warm_up || sample_time >= target_sample {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    // Measurement: repeat samples until the window closes.
    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    let meas_start = Instant::now();
    while samples.len() < c.sample_size && meas_start.elapsed() < c.measurement {
        let mut b = Bencher {
            iters_per_sample: iters,
            samples_ns: Vec::new(),
            test_mode: false,
        };
        f(&mut b);
        samples.extend(b.samples_ns);
    }
    if samples.is_empty() {
        let mut b = Bencher {
            iters_per_sample: iters,
            samples_ns: Vec::new(),
            test_mode: false,
        };
        f(&mut b);
        samples.extend(b.samples_ns);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];

    record_json(label, "measured", median, throughput);
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12}/s", si(n as f64 / (median * 1e-9))),
        Throughput::Bytes(n) => format!("  {:>10}B/s", si(n as f64 / (median * 1e-9))),
    });
    println!(
        "bench {label:<55} {:>12}/iter  [{} .. {}]{}",
        ns(median),
        ns(lo),
        ns(hi),
        rate.unwrap_or_default()
    );
}

fn ns(v: f64) -> String {
    if v < 1_000.0 {
        format!("{v:.1} ns")
    } else if v < 1_000_000.0 {
        format!("{:.2} µs", v / 1_000.0)
    } else if v < 1_000_000_000.0 {
        format!("{:.2} ms", v / 1_000_000.0)
    } else {
        format!("{:.3} s", v / 1_000_000_000.0)
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Declares a group of benchmark functions, optionally with a shared
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn harness_runs_benches() {
        // Tiny windows so the test finishes instantly.
        let mut c = Criterion {
            test_mode: false,
            ..Criterion::default()
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(10))
                .sample_size(3)
        };
        sample_bench(&mut c);
    }

    #[test]
    fn test_mode_runs_single_iterations() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        sample_bench(&mut c);
    }

    #[test]
    fn bench_json_records_are_well_formed() {
        let dir = std::env::temp_dir().join(format!("bench_json_{}", std::process::id()));
        let path = dir.join("BENCH_test.json");
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(&path);
        let path_str = path.to_str().unwrap();
        record_json_to(
            path_str,
            "group/\"case\"/1",
            "measured",
            2_000.0,
            Some(Throughput::Elements(64)),
        );
        record_json_to(path_str, "group/case/8", "test", 0.0, None);
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"mode\":\"measured\""));
        assert!(
            lines[0].contains("\\\"case\\\""),
            "quote escaped: {}",
            lines[0]
        );
        assert!(lines[0].contains("\"elements_per_sec\":32000000.0"));
        assert!(lines[1].contains("\"median_ns\":0.0"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 10).render(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").render(), "x");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
