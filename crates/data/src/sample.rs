//! Seeded sampling utilities.
//!
//! Three operations from the paper's evaluation:
//!
//! * **down-sampling** — Exp.2 replays user workflows on 10–90% samples of
//!   the census table to inject sampling uncertainty;
//! * **hold-out splits** — the §4.1 discussion of exploration/validation
//!   datasets;
//! * **independent column permutation** — the "randomized Census" workload,
//!   which preserves every marginal distribution while destroying every
//!   association, making all independence hypotheses truly null.

use crate::table::Table;
use crate::{DataError, Result};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Draws a uniform sample of `fraction · rows` rows without replacement.
///
/// Row order of the sample follows the original table order (sorted
/// indices), which keeps downstream iteration cache-friendly.
pub fn downsample(table: &Table, fraction: f64, seed: u64) -> Result<Table> {
    if !(0.0 < fraction && fraction <= 1.0) {
        return Err(DataError::InvalidArgument {
            context: "downsample",
            constraint: "0 < fraction <= 1",
        });
    }
    let n = ((table.rows() as f64) * fraction).round() as usize;
    downsample_n(table, n.max(1), seed)
}

/// Draws exactly `n` rows without replacement (errors if `n > rows`).
pub fn downsample_n(table: &Table, n: usize, seed: u64) -> Result<Table> {
    if n == 0 || n > table.rows() {
        return Err(DataError::InvalidArgument {
            context: "downsample_n",
            constraint: "1 <= n <= table.rows()",
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut indices = reservoir_indices(table.rows(), n, &mut rng);
    indices.sort_unstable();
    take_rows(table, &indices)
}

/// Splits the table into `(exploration, validation)` parts, the §4.1
/// hold-out construction. `fraction` is the exploration share.
pub fn split_holdout(table: &Table, fraction: f64, seed: u64) -> Result<(Table, Table)> {
    if !(0.0 < fraction && fraction < 1.0) {
        return Err(DataError::InvalidArgument {
            context: "split_holdout",
            constraint: "0 < fraction < 1",
        });
    }
    let n = table.rows();
    let k = (((n as f64) * fraction).round() as usize).clamp(1, n - 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    let mut left: Vec<usize> = perm[..k].to_vec();
    let mut right: Vec<usize> = perm[k..].to_vec();
    left.sort_unstable();
    right.sort_unstable();
    Ok((take_rows(table, &left)?, take_rows(table, &right)?))
}

/// Independently permutes every column, destroying all cross-column
/// associations while preserving each marginal exactly.
///
/// This is the paper's "randomized Census data" (§7.3): after permutation
/// every between-attribute hypothesis is a true null, so any discovery a
/// procedure makes is a false discovery by construction.
pub fn permute_columns(table: &Table, seed: u64) -> Result<Table> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = table.rows();
    let columns = table
        .column_names()
        .iter()
        .map(|name| {
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let col = table.column(name).expect("name from table").take(&perm);
            (name.clone(), col)
        })
        .collect();
    Table::new(columns)
}

/// Uniform sample of `k` distinct indices from `0..n` (Vitter's reservoir).
fn reservoir_indices<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut reservoir: Vec<usize> = (0..k).collect();
    for i in k..n {
        let j = rng.gen_range(0..=i);
        if j < k {
            reservoir[j] = i;
        }
    }
    reservoir
}

fn take_rows(table: &Table, rows: &[usize]) -> Result<Table> {
    let columns = table
        .column_names()
        .iter()
        .map(|name| {
            (
                name.clone(),
                table.column(name).expect("name from table").take(rows),
            )
        })
        .collect();
    Table::new(columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::hist::histogram;
    use crate::table::TableBuilder;

    fn demo(n: usize) -> Table {
        TableBuilder::new()
            .push("id", Column::Int64((0..n as i64).collect()))
            .push(
                "grp",
                Column::categorical_from_strs(
                    &(0..n)
                        .map(|i| if i % 3 == 0 { "a" } else { "b" })
                        .collect::<Vec<_>>(),
                ),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn downsample_sizes_and_determinism() {
        let t = demo(1000);
        let s = downsample(&t, 0.3, 7).unwrap();
        assert_eq!(s.rows(), 300);
        let s2 = downsample(&t, 0.3, 7).unwrap();
        assert_eq!(s, s2);
        let s3 = downsample(&t, 0.3, 8).unwrap();
        assert_ne!(s, s3);
        assert_eq!(downsample(&t, 1.0, 1).unwrap().rows(), 1000);
        assert!(downsample(&t, 0.0, 1).is_err());
        assert!(downsample(&t, 1.5, 1).is_err());
    }

    #[test]
    fn downsample_has_no_duplicates() {
        let t = demo(500);
        let s = downsample_n(&t, 200, 42).unwrap();
        let ids = s.numeric_values("id", None).unwrap();
        let mut sorted = ids.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 200);
        // Sample preserves original row order.
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(downsample_n(&t, 0, 1).is_err());
        assert!(downsample_n(&t, 501, 1).is_err());
    }

    #[test]
    fn downsample_is_roughly_uniform() {
        // Sample 50% many times; each row should appear ~half the time.
        let t = demo(100);
        let mut hits = vec![0u32; 100];
        for seed in 0..200 {
            let s = downsample_n(&t, 50, seed).unwrap();
            for id in s.numeric_values("id", None).unwrap() {
                hits[id as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!((60..=140).contains(&h), "row {i} sampled {h}/200 times");
        }
    }

    #[test]
    fn holdout_partitions_rows() {
        let t = demo(100);
        let (a, b) = split_holdout(&t, 0.7, 5).unwrap();
        assert_eq!(a.rows(), 70);
        assert_eq!(b.rows(), 30);
        let mut ids: Vec<f64> = a
            .numeric_values("id", None)
            .unwrap()
            .into_iter()
            .chain(b.numeric_values("id", None).unwrap())
            .collect();
        ids.sort_by(|x, y| x.total_cmp(y));
        assert_eq!(ids, (0..100).map(|i| i as f64).collect::<Vec<_>>());
        assert!(split_holdout(&t, 0.0, 1).is_err());
        assert!(split_holdout(&t, 1.0, 1).is_err());
    }

    #[test]
    fn permutation_preserves_marginals() {
        let t = demo(300);
        let p = permute_columns(&t, 9).unwrap();
        assert_eq!(p.rows(), 300);
        let before = histogram(&t, "grp", None).unwrap();
        let after = histogram(&p, "grp", None).unwrap();
        assert_eq!(before.counts(), after.counts());
        // Numeric column is a permutation of the original.
        let mut a = t.numeric_values("id", None).unwrap();
        let mut b = p.numeric_values("id", None).unwrap();
        a.sort_by(|x, y| x.total_cmp(y));
        b.sort_by(|x, y| x.total_cmp(y));
        assert_eq!(a, b);
        // And it actually moved things (overwhelmingly likely).
        assert_ne!(
            t.numeric_values("id", None).unwrap(),
            p.numeric_values("id", None).unwrap()
        );
    }

    #[test]
    fn permutation_destroys_association() {
        // Build a perfectly correlated pair; after permutation the
        // association should be near zero.
        let n = 2000;
        let flag: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let t = TableBuilder::new()
            .push("x", Column::Bool(flag.clone()))
            .push("y", Column::Bool(flag))
            .build()
            .unwrap();
        let p = permute_columns(&t, 3).unwrap();
        let xs = match p.column("x").unwrap() {
            Column::Bool(v) => v.clone(),
            _ => unreachable!(),
        };
        let ys = match p.column("y").unwrap() {
            Column::Bool(v) => v.clone(),
            _ => unreachable!(),
        };
        let agree = xs.iter().zip(&ys).filter(|(a, b)| a == b).count();
        let rate = agree as f64 / n as f64;
        assert!(
            (0.45..0.55).contains(&rate),
            "agreement after permutation: {rate}"
        );
    }
}
