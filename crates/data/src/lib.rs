//! # aware-data
//!
//! In-memory columnar data-exploration engine: the substrate that plays the
//! role of Vizdom's backend in the AWARE reproduction (*Zhao et al., SIGMOD
//! 2017*). Interactive data exploration in the paper is a loop of
//! *filter → histogram → compare*; this crate provides exactly those
//! primitives, plus the synthetic census generator that substitutes for the
//! UCI Adult dataset (see DESIGN.md §4 for the substitution rationale).
//!
//! * [`table`] — immutable, typed, column-oriented tables.
//! * [`column`] — `Int64` / `Float64` / `Bool` / dictionary-encoded
//!   `Categorical` column storage.
//! * [`bitmap`] — packed selection vectors with fast boolean algebra; every
//!   filter evaluates to one of these.
//! * [`cache`] — the shared per-dataset evaluation cache: canonical
//!   predicate fingerprints, LRU-bounded selection bitmaps with
//!   incremental filter-chain evaluation, memoized per-attribute
//!   invariants (global histograms, bin edges, proportions).
//! * [`predicate`] — the filter AST users build by dragging visualizations
//!   together (equality, ranges, negation, conjunction, disjunction).
//! * [`hist`] — histogram/group-by computation over selections, the
//!   visualization primitive of the paper's Figure 1.
//! * [`csv`] — minimal CSV reader/writer with schema inference.
//! * [`sample`] — seeded down-sampling, holdout splits, and independent
//!   column permutation (the paper's "randomized Census" null workload).
//! * [`census`] — seeded generative model producing an Adult-like census
//!   table with *known* ground-truth dependencies.
//!
//! ## Example
//!
//! ```
//! use aware_data::census::CensusGenerator;
//! use aware_data::predicate::{Predicate, CmpOp};
//! use aware_data::value::Value;
//! use aware_data::hist::histogram;
//!
//! let table = CensusGenerator::new(42).generate(1_000);
//! let high_earners = Predicate::cmp("salary_over_50k", CmpOp::Eq, Value::from(true))
//!     .eval(&table)
//!     .unwrap();
//! let by_sex = histogram(&table, "sex", Some(&high_earners)).unwrap();
//! assert_eq!(by_sex.total(), high_earners.count_ones() as u64);
//! ```

pub mod agg;
pub mod bitmap;
pub mod cache;
pub mod census;
pub mod column;
pub mod crosstab;
pub mod csv;
pub mod error;
pub mod hash;
pub mod hist;
pub mod predicate;
pub mod sample;
pub mod table;
pub mod value;

pub use error::DataError;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;
