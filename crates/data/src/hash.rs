//! The workspace's shared FNV-1a 64-bit hash.
//!
//! One implementation, many consumers: predicate fingerprints in the
//! evaluation cache, table content fingerprints, the `AWRS` snapshot
//! checksum, and the cluster ring's vnode points all hash with exactly
//! these constants — keeping them in one place means a future change
//! (say, widening to 128 bits) cannot silently diverge between crates.
//!
//! FNV-1a is not cryptographic and is not meant to be: it defends
//! against corruption and aliasing, not adversarial collision crafting
//! (the checksummed snapshot formats additionally validate semantics
//! on decode).

const OFFSET_BASIS: u64 = 0xcbf29ce484222325;
const PRIME: u64 = 0x100000001b3;

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Streaming FNV-1a — for hashing structured data without
/// materializing an intermediate buffer (byte-for-byte identical to
/// feeding the concatenation to [`fnv1a`]).
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    pub fn new() -> Fnv1a {
        Fnv1a {
            state: OFFSET_BASIS,
        }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }
}
