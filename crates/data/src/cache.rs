//! Shared per-dataset evaluation cache.
//!
//! Interactive exploration is redundant by construction: Eve's step-N
//! filter is her step-N−1 filter plus one clause (Fig. 1 of the paper),
//! a thousand concurrent sessions explore the *same* census, and every
//! rule-2 test compares against the *same* global histogram. The control
//! cost of multiple-hypothesis tracking is unavoidable (Hardt & Ullman
//! 2014); the data cost is not. This module memoizes everything that is
//! invariant for one immutable table:
//!
//! * **selection bitmaps**, keyed by a canonical predicate fingerprint
//!   (`And`/`Or` flattened, deduplicated, and order-normalized, double
//!   negation collapsed) so `B ∧ A` hits the entry `A ∧ B` created;
//! * **incremental chain evaluation**: on a miss, `A∧B∧C` is computed as
//!   `cached(A∧B) ∧ eval(C)` — each step of a growing filter chain pays
//!   one clause, not the whole conjunction, and every prefix is left
//!   warm for the next step;
//! * **negations** are never stored: `¬p` is served as `not()` of the
//!   cached positive (the paper's dashed inverted-selection link);
//! * **per-attribute invariants**: the global histogram, its bucket
//!   proportions (what `chi_square_gof` consumes on every rule-2 call),
//!   and the full-column numeric min/max that bin edges derive from.
//!
//! The bitmap cache is lock-striped (fingerprint hash → stripe) and
//! LRU-bounded per stripe, so a long exploration cannot grow it without
//! bound and concurrent sessions contend only when they hash together.
//! The cache holds no reference to its table; pair one cache with one
//! immutable [`Table`] (the serving layer stores them side by side) —
//! feeding tables of different row counts through one cache panics on
//! the bitmap length assertions downstream.
//!
//! Everything served from the cache is **bit-identical** to a cold
//! evaluation: bitmaps are exact, and invariants are computed by the
//! same kernels in the same order, so downstream p-values match
//! byte-for-byte (the equivalence property suite enforces this).

use crate::bitmap::Bitmap;
use crate::column::ColumnType;
use crate::hash::fnv1a;
use crate::hist::{
    categorical_histogram, numeric_bounds, numeric_histogram_with_bounds, Histogram,
    DEFAULT_NUMERIC_BINS,
};
use crate::predicate::Predicate;
use crate::table::Table;
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Canonical fingerprint of a predicate: a structural encoding that is
/// invariant under conjunction/disjunction order, nesting, duplication,
/// and double negation, plus a precomputed 64-bit hash for striping.
/// Equality compares the full encoding, so hash collisions can never
/// alias two different selections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    hash: u64,
    bytes: Box<[u8]>,
}

impl std::hash::Hash for Fingerprint {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl Fingerprint {
    /// Fingerprints one predicate.
    pub fn of(pred: &Predicate) -> Fingerprint {
        Fingerprint::from_bytes(canonical(pred))
    }

    /// Fingerprints the conjunction (or disjunction) of a clause slice —
    /// how chain evaluation names the prefix `A∧B` of `A∧B∧C` without
    /// cloning predicates into a temporary `Predicate::And`.
    fn of_parts(parts: &[Predicate], conjunctive: bool) -> Fingerprint {
        Fingerprint::from_bytes(canonical_parts(parts, conjunctive))
    }

    fn from_bytes(bytes: Vec<u8>) -> Fingerprint {
        Fingerprint {
            hash: fnv1a(&bytes),
            bytes: bytes.into_boxed_slice(),
        }
    }

    /// The precomputed structural hash (used for stripe selection).
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

// Canonical encoding tags. `TAG_TRUE` doubles as the encoding of an
// empty (or fully elided) conjunction.
const TAG_TRUE: u8 = 0;
const TAG_CMP: u8 = 1;
const TAG_IN: u8 = 2;
const TAG_BETWEEN: u8 = 3;
const TAG_NOT: u8 = 4;
const TAG_AND: u8 = 5;
const TAG_OR: u8 = 6;

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn push_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Bool(b) => {
            out.push(2);
            out.push(*b as u8);
        }
        Value::Str(s) => {
            out.push(3);
            push_str(out, s);
        }
    }
}

/// Canonical bytes of one predicate.
fn canonical(pred: &Predicate) -> Vec<u8> {
    match pred {
        Predicate::True => vec![TAG_TRUE],
        Predicate::Cmp { column, op, value } => {
            let mut out = vec![TAG_CMP, *op as u8];
            push_str(&mut out, column);
            push_value(&mut out, value);
            out
        }
        Predicate::In { column, values } => {
            // Membership is a disjunction of equalities: sort and dedupe
            // the listed values so `{a,b}` and `{b,a,b}` share an entry.
            let mut encoded: Vec<Vec<u8>> = values
                .iter()
                .map(|v| {
                    let mut one = Vec::new();
                    push_value(&mut one, v);
                    one
                })
                .collect();
            encoded.sort_unstable();
            encoded.dedup();
            let mut out = vec![TAG_IN];
            push_str(&mut out, column);
            out.extend_from_slice(&(encoded.len() as u32).to_le_bytes());
            for one in encoded {
                out.extend_from_slice(&one);
            }
            out
        }
        Predicate::Between { column, lo, hi } => {
            let mut out = vec![TAG_BETWEEN];
            push_str(&mut out, column);
            out.extend_from_slice(&lo.to_bits().to_le_bytes());
            out.extend_from_slice(&hi.to_bits().to_le_bytes());
            out
        }
        Predicate::Not(inner) => {
            // Collapse ¬¬p structurally.
            let mut node: &Predicate = inner;
            let mut negated = true;
            while let Predicate::Not(next) = node {
                node = next;
                negated = !negated;
            }
            let inner_bytes = canonical(node);
            if negated {
                let mut out = vec![TAG_NOT];
                out.extend_from_slice(&inner_bytes);
                out
            } else {
                inner_bytes
            }
        }
        Predicate::And(parts) => canonical_parts(parts, true),
        Predicate::Or(parts) => canonical_parts(parts, false),
    }
}

/// Canonical bytes of a conjunction (`conjunctive`) or disjunction of
/// `parts`: flatten same-kind nesting, drop conjunction identities
/// (`True`), sort children by their encodings, dedupe.
fn canonical_parts(parts: &[Predicate], conjunctive: bool) -> Vec<u8> {
    let mut children: Vec<Vec<u8>> = Vec::with_capacity(parts.len());
    collect_children(parts, conjunctive, &mut children);
    children.sort_unstable();
    children.dedup();
    match children.len() {
        0 if conjunctive => vec![TAG_TRUE], // empty conjunction ≡ ⊤
        1 => children.pop().expect("one child"),
        n => {
            let mut out = vec![if conjunctive { TAG_AND } else { TAG_OR }];
            out.extend_from_slice(&(n as u32).to_le_bytes());
            for child in children {
                out.extend_from_slice(&child);
            }
            out
        }
    }
}

fn collect_children(parts: &[Predicate], conjunctive: bool, out: &mut Vec<Vec<u8>>) {
    for p in parts {
        match p {
            Predicate::And(inner) if conjunctive => collect_children(inner, true, out),
            Predicate::Or(inner) if !conjunctive => collect_children(inner, false, out),
            Predicate::True if conjunctive => {} // ⊤ is the ∧ identity
            other => {
                let bytes = canonical(other);
                // A nested node may itself canonicalize to ⊤ (e.g.
                // `And([])`): still the identity.
                if !(conjunctive && bytes == [TAG_TRUE]) {
                    out.push(bytes);
                }
            }
        }
    }
}

/// Memoized full-table facts about one attribute — everything a rule-2
/// goodness-of-fit test needs that does not depend on the selection.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnInvariants {
    /// The unfiltered histogram (dictionary buckets, or
    /// [`DEFAULT_NUMERIC_BINS`] fixed-width bins for numeric columns).
    pub histogram: Histogram,
    /// `histogram.proportions()`, precomputed once.
    pub proportions: Vec<f64>,
    /// Full-column `(min, max)` for numeric columns (bin edges derive
    /// from it); `None` for categorical/bool columns.
    pub bounds: Option<(f64, f64)>,
}

/// Point-in-time cache counters, surfaced through the serving layer's
/// `stats` command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that had to evaluate.
    pub misses: u64,
    /// Selection bitmaps currently resident.
    pub selections: u64,
    /// Attribute invariant sets currently resident.
    pub invariants: u64,
}

struct Entry {
    bitmap: Arc<Bitmap>,
    last_used: u64,
}

#[derive(Default)]
struct Stripe {
    map: HashMap<Fingerprint, Entry>,
    tick: u64,
}

/// The shared per-dataset evaluation cache. One instance pairs with one
/// immutable [`Table`]; clone the `Arc` into every session exploring
/// that dataset.
pub struct EvalCache {
    stripes: Vec<Mutex<Stripe>>,
    per_stripe_capacity: usize,
    invariants: RwLock<HashMap<String, Arc<ColumnInvariants>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

/// Default bound on resident selection bitmaps. Generous for a single
/// session (hundreds of exploration steps) while keeping worst-case
/// memory modest: 1024 bitmaps over a 1M-row table ≈ 128 MiB, over the
/// 5k-row bench census ≈ 640 KiB.
pub const DEFAULT_SELECTION_CAPACITY: usize = 1024;

/// Default stripe count: enough to keep 16 workers from serializing on
/// one mutex, small enough that per-stripe LRU stays meaningful.
pub const DEFAULT_STRIPES: usize = 16;

impl EvalCache {
    /// A cache with default capacity and striping.
    pub fn new() -> EvalCache {
        EvalCache::with_capacity(DEFAULT_SELECTION_CAPACITY, DEFAULT_STRIPES)
    }

    /// A cache bounded to roughly `capacity` selection bitmaps across
    /// `stripes` lock stripes (each stripe holds `capacity / stripes`,
    /// rounded up, evicting its least-recently-used entry beyond that).
    pub fn with_capacity(capacity: usize, stripes: usize) -> EvalCache {
        let stripes = stripes.clamp(1, capacity.max(1));
        EvalCache {
            per_stripe_capacity: capacity.div_ceil(stripes).max(1),
            stripes: (0..stripes)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            invariants: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Evaluates `pred` over `table`, serving and feeding the cache.
    ///
    /// The returned bitmap is bit-identical to `pred.eval(table)`; the
    /// only difference is where the bits came from.
    pub fn selection(&self, table: &Table, pred: &Predicate) -> Result<Arc<Bitmap>> {
        match pred {
            // ⊤ is cheaper to rebuild than to look up.
            Predicate::True => Ok(Arc::new(Bitmap::ones(table.rows()))),
            // ¬p: not() of the cached positive, never stored.
            Predicate::Not(inner) => Ok(Arc::new(self.selection(table, inner)?.not())),
            Predicate::And(parts) if parts.len() >= 2 => self.chain(table, parts, true),
            Predicate::Or(parts) if parts.len() >= 2 => self.chain(table, parts, false),
            other => {
                let fp = Fingerprint::of(other);
                if let Some(hit) = self.lookup(&fp) {
                    return Ok(hit);
                }
                self.store(fp, other.eval(table)?)
            }
        }
    }

    /// Chain evaluation of an n-ary conjunction/disjunction: find the
    /// longest cached prefix, then extend it one cached clause at a time,
    /// leaving every prefix warm. Cold cost equals the naive fold; warm
    /// cost is one word-level combine per *new* clause.
    fn chain(&self, table: &Table, parts: &[Predicate], conjunctive: bool) -> Result<Arc<Bitmap>> {
        let full = Fingerprint::of_parts(parts, conjunctive);
        if let Some(hit) = self.lookup(&full) {
            return Ok(hit);
        }
        let n = parts.len();
        let mut acc = self.selection(table, &parts[0])?;
        for k in 2..n {
            let fp = Fingerprint::of_parts(&parts[..k], conjunctive);
            if let Some(hit) = self.lookup(&fp) {
                acc = hit;
                continue;
            }
            let clause = self.selection(table, &parts[k - 1])?;
            acc = self.store(fp, combine(&acc, &clause, conjunctive))?;
        }
        // Final clause: the full fingerprint already missed above, so
        // combine and store without re-probing.
        let clause = self.selection(table, &parts[n - 1])?;
        self.store(full, combine(&acc, &clause, conjunctive))
    }

    /// The memoized full-table invariants of one attribute.
    pub fn invariants(&self, table: &Table, attribute: &str) -> Result<Arc<ColumnInvariants>> {
        if let Some(hit) = self.invariants.read().unwrap().get(attribute) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(compute_invariants(table, attribute)?);
        let mut map = self.invariants.write().unwrap();
        // A racing computation may have landed first; keep the incumbent
        // so every consumer shares one allocation.
        Ok(map.entry(attribute.to_owned()).or_insert(computed).clone())
    }

    /// Just the hit/miss counters, read from plain atomics — no stripe
    /// or invariants locks. This is what a `stats` poll should use:
    /// [`EvalCache::stats`] additionally reports occupancy, which costs
    /// one lock per stripe and briefly contends with the hot path.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Counter and occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            selections: self
                .stripes
                .iter()
                .map(|s| s.lock().unwrap().map.len() as u64)
                .sum(),
            invariants: self.invariants.read().unwrap().len() as u64,
        }
    }

    // -- internals ---------------------------------------------------------

    fn stripe(&self, fp: &Fingerprint) -> &Mutex<Stripe> {
        &self.stripes[(fp.hash() as usize) % self.stripes.len()]
    }

    fn lookup(&self, fp: &Fingerprint) -> Option<Arc<Bitmap>> {
        let mut stripe = self.stripe(fp).lock().unwrap();
        stripe.tick += 1;
        let tick = stripe.tick;
        match stripe.map.get_mut(fp) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.bitmap.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, fp: Fingerprint, bitmap: Bitmap) -> Result<Arc<Bitmap>> {
        let arc = Arc::new(bitmap);
        let mut stripe = self.stripe(&fp).lock().unwrap();
        stripe.tick += 1;
        let tick = stripe.tick;
        stripe.map.insert(
            fp,
            Entry {
                bitmap: arc.clone(),
                last_used: tick,
            },
        );
        if stripe.map.len() > self.per_stripe_capacity {
            // LRU eviction: stripes are small (capacity/stripes), so a
            // linear scan for the oldest entry beats maintaining an
            // ordered side structure on every touch.
            if let Some(oldest) = stripe
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                stripe.map.remove(&oldest);
            }
        }
        Ok(arc)
    }
}

fn combine(acc: &Bitmap, clause: &Bitmap, conjunctive: bool) -> Bitmap {
    let mut out = acc.clone();
    if conjunctive {
        out.and_assign(clause);
    } else {
        out.or_assign(clause);
    }
    out
}

fn compute_invariants(table: &Table, attribute: &str) -> Result<ColumnInvariants> {
    let (histogram, bounds) = match table.column_type(attribute)? {
        ColumnType::Int64 | ColumnType::Float64 => {
            let bounds = numeric_bounds(table, attribute)?;
            let h = numeric_histogram_with_bounds(
                table,
                attribute,
                None,
                DEFAULT_NUMERIC_BINS,
                bounds,
            )?;
            (h, Some(bounds))
        }
        _ => (categorical_histogram(table, attribute, None)?, None),
    };
    let proportions = histogram.proportions();
    Ok(ColumnInvariants {
        histogram,
        proportions,
        bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::hist::numeric_histogram;
    use crate::predicate::CmpOp;
    use crate::table::TableBuilder;

    fn demo() -> Table {
        TableBuilder::new()
            .push("age", Column::Int64(vec![25, 40, 31, 60, 18, 45, 33, 52]))
            .push(
                "edu",
                Column::categorical_from_strs(&[
                    "HS", "PhD", "HS", "Master", "PhD", "HS", "Master", "HS",
                ]),
            )
            .push(
                "rich",
                Column::Bool(vec![false, true, false, true, false, true, false, true]),
            )
            .build()
            .unwrap()
    }

    fn eq(col: &str, v: &str) -> Predicate {
        Predicate::eq(col, v)
    }

    #[test]
    fn fingerprints_normalize_order_nesting_and_duplicates() {
        let a = eq("edu", "PhD");
        let b = Predicate::eq("rich", true);
        let c = Predicate::between("age", 30.0, 50.0);
        let ab_c = Predicate::And(vec![a.clone(), b.clone(), c.clone()]);
        let cba = Predicate::And(vec![c.clone(), b.clone(), a.clone()]);
        let nested = Predicate::And(vec![Predicate::And(vec![c.clone(), a.clone()]), b.clone()]);
        let duped = Predicate::And(vec![a.clone(), b.clone(), c.clone(), a.clone()]);
        let with_true = Predicate::And(vec![a.clone(), Predicate::True, b.clone(), c.clone()]);
        let fp = Fingerprint::of(&ab_c);
        assert_eq!(fp, Fingerprint::of(&cba));
        assert_eq!(fp, Fingerprint::of(&nested));
        assert_eq!(fp, Fingerprint::of(&duped));
        assert_eq!(fp, Fingerprint::of(&with_true));
        // Or sorts too, but never equals the And.
        assert_eq!(
            Fingerprint::of(&Predicate::Or(vec![a.clone(), b.clone()])),
            Fingerprint::of(&Predicate::Or(vec![b.clone(), a.clone()]))
        );
        assert_ne!(
            Fingerprint::of(&Predicate::Or(vec![a.clone(), b.clone()])),
            Fingerprint::of(&Predicate::And(vec![a.clone(), b.clone()]))
        );
        // Single-element combinators collapse to their element.
        assert_eq!(
            Fingerprint::of(&Predicate::And(vec![a.clone()])),
            Fingerprint::of(&a)
        );
        // Double negation collapses; single negation does not.
        let not_a = a.clone().negate();
        assert_eq!(
            Fingerprint::of(&Predicate::Not(Box::new(not_a.clone()))),
            Fingerprint::of(&a)
        );
        assert_ne!(Fingerprint::of(&not_a), Fingerprint::of(&a));
        // In is order/duplication-insensitive.
        let in1 = Predicate::In {
            column: "edu".into(),
            values: vec![Value::from("HS"), Value::from("PhD")],
        };
        let in2 = Predicate::In {
            column: "edu".into(),
            values: vec![Value::from("PhD"), Value::from("HS"), Value::from("PhD")],
        };
        assert_eq!(Fingerprint::of(&in1), Fingerprint::of(&in2));
        // Empty conjunction is ⊤.
        assert_eq!(
            Fingerprint::of(&Predicate::And(vec![])),
            Fingerprint::of(&Predicate::True)
        );
    }

    #[test]
    fn selection_hits_after_miss_and_matches_eval() {
        let t = demo();
        let cache = EvalCache::new();
        let p = eq("edu", "HS").and(Predicate::eq("rich", true));
        let cold = cache.selection(&t, &p).unwrap();
        assert_eq!(*cold, p.eval(&t).unwrap());
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert!(stats.misses > 0);
        let warm = cache.selection(&t, &p).unwrap();
        assert_eq!(cold, warm);
        assert!(cache.stats().hits >= 1);
        // Same clauses, different order: still a hit.
        let reordered = Predicate::eq("rich", true).and(eq("edu", "HS"));
        let hits_before = cache.stats().hits;
        let same = cache.selection(&t, &reordered).unwrap();
        assert_eq!(*same, p.eval(&t).unwrap());
        assert!(cache.stats().hits > hits_before);
    }

    #[test]
    fn chain_extension_reuses_the_prefix() {
        let t = demo();
        let cache = EvalCache::new();
        let step1 = eq("edu", "HS");
        let step2 = step1.clone().and(Predicate::eq("rich", true));
        let step3 = step2.clone().and(Predicate::between("age", 20.0, 60.0));
        cache.selection(&t, &step1).unwrap();
        cache.selection(&t, &step2).unwrap();
        let misses_before = cache.stats().misses;
        let sel = cache.selection(&t, &step3).unwrap();
        assert_eq!(*sel, step3.eval(&t).unwrap());
        // Step 3 paid: one full-chain probe miss, one prefix hit, one
        // new-clause miss — never a re-evaluation of the prefix clauses.
        let stats = cache.stats();
        assert!(
            stats.misses - misses_before <= 2,
            "chain re-evaluated its prefix: {stats:?}"
        );
    }

    #[test]
    fn negation_is_derived_not_stored() {
        let t = demo();
        let cache = EvalCache::new();
        let p = eq("edu", "PhD");
        let negated = p.clone().negate();
        let n1 = cache.selection(&t, &negated).unwrap();
        assert_eq!(*n1, negated.eval(&t).unwrap());
        // Only the positive is resident; the negative was derived.
        assert_eq!(cache.stats().selections, 1);
        // And the positive is warm now.
        let hits = cache.stats().hits;
        cache.selection(&t, &p).unwrap();
        assert!(cache.stats().hits > hits);
    }

    #[test]
    fn lru_eviction_bounds_residency() {
        let t = demo();
        let cache = EvalCache::with_capacity(4, 1);
        for lo in 0..20 {
            let p = Predicate::between("age", lo as f64, 99.0);
            cache.selection(&t, &p).unwrap();
        }
        assert!(cache.stats().selections <= 4);
        // Still correct after eviction churn.
        let p = Predicate::between("age", 3.0, 99.0);
        assert_eq!(*cache.selection(&t, &p).unwrap(), p.eval(&t).unwrap());
    }

    #[test]
    fn invariants_match_direct_computation() {
        let t = demo();
        let cache = EvalCache::new();
        let inv = cache.invariants(&t, "age").unwrap();
        let direct = numeric_histogram(&t, "age", None, DEFAULT_NUMERIC_BINS).unwrap();
        assert_eq!(inv.histogram, direct);
        assert_eq!(inv.proportions, direct.proportions());
        assert_eq!(inv.bounds, Some((18.0, 60.0)));
        let inv2 = cache.invariants(&t, "age").unwrap();
        assert!(Arc::ptr_eq(&inv, &inv2), "second lookup shares the Arc");
        let edu = cache.invariants(&t, "edu").unwrap();
        assert_eq!(
            edu.histogram,
            categorical_histogram(&t, "edu", None).unwrap()
        );
        assert_eq!(edu.bounds, None);
        assert_eq!(cache.stats().invariants, 2);
        // Errors are not cached.
        assert!(cache.invariants(&t, "ghost").is_err());
        assert_eq!(cache.stats().invariants, 2);
    }

    #[test]
    fn errors_propagate_and_are_never_cached() {
        let t = demo();
        let cache = EvalCache::new();
        let bad = Predicate::cmp("edu", CmpOp::Lt, Value::from("HS"));
        assert!(cache.selection(&t, &bad).is_err());
        assert_eq!(cache.stats().selections, 0);
        // A chain fails on its bad clause and caches only the good prefix.
        let chain = eq("edu", "HS").and(bad.clone());
        assert!(cache.selection(&t, &chain).is_err());
        assert_eq!(cache.stats().selections, 1);
    }
}

#[cfg(test)]
mod equivalence {
    use super::*;
    use crate::predicate::{arbitrary, arbitrary::Gen, reference};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Cold, warm, and incrementally-extended cache paths all agree
        /// with the scalar reference — on bitmaps and on errors — under
        /// random tables × random ASTs, including LRU-eviction churn
        /// from a deliberately tiny cache.
        #[test]
        fn cached_eval_matches_scalar_reference(
            seed in 0u64..u64::MAX,
            rows in 0usize..200,
        ) {
            let mut g = Gen(seed);
            let table = arbitrary::table(&mut g, rows);
            let small = EvalCache::with_capacity(8, 2);
            let big = EvalCache::new();
            for _ in 0..4 {
                let pred = arbitrary::predicate(&mut g, 3);
                let oracle = reference::eval(&pred, &table);
                for cache in [&small, &big] {
                    // Twice: the second pass exercises the warm path.
                    for pass in 0..2 {
                        match (cache.selection(&table, &pred), &oracle) {
                            (Ok(got), Ok(want)) => prop_assert_eq!(
                                &*got, want, "pass {} diverged on {}", pass, &pred
                            ),
                            (Err(got), Err(want)) => prop_assert_eq!(
                                &got, want, "pass {} error diverged on {}", pass, &pred
                            ),
                            (got, _) => prop_assert!(
                                false, "pass {} Ok/Err mismatch on {}: {:?}", pass, &pred, got
                            ),
                        }
                    }
                }
                // Growing-chain extension (the Eve workload shape).
                let extended = pred.clone().and(arbitrary::predicate(&mut g, 1));
                let oracle = reference::eval(&extended, &table);
                match (big.selection(&table, &extended), oracle) {
                    (Ok(got), Ok(want)) => prop_assert_eq!(&*got, &want),
                    (Err(got), Err(want)) => prop_assert_eq!(got, want),
                    (got, want) => prop_assert!(false, "chain mismatch: {:?} vs {:?}", got, want),
                }
            }
        }
    }
}
