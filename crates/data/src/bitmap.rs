//! Packed selection bitmaps.
//!
//! Every filter a user drags out evaluates to a [`Bitmap`] over the table's
//! rows. Filter chains are conjunctions (`and`), linked negated selections
//! are complements (`not`), and histogram computation walks set bits. The
//! representation is a plain `Vec<u64>` with the trailing word masked, so
//! all boolean algebra runs word-at-a-time.

/// A fixed-length bitset over table rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap of `len` bits.
    pub fn zeros(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones bitmap of `len` bits.
    pub fn ones(len: usize) -> Bitmap {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Builds from a boolean slice, packing 64 bits per word.
    pub fn from_bools(bits: &[bool]) -> Bitmap {
        Bitmap::from_fn(bits.len(), |i| bits[i])
    }

    /// Builds a bitmap of `len` bits where bit `i` is `f(i)`, packing 64
    /// rows per word with no `Vec<bool>` intermediate — the bulk
    /// constructor behind [`Bitmap::from_bools`]. (The predicate kernels
    /// use a slice-specialized sibling of this loop, `pack` in
    /// `predicate.rs`, whose `chunks(64)` inner loop elides bounds
    /// checks; use `from_fn` when there is no backing slice to chunk.)
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Bitmap {
        let mut words = Vec::with_capacity(len.div_ceil(64));
        let mut i = 0;
        while i + 64 <= len {
            let mut w = 0u64;
            for bit in 0..64 {
                w |= (f(i + bit) as u64) << bit;
            }
            words.push(w);
            i += 64;
        }
        if i < len {
            let mut w = 0u64;
            for bit in 0..(len - i) {
                w |= (f(i + bit) as u64) << bit;
            }
            words.push(w);
        }
        Bitmap { words, len }
    }

    /// Builds from pre-packed words. The caller must have masked the
    /// trailing word; debug builds verify it.
    pub(crate) fn from_words(words: Vec<u64>, len: usize) -> Bitmap {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        let b = Bitmap { words, len };
        debug_assert!(
            len.is_multiple_of(64) || b.words.last().is_none_or(|w| w >> (len % 64) == 0),
            "unmasked tail word"
        );
        b
    }

    /// Builds a bitmap of `len` bits with the given positions set.
    ///
    /// Panics in debug builds if an index is out of range.
    pub fn from_indices(len: usize, indices: &[usize]) -> Bitmap {
        let mut b = Bitmap::zeros(len);
        for &i in indices {
            b.set(i);
        }
        b
    }

    /// Number of bits (table rows).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Count of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `(self ∧ other).count_ones()` without allocating the intersection
    /// bitmap. Panics if lengths differ.
    pub fn count_ones_and(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Calls `f(i)` for every set bit `i` in ascending order — the
    /// word-at-a-time loop behind selection-restricted counting, without
    /// per-bit iterator machinery.
    #[inline]
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let base = wi * 64;
            let mut w = word;
            while w != 0 {
                f(base + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }

    /// Calls `f(i)` for every *clear* bit `i` in ascending order — the
    /// complement walk used when a selection covers more than half the
    /// rows and counting the complement is cheaper.
    #[inline]
    pub fn for_each_clear(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let base = wi * 64;
            let bits = std::cmp::min(64, self.len - base);
            let mut w = !word;
            if bits < 64 {
                w &= (1u64 << bits) - 1;
            }
            while w != 0 {
                f(base + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }

    /// Fraction of rows selected; 0 for an empty bitmap.
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// In-place intersection. Panics if lengths differ.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union. Panics if lengths differ.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place complement.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Intersection, by value.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Union, by value.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Complement, by value.
    pub fn not(&self) -> Bitmap {
        let mut out = self.clone();
        out.not_assign();
        out
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * 64;
            BitIter { word: w, base }
        })
    }

    /// Zero out bits beyond `len` in the last word so counts stay exact.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Iterator over set bits of one word.
struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1; // clear lowest set bit
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        let z = Bitmap::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        let o = Bitmap::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert_eq!(o.selectivity(), 1.0);
        assert!(Bitmap::zeros(0).is_empty());
        assert_eq!(Bitmap::zeros(0).selectivity(), 0.0);
    }

    #[test]
    fn ones_masks_tail_word() {
        // 65 bits: second word must only contain 1 set bit.
        let o = Bitmap::ones(65);
        assert_eq!(o.count_ones(), 65);
        let mut n = o.not();
        assert_eq!(n.count_ones(), 0);
        n.not_assign();
        assert_eq!(n.count_ones(), 65);
    }

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::zeros(100);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(99);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(99));
        assert!(!b.get(1) && !b.get(65));
        assert_eq!(b.count_ones(), 4);
        b.clear(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn boolean_algebra_laws() {
        let a = Bitmap::from_indices(200, &[1, 5, 64, 127, 199]);
        let b = Bitmap::from_indices(200, &[5, 64, 150]);
        // a ∧ b
        let and = a.and(&b);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![5, 64]);
        // a ∨ b
        let or = a.or(&b);
        assert_eq!(or.count_ones(), 6);
        // De Morgan: ¬(a ∧ b) = ¬a ∨ ¬b.
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        // Double complement.
        assert_eq!(a.not().not(), a);
        // a ∧ ¬a = 0; a ∨ ¬a = 1.
        assert_eq!(a.and(&a.not()).count_ones(), 0);
        assert_eq!(a.or(&a.not()).count_ones(), 200);
    }

    #[test]
    fn from_bools_roundtrip() {
        let bools: Vec<bool> = (0..77).map(|i| i % 3 == 0).collect();
        let b = Bitmap::from_bools(&bools);
        assert_eq!(b.count_ones(), bools.iter().filter(|&&x| x).count());
        for (i, &v) in bools.iter().enumerate() {
            assert_eq!(b.get(i), v);
        }
    }

    #[test]
    fn iter_ones_matches_get() {
        let idx = [0usize, 2, 63, 64, 65, 128, 190];
        let b = Bitmap::from_indices(191, &idx);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), idx.to_vec());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let mut a = Bitmap::zeros(10);
        a.and_assign(&Bitmap::zeros(11));
    }

    #[test]
    fn from_fn_matches_from_bools() {
        for len in [0usize, 1, 63, 64, 65, 128, 200] {
            let bools: Vec<bool> = (0..len).map(|i| i % 7 == 0 || i % 3 == 1).collect();
            assert_eq!(
                Bitmap::from_fn(len, |i| bools[i]),
                Bitmap::from_bools(&bools)
            );
        }
    }

    #[test]
    fn count_ones_and_matches_materialized_intersection() {
        let a = Bitmap::from_indices(150, &[0, 5, 63, 64, 100, 149]);
        let b = Bitmap::from_indices(150, &[5, 64, 99, 149]);
        assert_eq!(a.count_ones_and(&b), a.and(&b).count_ones());
        assert_eq!(a.count_ones_and(&b), 3);
    }

    #[test]
    fn for_each_set_and_clear_partition_the_rows() {
        let b = Bitmap::from_indices(130, &[0, 1, 64, 65, 127, 129]);
        let mut set = Vec::new();
        let mut clear = Vec::new();
        b.for_each_set(|i| set.push(i));
        b.for_each_clear(|i| clear.push(i));
        assert_eq!(set, b.iter_ones().collect::<Vec<_>>());
        assert_eq!(set.len() + clear.len(), 130);
        assert!(clear.iter().all(|&i| !b.get(i)));
        // The complement walk never reports out-of-range tail bits.
        assert!(clear.iter().all(|&i| i < 130));
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn bools(n: usize) -> impl Strategy<Value = Vec<bool>> {
        proptest::collection::vec(any::<bool>(), n)
    }

    proptest! {
        #[test]
        fn count_matches_naive(v in bools(200)) {
            let b = Bitmap::from_bools(&v);
            prop_assert_eq!(b.count_ones(), v.iter().filter(|&&x| x).count());
        }

        #[test]
        fn and_or_not_match_naive(a in bools(130), b in bools(130)) {
            let ba = Bitmap::from_bools(&a);
            let bb = Bitmap::from_bools(&b);
            let and_naive: Vec<bool> = a.iter().zip(&b).map(|(x, y)| *x && *y).collect();
            let or_naive: Vec<bool> = a.iter().zip(&b).map(|(x, y)| *x || *y).collect();
            let not_naive: Vec<bool> = a.iter().map(|x| !x).collect();
            prop_assert_eq!(ba.and(&bb), Bitmap::from_bools(&and_naive));
            prop_assert_eq!(ba.or(&bb), Bitmap::from_bools(&or_naive));
            prop_assert_eq!(ba.not(), Bitmap::from_bools(&not_naive));
        }

        #[test]
        fn iter_ones_sorted_and_complete(v in bools(99)) {
            let b = Bitmap::from_bools(&v);
            let ones: Vec<usize> = b.iter_ones().collect();
            prop_assert!(ones.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(ones.len(), b.count_ones());
            for i in ones {
                prop_assert!(v[i]);
            }
        }
    }
}
