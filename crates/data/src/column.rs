//! Typed column storage.
//!
//! Columns are immutable once built. Categorical columns are
//! dictionary-encoded (`u32` codes into a label vector) because census-style
//! exploration data is dominated by low-cardinality attributes, and the χ²
//! histogram path then reduces to counting codes.

use crate::value::Value;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integers.
    Int64,
    /// 64-bit floats.
    Float64,
    /// Booleans.
    Bool,
    /// Dictionary-encoded strings.
    Categorical,
}

impl ColumnType {
    /// Static name used in error messages.
    pub fn name(&self) -> &'static str {
        match self {
            ColumnType::Int64 => "int64",
            ColumnType::Float64 => "float64",
            ColumnType::Bool => "bool",
            ColumnType::Categorical => "categorical",
        }
    }
}

impl std::fmt::Display for ColumnType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Borrowed per-row code view of a categorical (`u32` dictionary codes)
/// or boolean (`false`→0, `true`→1) column.
pub(crate) enum CodeView<'a> {
    Cat(&'a [u32]),
    Bool(&'a [bool]),
}

impl CodeView<'_> {
    /// The row's code (an index into the domain labels).
    #[inline]
    pub(crate) fn at(&self, i: usize) -> usize {
        match self {
            CodeView::Cat(codes) => codes[i] as usize,
            CodeView::Bool(vals) => vals[i] as usize,
        }
    }
}

/// One column of data.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer data.
    Int64(Vec<i64>),
    /// Float data.
    Float64(Vec<f64>),
    /// Boolean data.
    Bool(Vec<bool>),
    /// Dictionary-encoded categorical data: `codes[i]` indexes `labels`.
    Categorical {
        /// Distinct labels, in first-seen order.
        labels: Vec<String>,
        /// Per-row code into `labels`.
        codes: Vec<u32>,
    },
}

impl Column {
    /// Builds a categorical column from raw strings, constructing the
    /// dictionary in first-seen order.
    pub fn categorical_from_strs<S: AsRef<str>>(values: &[S]) -> Column {
        let mut labels: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let s = v.as_ref();
            let code = match labels.iter().position(|l| l == s) {
                Some(i) => i as u32,
                None => {
                    labels.push(s.to_owned());
                    (labels.len() - 1) as u32
                }
            };
            codes.push(code);
        }
        Column::Categorical { labels, codes }
    }

    /// Builds a categorical column from pre-encoded codes and a dictionary.
    ///
    /// Panics in debug builds if any code is out of range.
    pub fn categorical_from_codes(labels: Vec<String>, codes: Vec<u32>) -> Column {
        debug_assert!(codes.iter().all(|&c| (c as usize) < labels.len()));
        Column::Categorical { labels, codes }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's type tag.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Column::Int64(_) => ColumnType::Int64,
            Column::Float64(_) => ColumnType::Float64,
            Column::Bool(_) => ColumnType::Bool,
            Column::Categorical { .. } => ColumnType::Categorical,
        }
    }

    /// Cell value at `row` (clones strings; intended for UI/debug paths).
    pub fn value_at(&self, row: usize) -> Value {
        match self {
            Column::Int64(v) => Value::Int(v[row]),
            Column::Float64(v) => Value::Float(v[row]),
            Column::Bool(v) => Value::Bool(v[row]),
            Column::Categorical { labels, codes } => {
                Value::Str(labels[codes[row] as usize].clone())
            }
        }
    }

    /// Numeric view of the cell (ints/floats only).
    pub fn numeric_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int64(v) => Some(v[row] as f64),
            Column::Float64(v) => Some(v[row]),
            _ => None,
        }
    }

    /// Dictionary of a categorical column, if it is one.
    pub fn labels(&self) -> Option<&[String]> {
        match self {
            Column::Categorical { labels, .. } => Some(labels),
            _ => None,
        }
    }

    /// `(domain labels, borrowed per-row codes)` of a categorical or
    /// boolean column — the shared encoding the crosstab and group-by
    /// kernels bucket by, with no materialized copy of the column.
    pub(crate) fn code_view(&self) -> Option<(Vec<String>, CodeView<'_>)> {
        match self {
            Column::Categorical { labels, codes } => Some((labels.clone(), CodeView::Cat(codes))),
            Column::Bool(vals) => Some((
                vec!["false".to_owned(), "true".to_owned()],
                CodeView::Bool(vals),
            )),
            _ => None,
        }
    }

    /// Materializes the subset of rows with set bits in `selection`.
    pub fn take(&self, rows: &[usize]) -> Column {
        match self {
            Column::Int64(v) => Column::Int64(rows.iter().map(|&i| v[i]).collect()),
            Column::Float64(v) => Column::Float64(rows.iter().map(|&i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(rows.iter().map(|&i| v[i]).collect()),
            Column::Categorical { labels, codes } => Column::Categorical {
                labels: labels.clone(),
                codes: rows.iter().map(|&i| codes[i]).collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_dictionary_first_seen_order() {
        let c = Column::categorical_from_strs(&["b", "a", "b", "c", "a"]);
        match &c {
            Column::Categorical { labels, codes } => {
                assert_eq!(labels, &["b", "a", "c"]);
                assert_eq!(codes, &[0, 1, 0, 2, 1]);
            }
            _ => unreachable!(),
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.column_type(), ColumnType::Categorical);
        assert_eq!(c.value_at(3), Value::Str("c".into()));
        assert_eq!(c.labels().unwrap().len(), 3);
    }

    #[test]
    fn numeric_views() {
        let c = Column::Int64(vec![1, 2, 3]);
        assert_eq!(c.numeric_at(1), Some(2.0));
        assert_eq!(c.value_at(2), Value::Int(3));
        let f = Column::Float64(vec![0.5]);
        assert_eq!(f.numeric_at(0), Some(0.5));
        let b = Column::Bool(vec![true]);
        assert_eq!(b.numeric_at(0), None);
        assert_eq!(b.value_at(0), Value::Bool(true));
        assert!(b.labels().is_none());
    }

    #[test]
    fn take_subsets_preserve_dictionary() {
        let c = Column::categorical_from_strs(&["x", "y", "x", "z"]);
        let t = c.take(&[0, 2]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.value_at(0), Value::Str("x".into()));
        assert_eq!(t.value_at(1), Value::Str("x".into()));
        // Dictionary is shared even if some labels are now unused.
        assert_eq!(t.labels().unwrap(), c.labels().unwrap());

        let i = Column::Int64(vec![10, 20, 30]);
        assert_eq!(i.take(&[2, 0]), Column::Int64(vec![30, 10]));
    }

    #[test]
    fn type_names() {
        assert_eq!(ColumnType::Int64.to_string(), "int64");
        assert_eq!(ColumnType::Categorical.to_string(), "categorical");
        assert!(Column::Int64(vec![]).is_empty());
    }
}
