//! Error type for the data engine.

use std::fmt;

/// Errors surfaced by table construction, filtering, and I/O.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A referenced column does not exist.
    UnknownColumn {
        /// The missing column name.
        name: String,
    },
    /// A predicate or histogram was applied to a column of the wrong type.
    TypeMismatch {
        /// The column involved.
        column: String,
        /// What the operation expected.
        expected: &'static str,
        /// What the column actually is.
        actual: &'static str,
    },
    /// Columns of differing lengths were combined into one table.
    LengthMismatch {
        /// Expected number of rows.
        expected: usize,
        /// Offending column's length.
        got: usize,
        /// Offending column's name.
        column: String,
    },
    /// A selection bitmap sized for a different table was used.
    SelectionSizeMismatch {
        /// Rows in the table.
        table_rows: usize,
        /// Bits in the bitmap.
        bitmap_bits: usize,
    },
    /// Duplicate column name at table construction.
    DuplicateColumn {
        /// The repeated name.
        name: String,
    },
    /// CSV parsing failure.
    Csv {
        /// 1-based line number where parsing failed (0 = header).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// An empty table or column where data was required.
    Empty {
        /// Operation that required data.
        context: &'static str,
    },
    /// Invalid argument (bin count of zero, sample fraction out of range …).
    InvalidArgument {
        /// Operation that rejected the argument.
        context: &'static str,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// Underlying I/O failure (message-only so the error stays `Clone`).
    Io {
        /// Stringified `std::io::Error`.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownColumn { name } => write!(f, "unknown column `{name}`"),
            DataError::TypeMismatch {
                column,
                expected,
                actual,
            } => {
                write!(f, "column `{column}`: expected {expected}, found {actual}")
            }
            DataError::LengthMismatch {
                expected,
                got,
                column,
            } => {
                write!(f, "column `{column}` has {got} rows, table has {expected}")
            }
            DataError::SelectionSizeMismatch {
                table_rows,
                bitmap_bits,
            } => {
                write!(
                    f,
                    "selection has {bitmap_bits} bits but table has {table_rows} rows"
                )
            }
            DataError::DuplicateColumn { name } => write!(f, "duplicate column `{name}`"),
            DataError::Csv { line, reason } => {
                write!(f, "csv parse error at line {line}: {reason}")
            }
            DataError::Empty { context } => write!(f, "{context}: empty input"),
            DataError::InvalidArgument {
                context,
                constraint,
            } => {
                write!(f, "{context}: argument violates `{constraint}`")
            }
            DataError::Io { message } => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::UnknownColumn {
            name: "wage".into(),
        };
        assert!(e.to_string().contains("wage"));
        let e = DataError::TypeMismatch {
            column: "age".into(),
            expected: "categorical",
            actual: "int64",
        };
        assert!(e.to_string().contains("age"));
        assert!(e.to_string().contains("categorical"));
        let e: DataError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
    }
}
