//! Two-attribute contingency tables (cross-tabulation).
//!
//! Rule 3 builds 2×k tables by stacking two filtered histograms; the
//! crosstab is the direct r×c construction for "are attributes X and Y
//! associated (within this sub-population)?" — the question behind the
//! paper's intro examples ("people with a Ph.D. earn more") when asked
//! head-on rather than through a filter chain.

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::table::Table;
use crate::{DataError, Result};

/// An r×c count table over two categorical/boolean attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossTab {
    /// Row attribute name.
    pub row_column: String,
    /// Column attribute name.
    pub col_column: String,
    /// Row labels (dictionary/domain order).
    pub row_labels: Vec<String>,
    /// Column labels (dictionary/domain order).
    pub col_labels: Vec<String>,
    /// Counts, row-major: `counts[r][c]`.
    pub counts: Vec<Vec<u64>>,
}

impl CrossTab {
    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// The counts in the `Vec<Vec<u64>>` shape the χ²/G tests consume.
    pub fn rows(&self) -> &[Vec<u64>] {
        &self.counts
    }
}

/// Encodes a categorical or boolean column as (labels, per-row codes).
fn encode(table: &Table, name: &str) -> Result<(Vec<String>, Vec<usize>)> {
    match table.column(name)? {
        Column::Categorical { labels, codes } => {
            Ok((labels.clone(), codes.iter().map(|&c| c as usize).collect()))
        }
        Column::Bool(vals) => Ok((
            vec!["false".to_owned(), "true".to_owned()],
            vals.iter().map(|&b| b as usize).collect(),
        )),
        other => Err(DataError::TypeMismatch {
            column: name.to_owned(),
            expected: "categorical or bool",
            actual: other.column_type().name(),
        }),
    }
}

/// Builds the crosstab of `row_column` × `col_column`, restricted to
/// `selection` when given.
pub fn crosstab(
    table: &Table,
    row_column: &str,
    col_column: &str,
    selection: Option<&Bitmap>,
) -> Result<CrossTab> {
    if let Some(sel) = selection {
        table.check_selection(sel)?;
    }
    if row_column == col_column {
        return Err(DataError::InvalidArgument {
            context: "crosstab",
            constraint: "row and column attributes must differ",
        });
    }
    let (row_labels, row_codes) = encode(table, row_column)?;
    let (col_labels, col_codes) = encode(table, col_column)?;
    let mut counts = vec![vec![0u64; col_labels.len()]; row_labels.len()];
    let mut bump = |i: usize| counts[row_codes[i]][col_codes[i]] += 1;
    match selection {
        Some(sel) => sel.iter_ones().for_each(&mut bump),
        None => (0..table.rows()).for_each(&mut bump),
    }
    Ok(CrossTab {
        row_column: row_column.to_owned(),
        col_column: col_column.to_owned(),
        row_labels,
        col_labels,
        counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::CensusGenerator;
    use crate::predicate::Predicate;
    use crate::table::TableBuilder;

    fn demo() -> Table {
        TableBuilder::new()
            .push(
                "edu",
                Column::categorical_from_strs(&["HS", "PhD", "HS", "PhD", "HS"]),
            )
            .push("rich", Column::Bool(vec![false, true, false, true, true]))
            .push("age", Column::Int64(vec![20, 30, 40, 50, 60]))
            .build()
            .unwrap()
    }

    #[test]
    fn crosstab_counts_hand_checked() {
        let t = demo();
        let ct = crosstab(&t, "edu", "rich", None).unwrap();
        assert_eq!(ct.row_labels, vec!["HS", "PhD"]);
        assert_eq!(ct.col_labels, vec!["false", "true"]);
        // HS: rich [false, false, true] → [2, 1]; PhD: [0, 2].
        assert_eq!(ct.counts, vec![vec![2, 1], vec![0, 2]]);
        assert_eq!(ct.total(), 5);
    }

    #[test]
    fn crosstab_with_selection() {
        let t = demo();
        let sel = Predicate::between("age", 25.0, 55.0).eval(&t).unwrap();
        let ct = crosstab(&t, "edu", "rich", Some(&sel)).unwrap();
        // rows 1,2,3: (PhD,true), (HS,false), (PhD,true).
        assert_eq!(ct.counts, vec![vec![1, 0], vec![0, 2]]);
        assert_eq!(ct.total(), 3);
    }

    #[test]
    fn crosstab_validation() {
        let t = demo();
        assert!(crosstab(&t, "edu", "edu", None).is_err());
        assert!(crosstab(&t, "edu", "age", None).is_err());
        assert!(crosstab(&t, "ghost", "rich", None).is_err());
        assert!(crosstab(&t, "edu", "rich", Some(&Bitmap::zeros(2))).is_err());
    }

    #[test]
    fn crosstab_margins_match_histograms() {
        let t = CensusGenerator::new(4).generate(3_000);
        let ct = crosstab(&t, "education", "salary_over_50k", None).unwrap();
        let edu_hist = crate::hist::categorical_histogram(&t, "education", None).unwrap();
        let row_margins: Vec<u64> = ct.counts.iter().map(|r| r.iter().sum()).collect();
        assert_eq!(row_margins, edu_hist.counts());
        assert_eq!(ct.total(), 3_000);
    }

    #[test]
    fn crosstab_feeds_independence_test() {
        let t = CensusGenerator::new(4).generate(10_000);
        let ct = crosstab(&t, "education", "salary_over_50k", None).unwrap();
        let out = aware_stats::tests::chi_square_independence(ct.rows()).unwrap();
        assert!(
            out.p_value < 1e-10,
            "planted dependence: p = {}",
            out.p_value
        );
        let ct = crosstab(&t, "race", "salary_over_50k", None).unwrap();
        let out = aware_stats::tests::chi_square_independence(ct.rows()).unwrap();
        assert!(out.p_value > 1e-4, "null pair: p = {}", out.p_value);
    }
}
