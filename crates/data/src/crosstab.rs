//! Two-attribute contingency tables (cross-tabulation).
//!
//! Rule 3 builds 2×k tables by stacking two filtered histograms; the
//! crosstab is the direct r×c construction for "are attributes X and Y
//! associated (within this sub-population)?" — the question behind the
//! paper's intro examples ("people with a Ph.D. earn more") when asked
//! head-on rather than through a filter chain.

use crate::bitmap::Bitmap;
use crate::column::CodeView;
use crate::table::Table;
use crate::{DataError, Result};

/// An r×c count table over two categorical/boolean attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossTab {
    /// Row attribute name.
    pub row_column: String,
    /// Column attribute name.
    pub col_column: String,
    /// Row labels (dictionary/domain order).
    pub row_labels: Vec<String>,
    /// Column labels (dictionary/domain order).
    pub col_labels: Vec<String>,
    /// Counts, row-major: `counts[r][c]`.
    pub counts: Vec<Vec<u64>>,
}

impl CrossTab {
    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// The counts in the `Vec<Vec<u64>>` shape the χ²/G tests consume.
    pub fn rows(&self) -> &[Vec<u64>] {
        &self.counts
    }
}

/// Encodes a categorical or boolean column as (labels, borrowed codes).
fn encode<'a>(table: &'a Table, name: &str) -> Result<(Vec<String>, CodeView<'a>)> {
    let col = table.column(name)?;
    col.code_view().ok_or_else(|| DataError::TypeMismatch {
        column: name.to_owned(),
        expected: "categorical or bool",
        actual: col.column_type().name(),
    })
}

/// Builds the crosstab of `row_column` × `col_column`, restricted to
/// `selection` when given.
///
/// Counts accumulate into one flat row-major `Vec<u64>` (a single cache
/// line for the common small tables, no per-row nested indexing) with
/// the same word-at-a-time selection walk the histograms use, then
/// reshape into the public `Vec<Vec<u64>>`.
pub fn crosstab(
    table: &Table,
    row_column: &str,
    col_column: &str,
    selection: Option<&Bitmap>,
) -> Result<CrossTab> {
    if let Some(sel) = selection {
        table.check_selection(sel)?;
    }
    if row_column == col_column {
        return Err(DataError::InvalidArgument {
            context: "crosstab",
            constraint: "row and column attributes must differ",
        });
    }
    let (row_labels, row_codes) = encode(table, row_column)?;
    let (col_labels, col_codes) = encode(table, col_column)?;
    let width = col_labels.len();
    // The r×c grid is a flattened bucket space, so selection counting
    // (including the majority complement-and-subtract trick) is the
    // histogram kernel.
    let flat =
        crate::hist::count_selected(table.rows(), row_labels.len() * width, selection, |i| {
            row_codes.at(i) * width + col_codes.at(i)
        });
    let counts = if width == 0 {
        vec![Vec::new(); row_labels.len()]
    } else {
        flat.chunks(width).map(<[u64]>::to_vec).collect()
    };
    Ok(CrossTab {
        row_column: row_column.to_owned(),
        col_column: col_column.to_owned(),
        row_labels,
        col_labels,
        counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::CensusGenerator;
    use crate::column::Column;
    use crate::predicate::Predicate;
    use crate::table::TableBuilder;

    fn demo() -> Table {
        TableBuilder::new()
            .push(
                "edu",
                Column::categorical_from_strs(&["HS", "PhD", "HS", "PhD", "HS"]),
            )
            .push("rich", Column::Bool(vec![false, true, false, true, true]))
            .push("age", Column::Int64(vec![20, 30, 40, 50, 60]))
            .build()
            .unwrap()
    }

    #[test]
    fn crosstab_counts_hand_checked() {
        let t = demo();
        let ct = crosstab(&t, "edu", "rich", None).unwrap();
        assert_eq!(ct.row_labels, vec!["HS", "PhD"]);
        assert_eq!(ct.col_labels, vec!["false", "true"]);
        // HS: rich [false, false, true] → [2, 1]; PhD: [0, 2].
        assert_eq!(ct.counts, vec![vec![2, 1], vec![0, 2]]);
        assert_eq!(ct.total(), 5);
    }

    #[test]
    fn crosstab_with_selection() {
        let t = demo();
        let sel = Predicate::between("age", 25.0, 55.0).eval(&t).unwrap();
        let ct = crosstab(&t, "edu", "rich", Some(&sel)).unwrap();
        // rows 1,2,3: (PhD,true), (HS,false), (PhD,true).
        assert_eq!(ct.counts, vec![vec![1, 0], vec![0, 2]]);
        assert_eq!(ct.total(), 3);
    }

    #[test]
    fn crosstab_validation() {
        let t = demo();
        assert!(crosstab(&t, "edu", "edu", None).is_err());
        assert!(crosstab(&t, "edu", "age", None).is_err());
        assert!(crosstab(&t, "ghost", "rich", None).is_err());
        assert!(crosstab(&t, "edu", "rich", Some(&Bitmap::zeros(2))).is_err());
    }

    #[test]
    fn crosstab_margins_match_histograms() {
        let t = CensusGenerator::new(4).generate(3_000);
        let ct = crosstab(&t, "education", "salary_over_50k", None).unwrap();
        let edu_hist = crate::hist::categorical_histogram(&t, "education", None).unwrap();
        let row_margins: Vec<u64> = ct.counts.iter().map(|r| r.iter().sum()).collect();
        assert_eq!(row_margins, edu_hist.counts());
        assert_eq!(ct.total(), 3_000);
    }

    #[test]
    fn crosstab_feeds_independence_test() {
        let t = CensusGenerator::new(4).generate(10_000);
        let ct = crosstab(&t, "education", "salary_over_50k", None).unwrap();
        let out = aware_stats::tests::chi_square_independence(ct.rows()).unwrap();
        assert!(
            out.p_value < 1e-10,
            "planted dependence: p = {}",
            out.p_value
        );
        let ct = crosstab(&t, "race", "salary_over_50k", None).unwrap();
        let out = aware_stats::tests::chi_square_independence(ct.rows()).unwrap();
        assert!(out.p_value > 1e-4, "null pair: p = {}", out.p_value);
    }
}
