//! Synthetic census generator — the stand-in for the UCI Adult dataset.
//!
//! The paper's Exp.2 replays user workflows over the Census dataset [25].
//! That file is not available offline, and more importantly it has no ground
//! truth: the authors had to approximate truth with a Bonferroni pass over
//! the full data. This generator solves both problems: it produces an
//! Adult-like table (same attribute vocabulary, realistic marginals) from an
//! explicit generative DAG, so the *exact* set of dependent attribute pairs
//! is known. The simulation harness uses [`CensusGenerator::is_dependent`]
//! as the oracle and can also reproduce the paper's Bonferroni-labeling
//! straw man for comparison.
//!
//! Generative DAG (arrows are sampling dependencies):
//!
//! ```text
//! age ──→ education ──→ occupation
//!  │          │  └────────→ hours_per_week ←── sex
//!  ├──→ marital_status      │                   │
//!  └──────────┬─────────────┴───────┬───────────┘
//!             ↓                     ↓
//!           salary_over_50k ←───────┘
//! ```
//!
//! `race`, `native_region`, and `survey_wave` are sampled independently of
//! everything — they are the true-null attributes.

use crate::column::Column;
use crate::table::{Table, TableBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Education levels, ordered from lowest to highest attainment.
pub const EDUCATION: [&str; 5] = ["HS", "Some-College", "Bachelor", "Master", "PhD"];
/// Marital statuses.
pub const MARITAL: [&str; 4] = ["Never-Married", "Married", "Divorced", "Widowed"];
/// Occupations.
pub const OCCUPATION: [&str; 5] = [
    "Service",
    "Manual",
    "Clerical",
    "Professional",
    "Managerial",
];
/// Sexes (the paper's Figure 1 uses a three-valued gender attribute; we keep
/// the Adult dataset's binary "sex" plus "Other" to match the figure).
pub const SEX: [&str; 3] = ["Male", "Female", "Other"];
/// Synthetic race groups (null attribute).
pub const RACE: [&str; 5] = ["Group-A", "Group-B", "Group-C", "Group-D", "Group-E"];
/// Synthetic native regions (null attribute).
pub const REGION: [&str; 5] = ["North", "South", "East", "West", "Overseas"];
/// Survey wave the record was collected in (null attribute).
pub const WAVE: [&str; 4] = ["Wave-1", "Wave-2", "Wave-3", "Wave-4"];

/// All attribute names, in schema order.
pub const ATTRIBUTES: [&str; 10] = [
    "age",
    "sex",
    "education",
    "marital_status",
    "occupation",
    "hours_per_week",
    "salary_over_50k",
    "race",
    "native_region",
    "survey_wave",
];

/// Unordered attribute pairs that are *marginally dependent* under the
/// generative DAG (d-connected with empty conditioning set). Everything not
/// listed — in particular every pair touching `race`, `native_region`, or
/// `survey_wave`, and every pair pairing `sex` with an age-descendant other
/// than `hours_per_week`/`salary_over_50k` — is independent.
pub const DEPENDENT_PAIRS: [(&str, &str); 16] = [
    ("age", "education"),
    ("age", "marital_status"),
    ("age", "occupation"),
    ("age", "hours_per_week"),
    ("age", "salary_over_50k"),
    ("education", "marital_status"),
    ("education", "occupation"),
    ("education", "hours_per_week"),
    ("education", "salary_over_50k"),
    ("marital_status", "occupation"),
    ("marital_status", "hours_per_week"),
    ("marital_status", "salary_over_50k"),
    ("occupation", "hours_per_week"),
    ("occupation", "salary_over_50k"),
    ("hours_per_week", "salary_over_50k"),
    ("sex", "hours_per_week"),
];

/// The 17th dependent pair: sex → salary is both direct and via hours.
pub const SEX_SALARY: (&str, &str) = ("sex", "salary_over_50k");

/// Seeded generator for synthetic census tables.
#[derive(Debug, Clone, Copy)]
pub struct CensusGenerator {
    seed: u64,
}

impl CensusGenerator {
    /// Creates a generator; the same seed always yields the same table.
    pub fn new(seed: u64) -> CensusGenerator {
        CensusGenerator { seed }
    }

    /// Ground-truth oracle: are attributes `a` and `b` marginally dependent
    /// under the generative model? Order-insensitive; an attribute is never
    /// dependent with itself (a self-comparison is not a hypothesis).
    pub fn is_dependent(a: &str, b: &str) -> bool {
        if a == b {
            return false;
        }
        DEPENDENT_PAIRS
            .iter()
            .chain(std::iter::once(&SEX_SALARY))
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// The attributes that are independent of everything (true nulls).
    pub fn null_attributes() -> &'static [&'static str] {
        &["race", "native_region", "survey_wave"]
    }

    /// Generates `rows` records.
    pub fn generate(&self, rows: usize) -> Table {
        let mut rng = SmallRng::seed_from_u64(self.seed);

        let mut age = Vec::with_capacity(rows);
        let mut sex = Vec::with_capacity(rows);
        let mut education = Vec::with_capacity(rows);
        let mut marital = Vec::with_capacity(rows);
        let mut occupation = Vec::with_capacity(rows);
        let mut hours = Vec::with_capacity(rows);
        let mut salary = Vec::with_capacity(rows);
        let mut race = Vec::with_capacity(rows);
        let mut region = Vec::with_capacity(rows);
        let mut wave = Vec::with_capacity(rows);

        for _ in 0..rows {
            // age: Bates(3) bell over [18, 80].
            let u: f64 = (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>()) / 3.0;
            let a = 18 + (u * 62.0) as i64;
            age.push(a);

            // sex ⟂ age.
            let s = {
                let r: f64 = rng.gen();
                if r < 0.49 {
                    0 // Male
                } else if r < 0.98 {
                    1 // Female
                } else {
                    2 // Other
                }
            };
            sex.push(s as u32);

            // education | age.
            let edu_weights: [f64; 5] = if a < 30 {
                [0.28, 0.30, 0.29, 0.10, 0.03]
            } else if a < 50 {
                [0.33, 0.25, 0.25, 0.12, 0.05]
            } else {
                [0.44, 0.22, 0.20, 0.10, 0.04]
            };
            let e = sample_weighted(&mut rng, &edu_weights);
            education.push(e as u32);

            // marital | age.
            let mar_weights: [f64; 4] = if a < 30 {
                [0.70, 0.25, 0.04, 0.01]
            } else if a < 50 {
                [0.20, 0.60, 0.17, 0.03]
            } else {
                [0.08, 0.55, 0.22, 0.15]
            };
            marital.push(sample_weighted(&mut rng, &mar_weights) as u32);

            // occupation | education.
            let ef = e as f64;
            let occ_weights = [
                (0.30 - 0.045 * ef).max(0.02),
                (0.30 - 0.055 * ef).max(0.02),
                0.20,
                0.10 + 0.065 * ef,
                0.10 + 0.035 * ef,
            ];
            occupation.push(sample_weighted(&mut rng, &occ_weights) as u32);

            // hours | education, sex (normal via Box–Muller pair average).
            let z = {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen::<f64>();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            let mean_hours = 37.0 + 1.4 * ef + if s == 0 { 2.5 } else { 0.0 };
            let h = (mean_hours + 9.0 * z).round().clamp(1.0, 99.0) as i64;
            hours.push(h);

            // salary | age, sex, education, hours (logistic).
            let logit = -2.9
                + 0.62 * ef
                + if s == 0 { 0.45 } else { 0.0 }
                + 0.032 * ((a.min(60) - 40) as f64)
                + 0.035 * ((h - 40) as f64);
            let p = 1.0 / (1.0 + (-logit).exp());
            salary.push(rng.gen::<f64>() < p);

            // Null attributes: independent of everything above.
            race.push(sample_weighted(&mut rng, &[0.55, 0.20, 0.12, 0.08, 0.05]) as u32);
            region.push(sample_weighted(&mut rng, &[0.30, 0.28, 0.20, 0.15, 0.07]) as u32);
            wave.push(sample_weighted(&mut rng, &[0.25, 0.25, 0.25, 0.25]) as u32);
        }

        let cat = |labels: &[&str], codes: Vec<u32>| {
            Column::categorical_from_codes(labels.iter().map(|s| s.to_string()).collect(), codes)
        };

        TableBuilder::new()
            .push("age", Column::Int64(age))
            .push("sex", cat(&SEX, sex))
            .push("education", cat(&EDUCATION, education))
            .push("marital_status", cat(&MARITAL, marital))
            .push("occupation", cat(&OCCUPATION, occupation))
            .push("hours_per_week", Column::Int64(hours))
            .push("salary_over_50k", Column::Bool(salary))
            .push("race", cat(&RACE, race))
            .push("native_region", cat(&REGION, region))
            .push("survey_wave", cat(&WAVE, wave))
            .build()
            .expect("generator produces a well-formed table")
    }

    /// Generates a table and then independently permutes every column —
    /// the paper's "randomized Census" in which *every* association is
    /// destroyed and all hypotheses are true nulls.
    pub fn generate_randomized(&self, rows: usize) -> Table {
        let table = self.generate(rows);
        crate::sample::permute_columns(&table, self.seed ^ 0x9e37_79b9_7f4a_7c15)
            .expect("permutation of a valid table succeeds")
    }
}

/// Samples an index from unnormalized weights.
fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut r = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        r -= w;
        if r <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{categorical_histogram, histogram};
    use crate::predicate::Predicate;

    #[test]
    fn generation_is_deterministic() {
        let a = CensusGenerator::new(11).generate(500);
        let b = CensusGenerator::new(11).generate(500);
        assert_eq!(a, b);
        let c = CensusGenerator::new(12).generate(500);
        assert_ne!(a, c);
    }

    #[test]
    fn schema_matches_attribute_list() {
        let t = CensusGenerator::new(1).generate(10);
        assert_eq!(t.column_names(), &ATTRIBUTES);
        assert_eq!(t.rows(), 10);
    }

    #[test]
    fn marginals_are_plausible() {
        let t = CensusGenerator::new(3).generate(20_000);
        let ages = t.numeric_values("age", None).unwrap();
        assert!(ages.iter().all(|&a| (18.0..=80.0).contains(&a)));
        let mean_age = ages.iter().sum::<f64>() / ages.len() as f64;
        assert!((40.0..58.0).contains(&mean_age), "mean age {mean_age}");

        let sex = categorical_histogram(&t, "sex", None).unwrap();
        let p = sex.proportions();
        assert!((p[0] - 0.49).abs() < 0.02, "male share {}", p[0]);
        assert!((p[1] - 0.49).abs() < 0.02, "female share {}", p[1]);

        let hours = t.numeric_values("hours_per_week", None).unwrap();
        let mean_h = hours.iter().sum::<f64>() / hours.len() as f64;
        assert!((35.0..45.0).contains(&mean_h), "mean hours {mean_h}");

        let sal = histogram(&t, "salary_over_50k", None).unwrap();
        let high_share = sal.proportions()[1];
        // Adult-like: roughly a quarter earn > 50k.
        assert!(
            (0.10..0.45).contains(&high_share),
            "high-earner share {high_share}"
        );
    }

    #[test]
    fn planted_dependencies_are_detectable() {
        use aware_stats::tests::chi_square_independence;
        let t = CensusGenerator::new(7).generate(20_000);
        // education × salary: strongly dependent by construction.
        let hi = Predicate::eq("salary_over_50k", true).eval(&t).unwrap();
        let lo = hi.not();
        let h_hi = categorical_histogram(&t, "education", Some(&hi)).unwrap();
        let h_lo = categorical_histogram(&t, "education", Some(&lo)).unwrap();
        let out = chi_square_independence(&[h_hi.counts(), h_lo.counts()]).unwrap();
        assert!(out.p_value < 1e-12, "education×salary p = {}", out.p_value);

        // race × salary: independent by construction.
        let r_hi = categorical_histogram(&t, "race", Some(&hi)).unwrap();
        let r_lo = categorical_histogram(&t, "race", Some(&lo)).unwrap();
        let out = chi_square_independence(&[r_hi.counts(), r_lo.counts()]).unwrap();
        assert!(
            out.p_value > 1e-4,
            "race×salary p = {} (should be null)",
            out.p_value
        );
    }

    #[test]
    fn oracle_is_symmetric_and_covers_null_attributes() {
        assert!(CensusGenerator::is_dependent(
            "education",
            "salary_over_50k"
        ));
        assert!(CensusGenerator::is_dependent(
            "salary_over_50k",
            "education"
        ));
        assert!(CensusGenerator::is_dependent("sex", "salary_over_50k"));
        assert!(!CensusGenerator::is_dependent("sex", "education"));
        assert!(!CensusGenerator::is_dependent("sex", "marital_status"));
        assert!(!CensusGenerator::is_dependent("age", "sex"));
        assert!(!CensusGenerator::is_dependent("age", "age"));
        for null in CensusGenerator::null_attributes() {
            for attr in ATTRIBUTES {
                assert!(
                    !CensusGenerator::is_dependent(null, attr),
                    "{null} × {attr} should be independent"
                );
            }
        }
    }

    #[test]
    fn randomized_census_destroys_dependencies() {
        use aware_stats::tests::chi_square_independence;
        let t = CensusGenerator::new(5).generate_randomized(20_000);
        let hi = Predicate::eq("salary_over_50k", true).eval(&t).unwrap();
        let lo = hi.not();
        let h_hi = categorical_histogram(&t, "education", Some(&hi)).unwrap();
        let h_lo = categorical_histogram(&t, "education", Some(&lo)).unwrap();
        let out = chi_square_independence(&[h_hi.counts(), h_lo.counts()]).unwrap();
        // The strongest planted dependency must vanish after permutation.
        assert!(
            out.p_value > 1e-4,
            "permuted education×salary p = {}",
            out.p_value
        );
    }

    #[test]
    fn weighted_sampler_respects_weights() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[sample_weighted(&mut rng, &[0.5, 0.3, 0.2])] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.5).abs() < 0.02);
        assert!((counts[1] as f64 / 30_000.0 - 0.3).abs() < 0.02);
        assert!((counts[2] as f64 / 30_000.0 - 0.2).abs() < 0.02);
    }
}
