//! Filter predicates — the AST behind a chain of linked visualizations.
//!
//! In the paper's Figure 1, Eve drags out "salary > 50k", then "education =
//! PhD", then "marital-status ≠ Married"; each step is one [`Predicate`] and
//! the chain is their conjunction. The dashed-line "inverted selection" of
//! step C is [`Predicate::Not`]. Predicates render to compact strings
//! (`salary_over_50k=true ∧ education=PhD`) which the hypothesis tracker
//! uses as human-readable labels in the risk gauge.

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::table::Table;
use crate::value::Value;
use crate::{DataError, Result};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Neq,
    /// Less than (numeric only).
    Lt,
    /// Less or equal (numeric only).
    Le,
    /// Greater than (numeric only).
    Gt,
    /// Greater or equal (numeric only).
    Ge,
}

impl CmpOp {
    fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        }
    }
}

/// A filter over table rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every row (the empty filter chain).
    True,
    /// Column-vs-literal comparison.
    Cmp {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// Column value is one of the listed literals.
    In {
        /// Column name.
        column: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// Numeric column in the inclusive range `[lo, hi]` — a histogram
    /// brush selection.
    Between {
        /// Column name.
        column: String,
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Logical negation (the paper's dashed "inverted selection" link).
    Not(Box<Predicate>),
    /// Conjunction of sub-filters (a chain of linked visualizations).
    And(Vec<Predicate>),
    /// Disjunction of sub-filters.
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Convenience constructor for a comparison.
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: Value) -> Predicate {
        Predicate::Cmp {
            column: column.into(),
            op,
            value,
        }
    }

    /// Convenience constructor for equality — the most common filter.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::cmp(column, CmpOp::Eq, value.into())
    }

    /// Convenience constructor for a numeric brush.
    pub fn between(column: impl Into<String>, lo: f64, hi: f64) -> Predicate {
        Predicate::Between {
            column: column.into(),
            lo,
            hi,
        }
    }

    /// Negates this predicate.
    pub fn negate(self) -> Predicate {
        match self {
            Predicate::Not(inner) => *inner, // ¬¬p = p
            other => Predicate::Not(Box::new(other)),
        }
    }

    /// Conjoins another predicate onto this one, flattening nested `And`s.
    ///
    /// Every arm is O(1) amortized (the old `p ∧ And(b)` case shifted the
    /// whole vector to keep written order); conjunction is commutative
    /// and the evaluation cache orders clauses canonically at fingerprint
    /// time, so clause order is cosmetic.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) | (p, Predicate::And(mut a)) => {
                a.push(p);
                Predicate::And(a)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// True when this is the empty filter.
    pub fn is_trivial(&self) -> bool {
        matches!(self, Predicate::True)
    }

    /// Evaluates the predicate to a selection bitmap over `table`.
    ///
    /// Leaf predicates run word-packed kernels: 64 rows fold into one
    /// `u64` per inner-loop trip with no `Vec<bool>` intermediate, `In`
    /// scans the column once against a membership set, and boolean
    /// combinators stay word-at-a-time on the packed bitmaps.
    pub fn eval(&self, table: &Table) -> Result<Bitmap> {
        let rows = table.rows();
        match self {
            Predicate::True => Ok(Bitmap::ones(rows)),
            Predicate::Cmp { column, op, value } => eval_cmp(table, column, *op, value),
            Predicate::In { column, values } => eval_in(table, column, values),
            Predicate::Between { column, lo, hi } => {
                let (lo, hi) = (*lo, *hi);
                match table.column(column)? {
                    Column::Int64(v) => Ok(pack(v, |x| {
                        let x = x as f64;
                        x >= lo && x <= hi
                    })),
                    Column::Float64(v) => Ok(pack(v, |x| x >= lo && x <= hi)),
                    other => Err(DataError::TypeMismatch {
                        column: column.clone(),
                        expected: "numeric (int64/float64)",
                        actual: other.column_type().name(),
                    }),
                }
            }
            Predicate::Not(inner) => Ok(inner.eval(table)?.not()),
            Predicate::And(parts) => {
                let mut acc = Bitmap::ones(rows);
                for p in parts {
                    acc.and_assign(&p.eval(table)?);
                }
                Ok(acc)
            }
            Predicate::Or(parts) => {
                let mut acc = Bitmap::zeros(rows);
                for p in parts {
                    acc.or_assign(&p.eval(table)?);
                }
                Ok(acc)
            }
        }
    }
}

/// Packs `pred(vals[i])` into a bitmap 64 rows per word. `chunks(64)`
/// keeps the inner loop bounds-check-free so simple predicates
/// auto-vectorize.
#[inline]
fn pack<T: Copy>(vals: &[T], pred: impl Fn(T) -> bool) -> Bitmap {
    let words = vals
        .chunks(64)
        .map(|chunk| {
            let mut w = 0u64;
            for (i, &v) in chunk.iter().enumerate() {
                w |= (pred(v) as u64) << i;
            }
            w
        })
        .collect();
    Bitmap::from_words(words, vals.len())
}

/// Comparison kernel over a numeric slice: the operator is matched once,
/// outside the scan, so each arm is a tight branch-free loop.
#[inline]
fn pack_cmp<T: Copy>(vals: &[T], op: CmpOp, rhs: f64, conv: impl Fn(T) -> f64) -> Bitmap {
    match op {
        CmpOp::Eq => pack(vals, |x| conv(x) == rhs),
        CmpOp::Neq => pack(vals, |x| conv(x) != rhs),
        CmpOp::Lt => pack(vals, |x| conv(x) < rhs),
        CmpOp::Le => pack(vals, |x| conv(x) <= rhs),
        CmpOp::Gt => pack(vals, |x| conv(x) > rhs),
        CmpOp::Ge => pack(vals, |x| conv(x) >= rhs),
    }
}

fn eval_cmp(table: &Table, column: &str, op: CmpOp, value: &Value) -> Result<Bitmap> {
    let col = table.column(column)?;
    let mismatch = || DataError::TypeMismatch {
        column: column.to_owned(),
        expected: value.type_name(),
        actual: col.column_type().name(),
    };
    match col {
        Column::Int64(v) => {
            let rhs = value.as_f64().ok_or_else(mismatch)?;
            Ok(pack_cmp(v, op, rhs, |x| x as f64))
        }
        Column::Float64(v) => {
            let rhs = value.as_f64().ok_or_else(mismatch)?;
            Ok(pack_cmp(v, op, rhs, |x| x))
        }
        Column::Bool(v) => {
            let rhs = value.as_bool().ok_or_else(mismatch)?;
            match op {
                CmpOp::Eq => Ok(pack(v, |x| x == rhs)),
                CmpOp::Neq => Ok(pack(v, |x| x != rhs)),
                _ => Err(DataError::InvalidArgument {
                    context: "Predicate::eval",
                    constraint: "bool columns support only =/≠",
                }),
            }
        }
        Column::Categorical { labels, codes } => {
            let rhs = value.as_str().ok_or_else(mismatch)?;
            let target = labels.iter().position(|l| l == rhs).map(|i| i as u32);
            match (op, target) {
                (CmpOp::Eq, Some(t)) => Ok(pack(codes, |c| c == t)),
                (CmpOp::Eq, None) => Ok(Bitmap::zeros(codes.len())),
                (CmpOp::Neq, Some(t)) => Ok(pack(codes, |c| c != t)),
                (CmpOp::Neq, None) => Ok(Bitmap::ones(codes.len())),
                _ => Err(DataError::InvalidArgument {
                    context: "Predicate::eval",
                    constraint: "categorical columns support only =/≠",
                }),
            }
        }
    }
}

/// Membership kernel: one scan of the column against a pre-resolved
/// value set, instead of the old one-full-scan-per-listed-value
/// (O(k·n) plus k bitmap allocations).
fn eval_in(table: &Table, column: &str, values: &[Value]) -> Result<Bitmap> {
    let col = table.column(column)?;
    match col {
        Column::Int64(v) => {
            let set = numeric_set(column, col, values)?;
            Ok(pack(v, |x| set.contains_value(x as f64)))
        }
        Column::Float64(v) => {
            let set = numeric_set(column, col, values)?;
            Ok(pack(v, |x| set.contains_value(x)))
        }
        Column::Bool(v) => {
            // member[0] ⇔ `false` is listed, member[1] ⇔ `true` is listed.
            let mut member = [false; 2];
            for value in values {
                let rhs = value.as_bool().ok_or_else(|| DataError::TypeMismatch {
                    column: column.to_owned(),
                    expected: value.type_name(),
                    actual: col.column_type().name(),
                })?;
                member[rhs as usize] = true;
            }
            Ok(pack(v, |x| member[x as usize]))
        }
        Column::Categorical { labels, codes } => {
            // A code-indexed membership table: `In` over a dictionary
            // column reduces to a range-free lookup per row.
            let mut member = vec![false; labels.len()];
            for value in values {
                let rhs = value.as_str().ok_or_else(|| DataError::TypeMismatch {
                    column: column.to_owned(),
                    expected: value.type_name(),
                    actual: col.column_type().name(),
                })?;
                if let Some(i) = labels.iter().position(|l| l == rhs) {
                    member[i] = true;
                }
            }
            Ok(pack(codes, |c| member[c as usize]))
        }
    }
}

/// The resolved numeric membership set of an `In` predicate. Kept as a
/// plain slice scanned with `==` (not a sorted/bitwise structure) so
/// `-0.0`/`0.0` and every other IEEE equality edge matches the scalar
/// semantics exactly; listed values are few.
struct NumericSet(Vec<f64>);

impl NumericSet {
    #[inline]
    fn contains_value(&self, x: f64) -> bool {
        self.0.contains(&x)
    }
}

fn numeric_set(column: &str, col: &Column, values: &[Value]) -> Result<NumericSet> {
    let mut set = Vec::with_capacity(values.len());
    for value in values {
        let rhs = value.as_f64().ok_or_else(|| DataError::TypeMismatch {
            column: column.to_owned(),
            expected: value.type_name(),
            actual: col.column_type().name(),
        })?;
        if !set.contains(&rhs) {
            set.push(rhs);
        }
    }
    Ok(NumericSet(set))
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::True => write!(f, "⊤"),
            Predicate::Cmp { column, op, value } => {
                write!(f, "{column}{}{value}", op.symbol())
            }
            Predicate::In { column, values } => {
                write!(f, "{column}∈{{")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Predicate::Between { column, lo, hi } => write!(f, "{column}∈[{lo},{hi}]"),
            Predicate::Not(inner) => write!(f, "¬({inner})"),
            Predicate::And(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Predicate::Or(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
        }
    }
}

/// The scalar reference evaluator: row-at-a-time, bit-at-a-time, no
/// word packing anywhere. It exists solely as the oracle for the
/// equivalence property suite — the vectorized kernels must produce
/// bit-identical bitmaps (and identical errors) on every input.
#[cfg(test)]
pub(crate) mod reference {
    use super::*;

    /// Scalar comparison, one row at a time.
    fn eval_f64(op: CmpOp, a: f64, b: f64) -> bool {
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Neq => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    pub fn eval(pred: &Predicate, table: &Table) -> Result<Bitmap> {
        let rows = table.rows();
        match pred {
            Predicate::True => {
                let mut b = Bitmap::zeros(rows);
                for i in 0..rows {
                    b.set(i);
                }
                Ok(b)
            }
            Predicate::Cmp { column, op, value } => scalar_cmp(table, column, *op, value),
            Predicate::In { column, values } => {
                table.column(column)?;
                let mut acc = Bitmap::zeros(rows);
                for v in values {
                    let one = scalar_cmp(table, column, CmpOp::Eq, v)?;
                    for i in 0..rows {
                        if one.get(i) {
                            acc.set(i);
                        }
                    }
                }
                Ok(acc)
            }
            Predicate::Between { column, lo, hi } => {
                let col = table.column(column)?;
                match col {
                    Column::Int64(_) | Column::Float64(_) => {
                        let mut b = Bitmap::zeros(rows);
                        for i in 0..rows {
                            let x = col.numeric_at(i).expect("numeric column");
                            if x >= *lo && x <= *hi {
                                b.set(i);
                            }
                        }
                        Ok(b)
                    }
                    other => Err(DataError::TypeMismatch {
                        column: column.clone(),
                        expected: "numeric (int64/float64)",
                        actual: other.column_type().name(),
                    }),
                }
            }
            Predicate::Not(inner) => {
                let pos = eval(inner, table)?;
                let mut b = Bitmap::zeros(rows);
                for i in 0..rows {
                    if !pos.get(i) {
                        b.set(i);
                    }
                }
                Ok(b)
            }
            Predicate::And(parts) => {
                let mut acc = eval(&Predicate::True, table)?;
                for p in parts {
                    let one = eval(p, table)?;
                    for i in 0..rows {
                        if !one.get(i) {
                            acc.clear(i);
                        }
                    }
                }
                Ok(acc)
            }
            Predicate::Or(parts) => {
                let mut acc = Bitmap::zeros(rows);
                for p in parts {
                    let one = eval(p, table)?;
                    for i in 0..rows {
                        if one.get(i) {
                            acc.set(i);
                        }
                    }
                }
                Ok(acc)
            }
        }
    }

    fn scalar_cmp(table: &Table, column: &str, op: CmpOp, value: &Value) -> Result<Bitmap> {
        let col = table.column(column)?;
        let mismatch = || DataError::TypeMismatch {
            column: column.to_owned(),
            expected: value.type_name(),
            actual: col.column_type().name(),
        };
        let rows = col.len();
        let mut b = Bitmap::zeros(rows);
        match col {
            Column::Int64(v) => {
                let rhs = value.as_f64().ok_or_else(mismatch)?;
                for (i, &x) in v.iter().enumerate() {
                    if eval_f64(op, x as f64, rhs) {
                        b.set(i);
                    }
                }
            }
            Column::Float64(v) => {
                let rhs = value.as_f64().ok_or_else(mismatch)?;
                for (i, &x) in v.iter().enumerate() {
                    if eval_f64(op, x, rhs) {
                        b.set(i);
                    }
                }
            }
            Column::Bool(v) => {
                let rhs = value.as_bool().ok_or_else(mismatch)?;
                for (i, &x) in v.iter().enumerate() {
                    let hit = match op {
                        CmpOp::Eq => x == rhs,
                        CmpOp::Neq => x != rhs,
                        _ => {
                            return Err(DataError::InvalidArgument {
                                context: "Predicate::eval",
                                constraint: "bool columns support only =/≠",
                            })
                        }
                    };
                    if hit {
                        b.set(i);
                    }
                }
            }
            Column::Categorical { labels, codes } => {
                let rhs = value.as_str().ok_or_else(mismatch)?;
                let target = labels.iter().position(|l| l == rhs).map(|i| i as u32);
                for (i, &c) in codes.iter().enumerate() {
                    let hit = match (op, target) {
                        (CmpOp::Eq, Some(t)) => c == t,
                        (CmpOp::Eq, None) => false,
                        (CmpOp::Neq, Some(t)) => c != t,
                        (CmpOp::Neq, None) => true,
                        _ => {
                            return Err(DataError::InvalidArgument {
                                context: "Predicate::eval",
                                constraint: "categorical columns support only =/≠",
                            })
                        }
                    };
                    if hit {
                        b.set(i);
                    }
                }
            }
        }
        Ok(b)
    }
}

/// Deterministic generators for random tables and predicate ASTs, shared
/// by the equivalence suites here and in [`crate::cache`].
#[cfg(test)]
pub(crate) mod arbitrary {
    use super::*;
    use crate::column::Column;
    use crate::table::TableBuilder;

    /// Splitmix-style generator, independent of the workspace RNG so the
    /// case corpus is a pure function of the drawn seed.
    pub struct Gen(pub u64);

    impl Gen {
        pub fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        pub fn pick(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    pub const LABELS: [&str; 4] = ["a", "b", "c", "d"];
    pub const FLOATS: [f64; 5] = [-1.5, 0.0, 2.5, 7.25, 64.0];
    pub const COLUMNS: [&str; 5] = ["i", "f", "b", "c", "ghost"];

    /// A small table over one column of each type (plus adversarial
    /// lengths: 0, tail-word, multi-word row counts all occur).
    pub fn table(g: &mut Gen, rows: usize) -> Table {
        let ints: Vec<i64> = (0..rows).map(|_| g.pick(6) as i64 - 2).collect();
        let floats: Vec<f64> = (0..rows).map(|_| FLOATS[g.pick(FLOATS.len())]).collect();
        let bools: Vec<bool> = (0..rows).map(|_| g.pick(2) == 0).collect();
        let cats: Vec<&str> = (0..rows).map(|_| LABELS[g.pick(LABELS.len())]).collect();
        TableBuilder::new()
            .push("i", Column::Int64(ints))
            .push("f", Column::Float64(floats))
            .push("b", Column::Bool(bools))
            .push("c", Column::categorical_from_strs(&cats))
            .build()
            .expect("generated table is well-formed")
    }

    pub fn value(g: &mut Gen) -> Value {
        match g.pick(4) {
            0 => Value::Int(g.pick(6) as i64 - 2),
            1 => Value::Float(FLOATS[g.pick(FLOATS.len())]),
            2 => Value::Bool(g.pick(2) == 0),
            // "zz" is never a column label: exercises the unknown-label
            // arms of the categorical kernels.
            _ => Value::Str(["a", "b", "c", "d", "zz"][g.pick(5)].into()),
        }
    }

    pub fn predicate(g: &mut Gen, depth: usize) -> Predicate {
        let ops = [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        // Leaves only at the depth floor; combinators otherwise.
        let variant = if depth == 0 { g.pick(10) } else { g.pick(16) };
        match variant {
            0..=5 => Predicate::Cmp {
                column: COLUMNS[g.pick(COLUMNS.len())].into(),
                op: ops[g.pick(ops.len())],
                value: value(g),
            },
            6 | 7 => {
                let column = COLUMNS[g.pick(COLUMNS.len())].into();
                let k = g.pick(4);
                Predicate::In {
                    column,
                    values: (0..k).map(|_| value(g)).collect(),
                }
            }
            8 => {
                let a = FLOATS[g.pick(FLOATS.len())];
                let b = FLOATS[g.pick(FLOATS.len())];
                Predicate::Between {
                    column: COLUMNS[g.pick(COLUMNS.len())].into(),
                    lo: a.min(b),
                    hi: a.max(b),
                }
            }
            9 => Predicate::True,
            10 => Predicate::Not(Box::new(predicate(g, depth - 1))),
            11..=13 => {
                let k = g.pick(4);
                Predicate::And((0..k).map(|_| predicate(g, depth - 1)).collect())
            }
            _ => {
                let k = g.pick(4);
                Predicate::Or((0..k).map(|_| predicate(g, depth - 1)).collect())
            }
        }
    }
}

#[cfg(test)]
mod equivalence {
    use super::arbitrary::Gen;
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The word-packed kernels agree with the scalar reference on
        /// every random table × random AST — bit-identical bitmaps on
        /// success, identical errors on failure.
        #[test]
        fn vectorized_eval_matches_scalar_reference(
            seed in 0u64..u64::MAX,
            rows in 0usize..200,
        ) {
            let mut g = Gen(seed);
            let table = super::arbitrary::table(&mut g, rows);
            for _ in 0..4 {
                let pred = super::arbitrary::predicate(&mut g, 3);
                let fast = pred.eval(&table);
                let slow = reference::eval(&pred, &table);
                prop_assert_eq!(fast, slow, "diverged on {}", pred);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::table::TableBuilder;

    fn demo() -> Table {
        TableBuilder::new()
            .push("age", Column::Int64(vec![25, 40, 31, 60, 18]))
            .push(
                "salary",
                Column::Float64(vec![30.0, 80.0, 55.0, 20.0, 10.0]),
            )
            .push(
                "education",
                Column::categorical_from_strs(&["HS", "PhD", "Master", "HS", "Bachelor"]),
            )
            .push(
                "over_50k",
                Column::Bool(vec![false, true, true, false, false]),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn numeric_comparisons() {
        let t = demo();
        let sel = Predicate::cmp("age", CmpOp::Ge, Value::from(31i64))
            .eval(&t)
            .unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        let sel = Predicate::cmp("salary", CmpOp::Lt, Value::from(30.0))
            .eval(&t)
            .unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![3, 4]);
        // Int column compared against float literal coerces.
        let sel = Predicate::cmp("age", CmpOp::Eq, Value::from(40.0))
            .eval(&t)
            .unwrap();
        assert_eq!(sel.count_ones(), 1);
    }

    #[test]
    fn categorical_and_bool_comparisons() {
        let t = demo();
        let sel = Predicate::eq("education", "HS").eval(&t).unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![0, 3]);
        let sel = Predicate::cmp("education", CmpOp::Neq, Value::from("HS"))
            .eval(&t)
            .unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 2, 4]);
        // Unknown label: = matches nothing, ≠ matches everything.
        assert_eq!(
            Predicate::eq("education", "Kindergarten")
                .eval(&t)
                .unwrap()
                .count_ones(),
            0
        );
        assert_eq!(
            Predicate::cmp("education", CmpOp::Neq, Value::from("Kindergarten"))
                .eval(&t)
                .unwrap()
                .count_ones(),
            5
        );
        let sel = Predicate::eq("over_50k", true).eval(&t).unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn type_errors_are_reported() {
        let t = demo();
        assert!(matches!(
            Predicate::eq("education", 5i64).eval(&t),
            Err(DataError::TypeMismatch { .. })
        ));
        assert!(matches!(
            Predicate::cmp("over_50k", CmpOp::Lt, Value::from(true)).eval(&t),
            Err(DataError::InvalidArgument { .. })
        ));
        assert!(matches!(
            Predicate::cmp("education", CmpOp::Gt, Value::from("HS")).eval(&t),
            Err(DataError::InvalidArgument { .. })
        ));
        assert!(Predicate::eq("ghost", 1i64).eval(&t).is_err());
        assert!(matches!(
            Predicate::between("education", 0.0, 1.0).eval(&t),
            Err(DataError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn in_on_unknown_column_errors_even_with_no_values() {
        // Intentional change with the single-scan membership kernel:
        // the column is resolved before the value list is consulted, so
        // an unknown column is always an error. (The old per-value scan
        // returned Ok(zeros) for an empty list because it never touched
        // the column; at the session layer both shapes were Untestable.)
        let t = demo();
        let empty_in = Predicate::In {
            column: "ghost".into(),
            values: vec![],
        };
        assert!(matches!(
            empty_in.eval(&t),
            Err(DataError::UnknownColumn { .. })
        ));
        // On a known column, an empty list still selects nothing.
        let none = Predicate::In {
            column: "education".into(),
            values: vec![],
        };
        assert_eq!(none.eval(&t).unwrap().count_ones(), 0);
    }

    #[test]
    fn between_and_in() {
        let t = demo();
        let sel = Predicate::between("age", 20.0, 40.0).eval(&t).unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        let sel = Predicate::In {
            column: "education".into(),
            values: vec![Value::from("PhD"), Value::from("Master")],
        }
        .eval(&t)
        .unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn logical_composition() {
        let t = demo();
        let phd_or_hs = Predicate::Or(vec![
            Predicate::eq("education", "PhD"),
            Predicate::eq("education", "HS"),
        ]);
        assert_eq!(phd_or_hs.eval(&t).unwrap().count_ones(), 3);

        let young_high = Predicate::cmp("age", CmpOp::Lt, Value::from(45i64))
            .and(Predicate::eq("over_50k", true));
        assert_eq!(
            young_high.eval(&t).unwrap().iter_ones().collect::<Vec<_>>(),
            vec![1, 2]
        );

        let not_that = young_high.clone().negate();
        assert_eq!(not_that.eval(&t).unwrap().count_ones(), 3);
        // Double negation restores the predicate structurally.
        assert_eq!(not_that.negate(), young_high);
    }

    #[test]
    fn and_flattening_and_true_elision() {
        let a = Predicate::eq("education", "PhD");
        let b = Predicate::eq("over_50k", true);
        let c = Predicate::between("age", 30.0, 50.0);
        let chained = a.clone().and(b.clone()).and(c.clone());
        match &chained {
            Predicate::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
        assert_eq!(Predicate::True.and(a.clone()), a);
        assert_eq!(a.clone().and(Predicate::True), a);
        assert!(Predicate::True.is_trivial());
        assert!(!a.is_trivial());
    }

    #[test]
    fn display_renders_chains() {
        let p = Predicate::eq("education", "PhD").and(Predicate::eq("marital", "Married").negate());
        assert_eq!(p.to_string(), "education=PhD ∧ ¬(marital=Married)");
        let q = Predicate::between("age", 18.0, 65.0);
        assert_eq!(q.to_string(), "age∈[18,65]");
        let r = Predicate::In {
            column: "edu".into(),
            values: vec![Value::from("HS"), Value::from("PhD")],
        };
        assert_eq!(r.to_string(), "edu∈{HS,PhD}");
        assert_eq!(Predicate::True.to_string(), "⊤");
    }

    #[test]
    fn conjunction_of_empty_parts_is_all_rows() {
        let t = demo();
        assert_eq!(Predicate::And(vec![]).eval(&t).unwrap().count_ones(), 5);
        assert_eq!(Predicate::Or(vec![]).eval(&t).unwrap().count_ones(), 0);
        assert_eq!(Predicate::True.eval(&t).unwrap().count_ones(), 5);
    }
}
