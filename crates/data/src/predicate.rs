//! Filter predicates — the AST behind a chain of linked visualizations.
//!
//! In the paper's Figure 1, Eve drags out "salary > 50k", then "education =
//! PhD", then "marital-status ≠ Married"; each step is one [`Predicate`] and
//! the chain is their conjunction. The dashed-line "inverted selection" of
//! step C is [`Predicate::Not`]. Predicates render to compact strings
//! (`salary_over_50k=true ∧ education=PhD`) which the hypothesis tracker
//! uses as human-readable labels in the risk gauge.

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::table::Table;
use crate::value::Value;
use crate::{DataError, Result};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Neq,
    /// Less than (numeric only).
    Lt,
    /// Less or equal (numeric only).
    Le,
    /// Greater than (numeric only).
    Gt,
    /// Greater or equal (numeric only).
    Ge,
}

impl CmpOp {
    fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        }
    }

    fn eval_f64(&self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Neq => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A filter over table rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every row (the empty filter chain).
    True,
    /// Column-vs-literal comparison.
    Cmp {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// Column value is one of the listed literals.
    In {
        /// Column name.
        column: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// Numeric column in the inclusive range `[lo, hi]` — a histogram
    /// brush selection.
    Between {
        /// Column name.
        column: String,
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Logical negation (the paper's dashed "inverted selection" link).
    Not(Box<Predicate>),
    /// Conjunction of sub-filters (a chain of linked visualizations).
    And(Vec<Predicate>),
    /// Disjunction of sub-filters.
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Convenience constructor for a comparison.
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: Value) -> Predicate {
        Predicate::Cmp {
            column: column.into(),
            op,
            value,
        }
    }

    /// Convenience constructor for equality — the most common filter.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::cmp(column, CmpOp::Eq, value.into())
    }

    /// Convenience constructor for a numeric brush.
    pub fn between(column: impl Into<String>, lo: f64, hi: f64) -> Predicate {
        Predicate::Between {
            column: column.into(),
            lo,
            hi,
        }
    }

    /// Negates this predicate.
    pub fn negate(self) -> Predicate {
        match self {
            Predicate::Not(inner) => *inner, // ¬¬p = p
            other => Predicate::Not(Box::new(other)),
        }
    }

    /// Conjoins another predicate onto this one, flattening nested `And`s.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// True when this is the empty filter.
    pub fn is_trivial(&self) -> bool {
        matches!(self, Predicate::True)
    }

    /// Evaluates the predicate to a selection bitmap over `table`.
    pub fn eval(&self, table: &Table) -> Result<Bitmap> {
        let rows = table.rows();
        match self {
            Predicate::True => Ok(Bitmap::ones(rows)),
            Predicate::Cmp { column, op, value } => eval_cmp(table, column, *op, value),
            Predicate::In { column, values } => {
                let mut acc = Bitmap::zeros(rows);
                for v in values {
                    acc.or_assign(&eval_cmp(table, column, CmpOp::Eq, v)?);
                }
                Ok(acc)
            }
            Predicate::Between { column, lo, hi } => {
                let col = table.column(column)?;
                match col {
                    Column::Int64(v) => Ok(Bitmap::from_bools(
                        &v.iter()
                            .map(|&x| (x as f64) >= *lo && (x as f64) <= *hi)
                            .collect::<Vec<_>>(),
                    )),
                    Column::Float64(v) => Ok(Bitmap::from_bools(
                        &v.iter().map(|&x| x >= *lo && x <= *hi).collect::<Vec<_>>(),
                    )),
                    other => Err(DataError::TypeMismatch {
                        column: column.clone(),
                        expected: "numeric (int64/float64)",
                        actual: other.column_type().name(),
                    }),
                }
            }
            Predicate::Not(inner) => Ok(inner.eval(table)?.not()),
            Predicate::And(parts) => {
                let mut acc = Bitmap::ones(rows);
                for p in parts {
                    acc.and_assign(&p.eval(table)?);
                }
                Ok(acc)
            }
            Predicate::Or(parts) => {
                let mut acc = Bitmap::zeros(rows);
                for p in parts {
                    acc.or_assign(&p.eval(table)?);
                }
                Ok(acc)
            }
        }
    }
}

fn eval_cmp(table: &Table, column: &str, op: CmpOp, value: &Value) -> Result<Bitmap> {
    let col = table.column(column)?;
    let mismatch = || DataError::TypeMismatch {
        column: column.to_owned(),
        expected: value.type_name(),
        actual: col.column_type().name(),
    };
    match col {
        Column::Int64(v) => {
            let rhs = value.as_f64().ok_or_else(mismatch)?;
            Ok(Bitmap::from_bools(
                &v.iter()
                    .map(|&x| op.eval_f64(x as f64, rhs))
                    .collect::<Vec<_>>(),
            ))
        }
        Column::Float64(v) => {
            let rhs = value.as_f64().ok_or_else(mismatch)?;
            Ok(Bitmap::from_bools(
                &v.iter().map(|&x| op.eval_f64(x, rhs)).collect::<Vec<_>>(),
            ))
        }
        Column::Bool(v) => {
            let rhs = value.as_bool().ok_or_else(mismatch)?;
            let res: Vec<bool> = match op {
                CmpOp::Eq => v.iter().map(|&x| x == rhs).collect(),
                CmpOp::Neq => v.iter().map(|&x| x != rhs).collect(),
                _ => {
                    return Err(DataError::InvalidArgument {
                        context: "Predicate::eval",
                        constraint: "bool columns support only =/≠",
                    })
                }
            };
            Ok(Bitmap::from_bools(&res))
        }
        Column::Categorical { labels, codes } => {
            let rhs = value.as_str().ok_or_else(mismatch)?;
            let target = labels.iter().position(|l| l == rhs).map(|i| i as u32);
            let res: Vec<bool> = match (op, target) {
                (CmpOp::Eq, Some(t)) => codes.iter().map(|&c| c == t).collect(),
                (CmpOp::Eq, None) => vec![false; codes.len()],
                (CmpOp::Neq, Some(t)) => codes.iter().map(|&c| c != t).collect(),
                (CmpOp::Neq, None) => vec![true; codes.len()],
                _ => {
                    return Err(DataError::InvalidArgument {
                        context: "Predicate::eval",
                        constraint: "categorical columns support only =/≠",
                    })
                }
            };
            Ok(Bitmap::from_bools(&res))
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::True => write!(f, "⊤"),
            Predicate::Cmp { column, op, value } => {
                write!(f, "{column}{}{value}", op.symbol())
            }
            Predicate::In { column, values } => {
                write!(f, "{column}∈{{")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Predicate::Between { column, lo, hi } => write!(f, "{column}∈[{lo},{hi}]"),
            Predicate::Not(inner) => write!(f, "¬({inner})"),
            Predicate::And(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Predicate::Or(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::table::TableBuilder;

    fn demo() -> Table {
        TableBuilder::new()
            .push("age", Column::Int64(vec![25, 40, 31, 60, 18]))
            .push(
                "salary",
                Column::Float64(vec![30.0, 80.0, 55.0, 20.0, 10.0]),
            )
            .push(
                "education",
                Column::categorical_from_strs(&["HS", "PhD", "Master", "HS", "Bachelor"]),
            )
            .push(
                "over_50k",
                Column::Bool(vec![false, true, true, false, false]),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn numeric_comparisons() {
        let t = demo();
        let sel = Predicate::cmp("age", CmpOp::Ge, Value::from(31i64))
            .eval(&t)
            .unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        let sel = Predicate::cmp("salary", CmpOp::Lt, Value::from(30.0))
            .eval(&t)
            .unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![3, 4]);
        // Int column compared against float literal coerces.
        let sel = Predicate::cmp("age", CmpOp::Eq, Value::from(40.0))
            .eval(&t)
            .unwrap();
        assert_eq!(sel.count_ones(), 1);
    }

    #[test]
    fn categorical_and_bool_comparisons() {
        let t = demo();
        let sel = Predicate::eq("education", "HS").eval(&t).unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![0, 3]);
        let sel = Predicate::cmp("education", CmpOp::Neq, Value::from("HS"))
            .eval(&t)
            .unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 2, 4]);
        // Unknown label: = matches nothing, ≠ matches everything.
        assert_eq!(
            Predicate::eq("education", "Kindergarten")
                .eval(&t)
                .unwrap()
                .count_ones(),
            0
        );
        assert_eq!(
            Predicate::cmp("education", CmpOp::Neq, Value::from("Kindergarten"))
                .eval(&t)
                .unwrap()
                .count_ones(),
            5
        );
        let sel = Predicate::eq("over_50k", true).eval(&t).unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn type_errors_are_reported() {
        let t = demo();
        assert!(matches!(
            Predicate::eq("education", 5i64).eval(&t),
            Err(DataError::TypeMismatch { .. })
        ));
        assert!(matches!(
            Predicate::cmp("over_50k", CmpOp::Lt, Value::from(true)).eval(&t),
            Err(DataError::InvalidArgument { .. })
        ));
        assert!(matches!(
            Predicate::cmp("education", CmpOp::Gt, Value::from("HS")).eval(&t),
            Err(DataError::InvalidArgument { .. })
        ));
        assert!(Predicate::eq("ghost", 1i64).eval(&t).is_err());
        assert!(matches!(
            Predicate::between("education", 0.0, 1.0).eval(&t),
            Err(DataError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn between_and_in() {
        let t = demo();
        let sel = Predicate::between("age", 20.0, 40.0).eval(&t).unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        let sel = Predicate::In {
            column: "education".into(),
            values: vec![Value::from("PhD"), Value::from("Master")],
        }
        .eval(&t)
        .unwrap();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn logical_composition() {
        let t = demo();
        let phd_or_hs = Predicate::Or(vec![
            Predicate::eq("education", "PhD"),
            Predicate::eq("education", "HS"),
        ]);
        assert_eq!(phd_or_hs.eval(&t).unwrap().count_ones(), 3);

        let young_high = Predicate::cmp("age", CmpOp::Lt, Value::from(45i64))
            .and(Predicate::eq("over_50k", true));
        assert_eq!(
            young_high.eval(&t).unwrap().iter_ones().collect::<Vec<_>>(),
            vec![1, 2]
        );

        let not_that = young_high.clone().negate();
        assert_eq!(not_that.eval(&t).unwrap().count_ones(), 3);
        // Double negation restores the predicate structurally.
        assert_eq!(not_that.negate(), young_high);
    }

    #[test]
    fn and_flattening_and_true_elision() {
        let a = Predicate::eq("education", "PhD");
        let b = Predicate::eq("over_50k", true);
        let c = Predicate::between("age", 30.0, 50.0);
        let chained = a.clone().and(b.clone()).and(c.clone());
        match &chained {
            Predicate::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
        assert_eq!(Predicate::True.and(a.clone()), a);
        assert_eq!(a.clone().and(Predicate::True), a);
        assert!(Predicate::True.is_trivial());
        assert!(!a.is_trivial());
    }

    #[test]
    fn display_renders_chains() {
        let p = Predicate::eq("education", "PhD").and(Predicate::eq("marital", "Married").negate());
        assert_eq!(p.to_string(), "education=PhD ∧ ¬(marital=Married)");
        let q = Predicate::between("age", 18.0, 65.0);
        assert_eq!(q.to_string(), "age∈[18,65]");
        let r = Predicate::In {
            column: "edu".into(),
            values: vec![Value::from("HS"), Value::from("PhD")],
        };
        assert_eq!(r.to_string(), "edu∈{HS,PhD}");
        assert_eq!(Predicate::True.to_string(), "⊤");
    }

    #[test]
    fn conjunction_of_empty_parts_is_all_rows() {
        let t = demo();
        assert_eq!(Predicate::And(vec![]).eval(&t).unwrap().count_ones(), 5);
        assert_eq!(Predicate::Or(vec![]).eval(&t).unwrap().count_ones(), 0);
        assert_eq!(Predicate::True.eval(&t).unwrap().count_ones(), 5);
    }
}
