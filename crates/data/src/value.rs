//! Dynamically-typed cell values used at the API boundary.
//!
//! Columns store data natively (see [`crate::column`]); `Value` only appears
//! where users write predicates or read individual cells, so the dynamic
//! dispatch cost never touches scan loops.

use std::fmt;

/// One cell of a table, or one literal in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Categorical label / string.
    Str(String),
}

impl Value {
    /// Static name of the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int64",
            Value::Float(_) => "float64",
            Value::Bool(_) => "bool",
            Value::Str(_) => "categorical",
        }
    }

    /// Numeric view: ints and floats coerce to `f64`, others are `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String view for categorical comparisons.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_views() {
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("PhD").as_str(), Some("PhD"));
        assert_eq!(Value::from("PhD".to_string()), Value::Str("PhD".into()));
        assert_eq!(Value::from(true).as_f64(), None);
        assert_eq!(Value::from(1i64).as_str(), None);
        assert_eq!(Value::from(1.0).as_bool(), None);
    }

    #[test]
    fn type_names_and_display() {
        assert_eq!(Value::from(1i64).type_name(), "int64");
        assert_eq!(Value::from(1.0).type_name(), "float64");
        assert_eq!(Value::from(false).type_name(), "bool");
        assert_eq!(Value::from("x").type_name(), "categorical");
        assert_eq!(format!("{}", Value::from("Male")), "Male");
        assert_eq!(format!("{}", Value::from(42i64)), "42");
    }
}
