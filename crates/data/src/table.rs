//! Immutable column-oriented tables.

use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnType};
use crate::value::Value;
use crate::{DataError, Result};

/// A named, typed, immutable table.
///
/// Tables are cheap to share (`Arc<Table>` upstream) and all exploration
/// operations — filtering, histograms, sampling — are non-destructive reads.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    names: Vec<String>,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Builds a table from `(name, column)` pairs.
    ///
    /// All columns must have equal length and distinct names. A table with
    /// zero columns is invalid.
    pub fn new(columns: Vec<(String, Column)>) -> Result<Table> {
        if columns.is_empty() {
            return Err(DataError::Empty {
                context: "Table::new",
            });
        }
        let rows = columns[0].1.len();
        let mut names = Vec::with_capacity(columns.len());
        let mut cols = Vec::with_capacity(columns.len());
        for (name, col) in columns {
            if names.contains(&name) {
                return Err(DataError::DuplicateColumn { name });
            }
            if col.len() != rows {
                return Err(DataError::LengthMismatch {
                    expected: rows,
                    got: col.len(),
                    column: name,
                });
            }
            names.push(name);
            cols.push(col);
        }
        Ok(Table {
            names,
            columns: cols,
            rows,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| DataError::UnknownColumn {
                name: name.to_owned(),
            })
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Column by position.
    pub fn column_at(&self, index: usize) -> &Column {
        &self.columns[index]
    }

    /// Type of a column by name.
    pub fn column_type(&self, name: &str) -> Result<ColumnType> {
        Ok(self.column(name)?.column_type())
    }

    /// Cell accessor (UI/debug path).
    pub fn value(&self, name: &str, row: usize) -> Result<Value> {
        let col = self.column(name)?;
        if row >= self.rows {
            return Err(DataError::InvalidArgument {
                context: "Table::value",
                constraint: "row < table.rows()",
            });
        }
        Ok(col.value_at(row))
    }

    /// Validates that a selection bitmap matches this table's row count.
    pub fn check_selection(&self, selection: &Bitmap) -> Result<()> {
        if selection.len() != self.rows {
            return Err(DataError::SelectionSizeMismatch {
                table_rows: self.rows,
                bitmap_bits: selection.len(),
            });
        }
        Ok(())
    }

    /// Materializes the rows with set bits into a new table.
    pub fn filter(&self, selection: &Bitmap) -> Result<Table> {
        self.check_selection(selection)?;
        let rows: Vec<usize> = selection.iter_ones().collect();
        let columns = self
            .names
            .iter()
            .cloned()
            .zip(self.columns.iter().map(|c| c.take(&rows)))
            .collect();
        Table::new(columns)
    }

    /// Projects a subset of columns into a new table.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let mut columns = Vec::with_capacity(names.len());
        for &name in names {
            let idx = self.column_index(name)?;
            columns.push((self.names[idx].clone(), self.columns[idx].clone()));
        }
        Table::new(columns)
    }

    /// Numeric values of `column` restricted to `selection` (or all rows).
    ///
    /// Errors on non-numeric columns (when any row is requested); this
    /// is the extraction path for t-tests over filtered sub-populations.
    /// The output is allocated exactly once (`|selection|` capacity) and
    /// filled with a word-at-a-time walk of the selection.
    pub fn numeric_values(&self, name: &str, selection: Option<&Bitmap>) -> Result<Vec<f64>> {
        let col = self.column(name)?;
        if let Some(sel) = selection {
            self.check_selection(sel)?;
        }
        let wanted = match selection {
            Some(sel) => sel.count_ones(),
            None => self.rows,
        };
        let mut out = Vec::with_capacity(wanted);
        match col {
            Column::Int64(v) => match selection {
                Some(sel) => sel.for_each_set(|i| out.push(v[i] as f64)),
                None => out.extend(v.iter().map(|&x| x as f64)),
            },
            Column::Float64(v) => match selection {
                Some(sel) => sel.for_each_set(|i| out.push(v[i])),
                None => out.extend_from_slice(v),
            },
            other => {
                // Matches the scalar semantics: extracting zero rows
                // from a non-numeric column is an empty Ok, extracting
                // any row is a type error.
                if wanted > 0 {
                    return Err(DataError::TypeMismatch {
                        column: name.to_owned(),
                        expected: "numeric (int64/float64)",
                        actual: other.column_type().name(),
                    });
                }
            }
        }
        Ok(out)
    }

    /// FNV-1a content fingerprint over the schema (column names and
    /// types, in order) and every cell of every column. Two tables
    /// fingerprint equal iff they are byte-equal in schema and data
    /// (floats by IEEE-754 bits, so `NaN` payloads and `-0.0` count),
    /// which is what lets a session snapshot taken on one process be
    /// refused by another process holding a *different* table under the
    /// same dataset name — restoring a wealth ledger against changed
    /// data would silently invalidate every recorded p-value.
    ///
    /// Cost is one linear scan; callers (the serving layer) compute it
    /// once at dataset registration and cache it.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = crate::hash::Fnv1a::new();
        let mut eat = |bytes: &[u8]| hash.update(bytes);
        eat(&(self.rows as u64).to_le_bytes());
        eat(&(self.columns.len() as u64).to_le_bytes());
        for (name, col) in self.names.iter().zip(&self.columns) {
            eat(&(name.len() as u64).to_le_bytes());
            eat(name.as_bytes());
            match col {
                Column::Int64(v) => {
                    eat(&[1]);
                    for &x in v {
                        eat(&x.to_le_bytes());
                    }
                }
                Column::Float64(v) => {
                    eat(&[2]);
                    for &x in v {
                        eat(&x.to_bits().to_le_bytes());
                    }
                }
                Column::Bool(v) => {
                    eat(&[3]);
                    for &x in v {
                        eat(&[x as u8]);
                    }
                }
                Column::Categorical { labels, codes } => {
                    eat(&[4]);
                    eat(&(labels.len() as u64).to_le_bytes());
                    for label in labels {
                        eat(&(label.len() as u64).to_le_bytes());
                        eat(label.as_bytes());
                    }
                    for &code in codes {
                        eat(&code.to_le_bytes());
                    }
                }
            }
        }
        hash.finish()
    }
}

/// Incremental table builder used by generators and the CSV reader.
#[derive(Debug, Default)]
pub struct TableBuilder {
    columns: Vec<(String, Column)>,
}

impl TableBuilder {
    /// Empty builder.
    pub fn new() -> TableBuilder {
        TableBuilder::default()
    }

    /// Adds a column; order of insertion is preserved.
    pub fn push(mut self, name: impl Into<String>, column: Column) -> TableBuilder {
        self.columns.push((name.into(), column));
        self
    }

    /// Finalizes the table, validating shapes and names.
    pub fn build(self) -> Result<Table> {
        Table::new(self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Table {
        TableBuilder::new()
            .push("age", Column::Int64(vec![25, 40, 31, 60]))
            .push("salary", Column::Float64(vec![30.0, 80.0, 55.0, 20.0]))
            .push("sex", Column::categorical_from_strs(&["M", "F", "F", "M"]))
            .push("employed", Column::Bool(vec![true, true, false, false]))
            .build()
            .unwrap()
    }

    #[test]
    fn fingerprint_tracks_content_not_identity() {
        let t = demo();
        // Deterministic: same content, same fingerprint, across clones.
        assert_eq!(t.fingerprint(), demo().fingerprint());
        // Any cell change changes it.
        let mut tweaked = TableBuilder::new()
            .push("age", Column::Int64(vec![25, 40, 31, 61]))
            .push("salary", Column::Float64(vec![30.0, 80.0, 55.0, 20.0]))
            .push("sex", Column::categorical_from_strs(&["M", "F", "F", "M"]))
            .push("employed", Column::Bool(vec![true, true, false, false]))
            .build()
            .unwrap();
        assert_ne!(t.fingerprint(), tweaked.fingerprint());
        // A renamed column changes it even with identical data.
        tweaked = TableBuilder::new()
            .push("age2", Column::Int64(vec![25, 40, 31, 60]))
            .push("salary", Column::Float64(vec![30.0, 80.0, 55.0, 20.0]))
            .push("sex", Column::categorical_from_strs(&["M", "F", "F", "M"]))
            .push("employed", Column::Bool(vec![true, true, false, false]))
            .build()
            .unwrap();
        assert_ne!(t.fingerprint(), tweaked.fingerprint());
        // Floats hash by bits: -0.0 and 0.0 are different tables.
        let zeros = |z: f64| {
            TableBuilder::new()
                .push("x", Column::Float64(vec![z]))
                .build()
                .unwrap()
                .fingerprint()
        };
        assert_ne!(zeros(0.0), zeros(-0.0));
    }

    #[test]
    fn construction_and_access() {
        let t = demo();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.num_columns(), 4);
        assert_eq!(t.column_names(), &["age", "salary", "sex", "employed"]);
        assert_eq!(t.column_type("sex").unwrap(), ColumnType::Categorical);
        assert_eq!(t.value("age", 1).unwrap(), Value::Int(40));
        assert_eq!(t.value("sex", 2).unwrap(), Value::Str("F".into()));
        assert!(t.value("age", 99).is_err());
        assert!(t.column("nope").is_err());
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(Table::new(vec![]), Err(DataError::Empty { .. })));
        let dup = Table::new(vec![
            ("a".into(), Column::Int64(vec![1])),
            ("a".into(), Column::Int64(vec![2])),
        ]);
        assert!(matches!(dup, Err(DataError::DuplicateColumn { .. })));
        let ragged = Table::new(vec![
            ("a".into(), Column::Int64(vec![1, 2])),
            ("b".into(), Column::Int64(vec![1])),
        ]);
        assert!(matches!(ragged, Err(DataError::LengthMismatch { .. })));
    }

    #[test]
    fn filter_materializes_selected_rows() {
        let t = demo();
        let sel = Bitmap::from_indices(4, &[1, 2]);
        let f = t.filter(&sel).unwrap();
        assert_eq!(f.rows(), 2);
        assert_eq!(f.value("age", 0).unwrap(), Value::Int(40));
        assert_eq!(f.value("sex", 1).unwrap(), Value::Str("F".into()));
        // Wrong-size selection is rejected.
        assert!(t.filter(&Bitmap::zeros(3)).is_err());
    }

    #[test]
    fn project_subsets_columns() {
        let t = demo();
        let p = t.project(&["sex", "age"]).unwrap();
        assert_eq!(p.column_names(), &["sex", "age"]);
        assert_eq!(p.rows(), 4);
        assert!(t.project(&["sex", "ghost"]).is_err());
    }

    #[test]
    fn numeric_values_with_selection() {
        let t = demo();
        let all = t.numeric_values("salary", None).unwrap();
        assert_eq!(all, vec![30.0, 80.0, 55.0, 20.0]);
        let sel = Bitmap::from_indices(4, &[0, 3]);
        let some = t.numeric_values("age", Some(&sel)).unwrap();
        assert_eq!(some, vec![25.0, 60.0]);
        assert!(matches!(
            t.numeric_values("sex", None),
            Err(DataError::TypeMismatch { .. })
        ));
        assert!(t.numeric_values("age", Some(&Bitmap::zeros(2))).is_err());
    }
}
