//! Histogram / group-by computation over selections.
//!
//! A histogram *is* the visualization of the paper's Figure 1, and the
//! paper's heuristics turn histograms into hypotheses:
//!
//! * rule 2 compares a filtered histogram against the unfiltered one
//!   (χ² goodness-of-fit), and
//! * rule 3 compares two histograms under negated filters
//!   (χ² independence on the 2×k count table).
//!
//! For those tests to be well-formed the bucket universes must align, so
//! buckets are always derived from the *full* column — the categorical
//! dictionary, the bool domain, or fixed-width numeric bins over the full
//! column range — never from the selection. A filtered histogram therefore
//! reports zero counts for categories the selection misses.

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::table::Table;
use crate::{DataError, Result};

/// One histogram bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Human-readable bucket label (category name or bin range).
    pub label: String,
    /// Number of selected rows in this bucket.
    pub count: u64,
}

/// A histogram of one column under a selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// The column the histogram is over.
    pub column: String,
    /// Buckets in a canonical order (dictionary order for categoricals,
    /// `false`/`true` for bools, ascending bins for numerics).
    pub buckets: Vec<Bucket>,
}

impl Histogram {
    /// Counts in bucket order.
    pub fn counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.count).collect()
    }

    /// Total count across buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }

    /// Bucket proportions; an all-zero histogram yields all-zero proportions.
    pub fn proportions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.buckets.len()];
        }
        self.buckets
            .iter()
            .map(|b| b.count as f64 / total as f64)
            .collect()
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }
}

/// Default bin count for numeric histograms, matching the visual default of
/// IDE tools (Vizdom renders ~10 bars).
pub const DEFAULT_NUMERIC_BINS: usize = 10;

/// Bucket counting over an optional selection: the shared word-at-a-time
/// kernel behind every histogram (and, with a flattened bucket space,
/// the crosstab).
///
/// * no selection → one tight full-column loop;
/// * selection covering ≤ ½ the rows → walk set bits per word;
/// * selection covering > ½ the rows → count the *complement* against the
///   full-column counts and subtract — the walked bit count is always
///   min(|sel|, n−|sel|).
pub(crate) fn count_selected(
    rows: usize,
    buckets: usize,
    selection: Option<&Bitmap>,
    bucket_of: impl Fn(usize) -> usize,
) -> Vec<u64> {
    let mut counts = vec![0u64; buckets];
    match selection {
        None => {
            for i in 0..rows {
                counts[bucket_of(i)] += 1;
            }
        }
        Some(sel) if 2 * sel.count_ones() > rows => {
            for i in 0..rows {
                counts[bucket_of(i)] += 1;
            }
            sel.for_each_clear(|i| counts[bucket_of(i)] -= 1);
        }
        Some(sel) => {
            sel.for_each_set(|i| counts[bucket_of(i)] += 1);
        }
    }
    counts
}

/// Computes the histogram of `column` over `selection` (or all rows).
///
/// Categorical and bool columns bucket by value; numeric columns use
/// [`DEFAULT_NUMERIC_BINS`] fixed-width bins over the full column range.
pub fn histogram(table: &Table, column: &str, selection: Option<&Bitmap>) -> Result<Histogram> {
    match table.column(column)? {
        Column::Int64(_) | Column::Float64(_) => {
            numeric_histogram(table, column, selection, DEFAULT_NUMERIC_BINS)
        }
        _ => categorical_histogram(table, column, selection),
    }
}

/// Histogram for categorical / bool columns: one bucket per domain value.
pub fn categorical_histogram(
    table: &Table,
    column: &str,
    selection: Option<&Bitmap>,
) -> Result<Histogram> {
    if let Some(sel) = selection {
        table.check_selection(sel)?;
    }
    let col = table.column(column)?;
    match col {
        Column::Categorical { labels, codes } => {
            let counts =
                count_selected(codes.len(), labels.len(), selection, |i| codes[i] as usize);
            Ok(Histogram {
                column: column.to_owned(),
                buckets: labels
                    .iter()
                    .zip(counts)
                    .map(|(l, count)| Bucket {
                        label: l.clone(),
                        count,
                    })
                    .collect(),
            })
        }
        Column::Bool(values) => {
            let counts = count_selected(values.len(), 2, selection, |i| values[i] as usize);
            Ok(Histogram {
                column: column.to_owned(),
                buckets: vec![
                    Bucket {
                        label: "false".into(),
                        count: counts[0],
                    },
                    Bucket {
                        label: "true".into(),
                        count: counts[1],
                    },
                ],
            })
        }
        other => Err(DataError::TypeMismatch {
            column: column.to_owned(),
            expected: "categorical or bool",
            actual: other.column_type().name(),
        }),
    }
}

/// Histogram for numeric columns with `bins` fixed-width bins spanning the
/// full column's `[min, max]` (so histograms of different selections align).
pub fn numeric_histogram(
    table: &Table,
    column: &str,
    selection: Option<&Bitmap>,
    bins: usize,
) -> Result<Histogram> {
    if bins == 0 {
        return Err(DataError::InvalidArgument {
            context: "numeric_histogram",
            constraint: "bins >= 1",
        });
    }
    if let Some(sel) = selection {
        table.check_selection(sel)?;
    }
    let bounds = numeric_bounds(table, column)?;
    numeric_histogram_with_bounds(table, column, selection, bins, bounds)
}

/// Full-column `(min, max)` of a numeric column — the per-dataset
/// invariant bin edges derive from. Memoized by the evaluation cache so
/// repeated histograms of one attribute never rescan for it.
pub fn numeric_bounds(table: &Table, column: &str) -> Result<(f64, f64)> {
    let col = table.column(column)?;
    if table.rows() == 0 {
        return Err(DataError::Empty {
            context: "numeric_histogram",
        });
    }
    // Sequential fold, same order as the counting scan, so cached and
    // cold paths agree bit-for-bit on the edges.
    let fold = |it: &mut dyn Iterator<Item = f64>| {
        it.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(v), hi.max(v))
        })
    };
    match col {
        Column::Int64(v) => Ok(fold(&mut v.iter().map(|&x| x as f64))),
        Column::Float64(v) => Ok(fold(&mut v.iter().copied())),
        other => Err(DataError::TypeMismatch {
            column: column.to_owned(),
            expected: "numeric (int64/float64)",
            actual: other.column_type().name(),
        }),
    }
}

/// [`numeric_histogram`] with pre-computed full-column bounds (from
/// [`numeric_bounds`], possibly memoized): bin edges derive from the
/// bounds, counting runs word-at-a-time over the selection.
pub fn numeric_histogram_with_bounds(
    table: &Table,
    column: &str,
    selection: Option<&Bitmap>,
    bins: usize,
    (min, max): (f64, f64),
) -> Result<Histogram> {
    if bins == 0 {
        return Err(DataError::InvalidArgument {
            context: "numeric_histogram",
            constraint: "bins >= 1",
        });
    }
    if let Some(sel) = selection {
        table.check_selection(sel)?;
    }
    let col = table.column(column)?;
    let n = table.rows();
    if n == 0 {
        return Err(DataError::Empty {
            context: "numeric_histogram",
        });
    }
    let width = if max > min {
        (max - min) / bins as f64
    } else {
        1.0
    };
    let bin_of = |v: f64| -> usize { (((v - min) / width) as usize).min(bins - 1) };
    let counts = match col {
        Column::Int64(v) => count_selected(n, bins, selection, |i| bin_of(v[i] as f64)),
        Column::Float64(v) => count_selected(n, bins, selection, |i| bin_of(v[i])),
        other => {
            return Err(DataError::TypeMismatch {
                column: column.to_owned(),
                expected: "numeric (int64/float64)",
                actual: other.column_type().name(),
            })
        }
    };
    Ok(Histogram {
        column: column.to_owned(),
        buckets: counts
            .into_iter()
            .enumerate()
            .map(|(b, count)| {
                let lo = min + b as f64 * width;
                let hi = lo + width;
                Bucket {
                    label: format!("[{lo:.3},{hi:.3})"),
                    count,
                }
            })
            .collect(),
    })
}

/// Stacks two aligned histograms into the 2×k contingency table consumed by
/// the χ² independence test (heuristic rule 3).
///
/// Errors if the histograms are over different columns or bucket universes.
pub fn contingency_rows(a: &Histogram, b: &Histogram) -> Result<Vec<Vec<u64>>> {
    if a.column != b.column || a.num_buckets() != b.num_buckets() {
        return Err(DataError::InvalidArgument {
            context: "contingency_rows",
            constraint: "histograms must share column and bucket universe",
        });
    }
    for (x, y) in a.buckets.iter().zip(&b.buckets) {
        if x.label != y.label {
            return Err(DataError::InvalidArgument {
                context: "contingency_rows",
                constraint: "bucket labels must align",
            });
        }
    }
    Ok(vec![a.counts(), b.counts()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::predicate::Predicate;
    use crate::table::TableBuilder;

    fn demo() -> Table {
        TableBuilder::new()
            .push(
                "sex",
                Column::categorical_from_strs(&["M", "F", "F", "M", "F", "M", "M", "F"]),
            )
            .push(
                "over_50k",
                Column::Bool(vec![true, false, false, true, true, false, true, false]),
            )
            .push("age", Column::Int64(vec![20, 30, 40, 50, 60, 70, 25, 35]))
            .build()
            .unwrap()
    }

    #[test]
    fn categorical_counts_full_table() {
        let t = demo();
        let h = histogram(&t, "sex", None).unwrap();
        assert_eq!(h.counts(), vec![4, 4]);
        assert_eq!(h.total(), 8);
        assert_eq!(h.proportions(), vec![0.5, 0.5]);
        assert_eq!(h.buckets[0].label, "M");
    }

    #[test]
    fn bool_histogram_false_then_true() {
        let t = demo();
        let h = histogram(&t, "over_50k", None).unwrap();
        assert_eq!(h.buckets[0].label, "false");
        assert_eq!(h.buckets[1].label, "true");
        assert_eq!(h.counts(), vec![4, 4]);
    }

    #[test]
    fn filtered_histogram_keeps_empty_buckets() {
        let t = demo();
        let sel = Predicate::eq("over_50k", true).eval(&t).unwrap();
        let h = histogram(&t, "sex", Some(&sel)).unwrap();
        // High earners: rows 0,3,4,6 → M,M,F,M.
        assert_eq!(h.counts(), vec![3, 1]);
        assert_eq!(h.total(), 4);
        // Selection that misses a category still reports it with count 0.
        let only_f = Predicate::eq("sex", "F").eval(&t).unwrap();
        let h = histogram(&t, "sex", Some(&only_f)).unwrap();
        assert_eq!(h.counts(), vec![0, 4]);
        assert_eq!(h.num_buckets(), 2);
    }

    #[test]
    fn numeric_bins_are_aligned_across_selections() {
        let t = demo();
        let all = numeric_histogram(&t, "age", None, 5).unwrap();
        assert_eq!(all.total(), 8);
        // age range [20,70], width 10: bins [20,30) [30,40) [40,50) [50,60) [60,70].
        assert_eq!(all.counts(), vec![2, 2, 1, 1, 2]);
        let sel = Predicate::eq("sex", "M").eval(&t).unwrap();
        let men = numeric_histogram(&t, "age", Some(&sel), 5).unwrap();
        // Bins identical; only counts differ: men ages 20,50,70,25.
        assert_eq!(men.counts(), vec![2, 0, 0, 1, 1]);
        for (a, b) in all.buckets.iter().zip(&men.buckets) {
            assert_eq!(a.label, b.label);
        }
        // Max value lands in the last bin, not out of range.
        assert_eq!(all.counts().iter().sum::<u64>(), 8);
    }

    #[test]
    fn numeric_histogram_constant_column() {
        let t = TableBuilder::new()
            .push("x", Column::Float64(vec![3.0; 7]))
            .build()
            .unwrap();
        let h = numeric_histogram(&t, "x", None, 4).unwrap();
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts()[0], 7);
    }

    #[test]
    fn default_dispatch_by_type() {
        let t = demo();
        assert_eq!(
            histogram(&t, "age", None).unwrap().num_buckets(),
            DEFAULT_NUMERIC_BINS
        );
        assert_eq!(histogram(&t, "sex", None).unwrap().num_buckets(), 2);
    }

    #[test]
    fn error_paths() {
        let t = demo();
        assert!(histogram(&t, "ghost", None).is_err());
        assert!(categorical_histogram(&t, "age", None).is_err());
        assert!(numeric_histogram(&t, "sex", None, 4).is_err());
        assert!(numeric_histogram(&t, "age", None, 0).is_err());
        let wrong = Bitmap::zeros(3);
        assert!(histogram(&t, "sex", Some(&wrong)).is_err());
        assert!(numeric_histogram(&t, "age", Some(&wrong), 4).is_err());
    }

    #[test]
    fn contingency_rows_aligned() {
        let t = demo();
        let hi = Predicate::eq("over_50k", true).eval(&t).unwrap();
        let lo = hi.not();
        let a = histogram(&t, "sex", Some(&hi)).unwrap();
        let b = histogram(&t, "sex", Some(&lo)).unwrap();
        let table = contingency_rows(&a, &b).unwrap();
        assert_eq!(table, vec![vec![3, 1], vec![1, 3]]);
        // Mismatched columns rejected.
        let c = histogram(&t, "over_50k", None).unwrap();
        assert!(contingency_rows(&a, &c).is_err());
    }

    #[test]
    fn histogram_mass_conservation() {
        let t = demo();
        let sel = Predicate::between("age", 25.0, 60.0).eval(&t).unwrap();
        let h = histogram(&t, "sex", Some(&sel)).unwrap();
        assert_eq!(h.total(), sel.count_ones() as u64);
        let h = numeric_histogram(&t, "age", Some(&sel), 3).unwrap();
        assert_eq!(h.total(), sel.count_ones() as u64);
    }
}
