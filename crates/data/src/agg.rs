//! Group-by aggregation: per-category moments of a numeric attribute.
//!
//! This powers the "does the mean of X differ across the categories of G"
//! default hypothesis (one-way ANOVA in `aware-stats`) and the grouped
//! summary panels an IDE shows next to a histogram. Single pass, Welford
//! accumulators per group, selection-aware.

use crate::bitmap::Bitmap;
use crate::column::{CodeView, Column};
use crate::table::Table;
use crate::{DataError, Result};
use aware_stats::summary::Moments;

/// Per-group aggregate of one numeric attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedMoments {
    /// The grouping attribute.
    pub group_column: String,
    /// The aggregated numeric attribute.
    pub value_column: String,
    /// Group labels in canonical (dictionary / domain) order.
    pub labels: Vec<String>,
    /// One accumulator per label (empty groups have `count() == 0`).
    pub moments: Vec<Moments>,
}

impl GroupedMoments {
    /// Number of groups (including empty ones).
    pub fn num_groups(&self) -> usize {
        self.labels.len()
    }

    /// Total observations across groups.
    pub fn total(&self) -> u64 {
        self.moments.iter().map(|m| m.count()).sum()
    }

    /// Materializes per-group raw values for tests that need them —
    /// returns `(label, values)` for non-empty groups only.
    pub fn group_means(&self) -> Vec<(String, f64)> {
        self.labels
            .iter()
            .zip(&self.moments)
            .filter(|(_, m)| m.count() > 0)
            .map(|(l, m)| (l.clone(), m.mean()))
            .collect()
    }
}

/// Validates the value/group columns and returns the label universe with
/// borrowed codes. Error order matches the historical scalar path:
/// selection size, then value-column type, then group-column type.
fn encode_grouping<'a>(
    table: &'a Table,
    group_column: &str,
    value_column: &str,
    selection: Option<&Bitmap>,
) -> Result<(Vec<String>, CodeView<'a>)> {
    if let Some(sel) = selection {
        table.check_selection(sel)?;
    }
    let values = table.column(value_column)?;
    if values.numeric_at(0).is_none() && !values.is_empty() {
        return Err(DataError::TypeMismatch {
            column: value_column.to_owned(),
            expected: "numeric (int64/float64)",
            actual: values.column_type().name(),
        });
    }
    let group = table.column(group_column)?;
    group.code_view().ok_or_else(|| DataError::TypeMismatch {
        column: group_column.to_owned(),
        expected: "categorical or bool",
        actual: group.column_type().name(),
    })
}

/// Single-pass accumulation of `value_column` by group under the
/// optional selection (word-at-a-time over set bits).
fn accumulate(
    table: &Table,
    value_column: &str,
    codes: &CodeView<'_>,
    selection: Option<&Bitmap>,
    mut sink: impl FnMut(usize, f64),
) -> Result<()> {
    fn walk(selection: Option<&Bitmap>, rows: usize, mut visit: impl FnMut(usize)) {
        match selection {
            Some(sel) => sel.for_each_set(&mut visit),
            None => (0..rows).for_each(&mut visit),
        }
    }
    match table.column(value_column)? {
        Column::Int64(v) => walk(selection, table.rows(), |i| sink(codes.at(i), v[i] as f64)),
        Column::Float64(v) => walk(selection, table.rows(), |i| sink(codes.at(i), v[i])),
        // encode_grouping admits a non-numeric value column only when it
        // is empty, in which case there is nothing to visit.
        _ => {}
    }
    Ok(())
}

/// Computes per-group moments of `value_column` grouped by the categorical
/// or boolean `group_column`, restricted to `selection` when given.
pub fn grouped_moments(
    table: &Table,
    group_column: &str,
    value_column: &str,
    selection: Option<&Bitmap>,
) -> Result<GroupedMoments> {
    let (labels, codes) = encode_grouping(table, group_column, value_column, selection)?;
    let mut moments = vec![Moments::new(); labels.len()];
    accumulate(table, value_column, &codes, selection, |g, v| {
        moments[g].push(v)
    })?;
    Ok(GroupedMoments {
        group_column: group_column.to_owned(),
        value_column: value_column.to_owned(),
        labels,
        moments,
    })
}

/// Extracts the per-group raw value vectors (for exact tests like ANOVA
/// that need more than moments). Empty groups are returned empty. One
/// validation + one accumulation pass (this used to run a full Welford
/// pass just to validate).
pub fn grouped_values(
    table: &Table,
    group_column: &str,
    value_column: &str,
    selection: Option<&Bitmap>,
) -> Result<Vec<Vec<f64>>> {
    let (labels, codes) = encode_grouping(table, group_column, value_column, selection)?;
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    accumulate(table, value_column, &codes, selection, |g, v| {
        out[g].push(v)
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::table::TableBuilder;

    fn demo() -> Table {
        TableBuilder::new()
            .push(
                "edu",
                Column::categorical_from_strs(&["HS", "PhD", "HS", "PhD", "BA", "HS"]),
            )
            .push(
                "wage",
                Column::Float64(vec![10.0, 30.0, 12.0, 34.0, 20.0, 11.0]),
            )
            .push(
                "flag",
                Column::Bool(vec![true, false, true, false, true, false]),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn grouped_moments_by_category() {
        let t = demo();
        let g = grouped_moments(&t, "edu", "wage", None).unwrap();
        assert_eq!(g.labels, vec!["HS", "PhD", "BA"]);
        assert_eq!(g.total(), 6);
        let means = g.group_means();
        assert_eq!(means[0], ("HS".to_string(), 11.0));
        assert_eq!(means[1], ("PhD".to_string(), 32.0));
        assert_eq!(means[2], ("BA".to_string(), 20.0));
    }

    #[test]
    fn grouped_moments_by_bool_and_selection() {
        let t = demo();
        let sel = Predicate::eq("edu", "HS").eval(&t).unwrap();
        let g = grouped_moments(&t, "flag", "wage", Some(&sel)).unwrap();
        assert_eq!(g.labels, vec!["false", "true"]);
        // HS rows: wages [10, 12, 11] with flags [true, true, false].
        assert_eq!(g.moments[0].count(), 1);
        assert_eq!(g.moments[1].count(), 2);
        assert!((g.moments[1].mean() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn grouped_values_align_with_moments() {
        let t = demo();
        let vals = grouped_values(&t, "edu", "wage", None).unwrap();
        assert_eq!(vals.len(), 3);
        assert_eq!(vals[0], vec![10.0, 12.0, 11.0]);
        assert_eq!(vals[1], vec![30.0, 34.0]);
        let g = grouped_moments(&t, "edu", "wage", None).unwrap();
        for (v, m) in vals.iter().zip(&g.moments) {
            assert_eq!(v.len() as u64, m.count());
        }
    }

    #[test]
    fn type_and_selection_errors() {
        let t = demo();
        assert!(matches!(
            grouped_moments(&t, "wage", "wage", None),
            Err(DataError::TypeMismatch { .. })
        ));
        assert!(matches!(
            grouped_moments(&t, "edu", "edu", None),
            Err(DataError::TypeMismatch { .. })
        ));
        assert!(grouped_moments(&t, "ghost", "wage", None).is_err());
        assert!(grouped_moments(&t, "edu", "wage", Some(&Bitmap::zeros(3))).is_err());
    }

    #[test]
    fn empty_selection_yields_empty_groups() {
        let t = demo();
        let none = Predicate::eq("edu", "Kindergarten").eval(&t).unwrap();
        let g = grouped_moments(&t, "edu", "wage", Some(&none)).unwrap();
        assert_eq!(g.total(), 0);
        assert!(g.group_means().is_empty());
    }
}
