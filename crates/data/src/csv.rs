//! Minimal CSV reader/writer with schema inference.
//!
//! Supports the subset of RFC 4180 the workspace needs: comma separation,
//! double-quote quoting with `""` escapes, a mandatory header row. Schema
//! inference tries `int64 → float64 → bool → categorical` per column over
//! the whole file, so a column containing `1, 2, x` lands on categorical
//! rather than erroring halfway through.

use crate::column::Column;
use crate::table::Table;
use crate::{DataError, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Reads a CSV file from disk.
pub fn read_csv_path(path: impl AsRef<Path>) -> Result<Table> {
    let file = std::fs::File::open(path)?;
    read_csv(BufReader::new(file))
}

/// Reads CSV from any reader. The first row is the header.
pub fn read_csv<R: Read>(reader: R) -> Result<Table> {
    let mut lines = BufReader::new(reader).lines();
    let header_line = match lines.next() {
        Some(l) => l?,
        None => {
            return Err(DataError::Csv {
                line: 0,
                reason: "empty input".into(),
            })
        }
    };
    let headers = parse_record(&header_line, 0)?;
    if headers.is_empty() {
        return Err(DataError::Csv {
            line: 0,
            reason: "empty header".into(),
        });
    }
    let ncols = headers.len();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); ncols];
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let record = parse_record(&line, lineno + 1)?;
        if record.len() != ncols {
            return Err(DataError::Csv {
                line: lineno + 1,
                reason: format!("expected {ncols} fields, found {}", record.len()),
            });
        }
        for (col, field) in cells.iter_mut().zip(record) {
            col.push(field);
        }
    }
    if cells[0].is_empty() {
        return Err(DataError::Csv {
            line: 1,
            reason: "no data rows".into(),
        });
    }
    let columns = headers
        .into_iter()
        .zip(cells)
        .map(|(name, raw)| (name, infer_column(&raw)))
        .collect();
    Table::new(columns)
}

/// Writes a table as CSV to disk.
pub fn write_csv_path(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv(table, std::io::BufWriter::new(file))
}

/// Writes a table as CSV to any writer.
pub fn write_csv<W: Write>(table: &Table, mut writer: W) -> Result<()> {
    let header = table
        .column_names()
        .iter()
        .map(|n| quote_field(n))
        .collect::<Vec<_>>()
        .join(",");
    writeln!(writer, "{header}")?;
    for row in 0..table.rows() {
        let mut fields = Vec::with_capacity(table.num_columns());
        for name in table.column_names() {
            let v = table.value(name, row).expect("in-range access");
            fields.push(quote_field(&v.to_string()));
        }
        writeln!(writer, "{}", fields.join(","))?;
    }
    writer.flush()?;
    Ok(())
}

/// Quotes a field if it contains separators, quotes, or newlines.
fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Parses one CSV record, honoring double-quote quoting.
fn parse_record(line: &str, lineno: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut field)),
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv {
            line: lineno,
            reason: "unterminated quote".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// Infers the narrowest type that fits every raw cell.
fn infer_column(raw: &[String]) -> Column {
    if raw.iter().all(|s| s.parse::<i64>().is_ok()) {
        return Column::Int64(raw.iter().map(|s| s.parse().expect("checked")).collect());
    }
    if raw.iter().all(|s| s.parse::<f64>().is_ok()) {
        return Column::Float64(raw.iter().map(|s| s.parse().expect("checked")).collect());
    }
    if raw.iter().all(|s| s == "true" || s == "false") {
        return Column::Bool(raw.iter().map(|s| s == "true").collect());
    }
    Column::categorical_from_strs(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnType;
    use crate::table::TableBuilder;
    use crate::value::Value;

    #[test]
    fn roundtrip_all_types() {
        let t = TableBuilder::new()
            .push("age", Column::Int64(vec![25, 40]))
            .push("salary", Column::Float64(vec![30.5, 81.25]))
            .push("sex", Column::categorical_from_strs(&["M", "F"]))
            .push("over", Column::Bool(vec![true, false]))
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.rows(), 2);
        assert_eq!(back.column_type("age").unwrap(), ColumnType::Int64);
        assert_eq!(back.column_type("salary").unwrap(), ColumnType::Float64);
        assert_eq!(back.column_type("sex").unwrap(), ColumnType::Categorical);
        assert_eq!(back.column_type("over").unwrap(), ColumnType::Bool);
        assert_eq!(back.value("salary", 1).unwrap(), Value::Float(81.25));
        assert_eq!(back.value("sex", 0).unwrap(), Value::Str("M".into()));
    }

    #[test]
    fn quoting_commas_and_quotes() {
        let t = TableBuilder::new()
            .push(
                "job",
                Column::categorical_from_strs(&["Craft, repair", "Say \"hi\""]),
            )
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("\"Craft, repair\""));
        assert!(text.contains("\"Say \"\"hi\"\"\""));
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(
            back.value("job", 0).unwrap(),
            Value::Str("Craft, repair".into())
        );
        assert_eq!(
            back.value("job", 1).unwrap(),
            Value::Str("Say \"hi\"".into())
        );
    }

    #[test]
    fn schema_inference_fallbacks() {
        let csv = "a,b,c\n1,1.5,true\n2,x,false\n";
        let t = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(t.column_type("a").unwrap(), ColumnType::Int64);
        // Column b mixes float and text → categorical.
        assert_eq!(t.column_type("b").unwrap(), ColumnType::Categorical);
        assert_eq!(t.column_type("c").unwrap(), ColumnType::Bool);
        // Ints promote to float when any cell is fractional.
        let t = read_csv("x\n1\n2.5\n".as_bytes()).unwrap();
        assert_eq!(t.column_type("x").unwrap(), ColumnType::Float64);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(matches!(
            read_csv("".as_bytes()),
            Err(DataError::Csv { .. })
        ));
        assert!(matches!(
            read_csv("a,b\n1\n".as_bytes()),
            Err(DataError::Csv { .. })
        ));
        assert!(matches!(
            read_csv("a\n\"unterminated\n".as_bytes()),
            Err(DataError::Csv { .. })
        ));
        assert!(matches!(
            read_csv("a,b\n".as_bytes()),
            Err(DataError::Csv { .. })
        ));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = read_csv("a\n1\n\n2\n\n".as_bytes()).unwrap();
        assert_eq!(t.rows(), 2);
    }

    #[test]
    fn path_roundtrip() {
        let t = TableBuilder::new()
            .push("v", Column::Int64(vec![1, 2, 3]))
            .build()
            .unwrap();
        let path = std::env::temp_dir().join("aware_csv_test.csv");
        write_csv_path(&t, &path).unwrap();
        let back = read_csv_path(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(&path).ok();
    }
}
