//! # aware-serve
//!
//! The serving layer of the AWARE reproduction: many concurrent
//! interactive exploration sessions — each with its own α-investing
//! mFDR budget — behind one multi-threaded service.
//!
//! The paper's guarantee (*Zhao et al., SIGMOD 2017*) is **per
//! session** and **sequential**: within a session, hypothesis j's bid
//! depends on the wealth left by hypotheses 1..j−1, and a decision
//! once shown is never revised. Hardt & Ullman's hardness result for
//! interactive reuse makes the isolation boundary load-bearing:
//! sessions must not share statistical state. The service therefore
//! serializes commands *within* a session (worker pinning, FIFO
//! queues) while running distinct sessions in parallel, and shares
//! only the immutable dataset (`Arc<Table>` — 1 000 sessions over one
//! census cost one table).
//!
//! Layout:
//!
//! * [`proto`] — the typed [`proto::Command`]/[`proto::Response`] API,
//!   the protocol-v2 [`proto::Envelope`]/[`proto::Batch`] layer
//!   (batched commands, hello negotiation), and the line-delimited
//!   JSON codec (hand-rolled; the crate is std-only by design).
//! * [`frame`] — the v2 binary framing: `AWR2` magic, version byte,
//!   u32 length prefix.
//! * [`wire`] — the compact tag-based binary codec the frames carry.
//! * [`service`] — the worker-pool dispatcher
//!   ([`service::ServiceHandle::call_batch`]: same-session commands as
//!   one pinned unit, cross-session fan-out), per-session pending-
//!   command caps, session admission with sampled-LRU eviction, and
//!   idle-timeout sweeps.
//! * [`registry`] — the sharded session registry
//!   (`RwLock<HashMap<…>>` shards of `Mutex<Session>` entries).
//! * [`tcp`] — the thread-per-connection TCP front end (both
//!   surfaces, auto-detected by first byte) and a reference client
//!   with pipelined batches.
//! * [`reactor_front`] — the same protocol behind the `aware-reactor`
//!   epoll event loop (`--reactor` on the binary): thousands of
//!   mostly-idle connections on a handful of threads, plus server-push
//!   frames (eviction notices, cache resets) to subscribed clients.
//! * [`snapshot`] — the durable `AWRS` session-snapshot codec
//!   (versioned, length-prefixed, checksummed; reuses the wire's tag
//!   codec) and [`store`] — the write-ahead snapshot directory
//!   (atomic tmp+rename+fsync, two generations per session) that lets
//!   sessions survive restarts and LRU eviction spill to disk instead
//!   of dropping α-wealth.
//! * [`metrics`] — lock-free server counters behind the `stats`
//!   command, including per-encoding and batch-size telemetry.
//! * [`json`] — the minimal JSON value/parser/writer the NDJSON
//!   surface rides on.
//!
//! ## Example
//!
//! ```
//! use aware_data::census::CensusGenerator;
//! use aware_serve::proto::{Command, FilterSpec, PolicySpec, Response};
//! use aware_serve::service::{Service, ServiceConfig};
//!
//! let service = Service::start(ServiceConfig { workers: 2, ..Default::default() });
//! let handle = service.handle();
//! handle.register_table("census", CensusGenerator::new(1).generate(2_000));
//!
//! let session = match handle.call(Command::CreateSession {
//!     dataset: "census".into(),
//!     alpha: 0.05,
//!     policy: PolicySpec::Fixed { gamma: 10.0 },
//! }) {
//!     Response::SessionCreated { session, .. } => session,
//!     other => panic!("{other:?}"),
//! };
//! let reply = handle.call(Command::AddVisualization {
//!     session,
//!     attribute: "education".into(),
//!     filter: FilterSpec::True,
//! });
//! assert!(reply.is_ok());
//! ```

pub mod error;
pub mod frame;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod reactor_front;
pub mod registry;
pub mod service;
pub mod snapshot;
pub mod store;
pub mod tcp;
pub mod wire;

pub use error::{ErrorCode, ServeError};
pub use proto::{
    Batch, BatchItem, BatchMode, Command, Encoding, Envelope, PolicySpec, Reply, Response,
    SessionId,
};
pub use reactor_front::ServerFront;
pub use service::{Dispatch, Service, ServiceConfig, ServiceHandle};
