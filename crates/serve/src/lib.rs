//! # aware-serve
//!
//! The serving layer of the AWARE reproduction: many concurrent
//! interactive exploration sessions — each with its own α-investing
//! mFDR budget — behind one multi-threaded service.
//!
//! The paper's guarantee (*Zhao et al., SIGMOD 2017*) is **per
//! session** and **sequential**: within a session, hypothesis j's bid
//! depends on the wealth left by hypotheses 1..j−1, and a decision
//! once shown is never revised. Hardt & Ullman's hardness result for
//! interactive reuse makes the isolation boundary load-bearing:
//! sessions must not share statistical state. The service therefore
//! serializes commands *within* a session (worker pinning, FIFO
//! queues) while running distinct sessions in parallel, and shares
//! only the immutable dataset (`Arc<Table>` — 1 000 sessions over one
//! census cost one table).
//!
//! Layout:
//!
//! * [`proto`] — the typed [`proto::Command`]/[`proto::Response`] API
//!   and its line-delimited JSON wire codec (hand-rolled; the crate is
//!   std-only by design).
//! * [`service`] — the worker-pool dispatcher, session admission with
//!   LRU eviction, idle-timeout sweeps, and the in-process
//!   [`service::ServiceHandle`] used by tests and benches.
//! * [`registry`] — the sharded session registry
//!   (`RwLock<HashMap<…>>` shards of `Mutex<Session>` entries).
//! * [`tcp`] — the NDJSON-over-TCP front end and a reference client.
//! * [`metrics`] — lock-free server counters behind the `stats`
//!   command.
//! * [`json`] — the minimal JSON value/parser/writer the protocol
//!   rides on.
//!
//! ## Example
//!
//! ```
//! use aware_data::census::CensusGenerator;
//! use aware_serve::proto::{Command, FilterSpec, PolicySpec, Response};
//! use aware_serve::service::{Service, ServiceConfig};
//!
//! let service = Service::start(ServiceConfig { workers: 2, ..Default::default() });
//! let handle = service.handle();
//! handle.register_table("census", CensusGenerator::new(1).generate(2_000));
//!
//! let session = match handle.call(Command::CreateSession {
//!     dataset: "census".into(),
//!     alpha: 0.05,
//!     policy: PolicySpec::Fixed { gamma: 10.0 },
//! }) {
//!     Response::SessionCreated { session, .. } => session,
//!     other => panic!("{other:?}"),
//! };
//! let reply = handle.call(Command::AddVisualization {
//!     session,
//!     attribute: "education".into(),
//!     filter: FilterSpec::True,
//! });
//! assert!(reply.is_ok());
//! ```

pub mod error;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod registry;
pub mod service;
pub mod tcp;

pub use error::{ErrorCode, ServeError};
pub use proto::{Command, PolicySpec, Response, SessionId};
pub use service::{Service, ServiceConfig, ServiceHandle};
