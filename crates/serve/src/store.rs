//! The write-ahead snapshot directory: crash-safe persistence for
//! session images.
//!
//! ## Atomicity & fsync story
//!
//! A snapshot is never written in place. Each save goes to
//! `sess-<id>.g<gen>.awrs.tmp`, is `fsync`ed, atomically renamed to
//! `sess-<id>.g<gen>.awrs`, and the *directory* is `fsync`ed so the
//! rename itself survives a power cut. A reader therefore never
//! observes a half-renamed file; what it can observe — on filesystems
//! that reorder data and metadata, or after outright disk corruption —
//! is a final file with mangled bytes, which is why every file carries
//! a length prefix and checksum and why the store keeps **two
//! generations** per session: if `g<N>` fails to decode, `g<N-1>` is
//! tried before the session is declared unrecoverable. Wealth is never
//! silently reset — a session whose every generation is corrupt answers
//! `corrupt_snapshot`, not a fresh budget.
//!
//! ## Naming
//!
//! `sess-<id>.g<gen>.awrs`, with `id` and `gen` in decimal. Scanning
//! the directory on startup rebuilds the index (latest generation per
//! session) without reading any payload — restore is lazy, paid by the
//! first command that touches a spilled session.
//!
//! ## Replica images
//!
//! A shard holding a *warm replica* of a session homed elsewhere keeps
//! the shipped image as `repl-<id>.e<epoch>.awrs` — same tmp + fsync +
//! rename discipline, but a separate namespace: a replica is never a
//! generation of the primary, and the primary scan ignores it. The
//! replication epoch lives in the file name so a restarted shard (and
//! a restarted router scanning via `list_sessions`) knows exactly how
//! fresh each held image is without decoding it. Promotion re-reads
//! the file as the authoritative bytes and re-validates from scratch —
//! a tampered replica fails there and is refused, never adopted.
//!
//! ## Fault injection
//!
//! The chaos harness needs the *disk* half of its fault matrix here:
//! [`SnapshotStore::set_fault_hook`] installs a callback consulted
//! once per durable write (primary and replica paths alike) that can
//! inject a short write, ENOSPC, or an fsync failure. The invariant
//! under every injected fault is the one the tmp + rename discipline
//! already provides against real crashes: a failed save never
//! advances the index, never touches the previous generation, and the
//! next `load` still answers with the last durable image — wealth is
//! never reset by a disk that misbehaves mid-save.

use crate::error::{ErrorCode, ServeError};
use crate::proto::SessionId;
use crate::snapshot::{self, SessionImage};
use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Snapshot generations kept per session; older ones are pruned after a
/// successful save.
pub const GENERATIONS_KEPT: u64 = 2;

/// An injectable write-path fault — the disk half of the chaos
/// harness. Returned by a [`SnapshotStore::set_fault_hook`] callback
/// to make the *next stage* of a durable write fail exactly the way a
/// sick disk would.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// Persist only the first `n` bytes of the tmp file, then fail —
    /// the torn tail a crash mid-`write` leaves behind.
    ShortWrite(usize),
    /// Refuse the data write outright: no space left on device.
    NoSpace,
    /// Accept every byte but fail the `fsync` — data may or may not be
    /// on the platter, so the save must not be considered durable.
    FsyncFail,
}

/// Callback consulted once per durable write with the final path the
/// write is headed for (`sess-…` or `repl-…`).
type FaultHook = Box<dyn Fn(&Path) -> Option<WriteFault> + Send + Sync>;

/// A directory of durable session snapshots.
pub struct SnapshotStore {
    root: PathBuf,
    /// Latest known generation per session.
    index: Mutex<HashMap<SessionId, u64>>,
    /// Serializes writers (and `remove`): two concurrent saves of the
    /// same session must not race on one generation's tmp/final path,
    /// and a save in flight while `remove` runs must finish before the
    /// files go. Readers never take this lock, so lazy restores are
    /// never stuck behind an fsync.
    save_lock: Mutex<()>,
    /// Sessions removed after a clean close: a late save (the periodic
    /// snapshotter holding a stale entry) must not resurrect them. Ids
    /// are never reallocated, so a tombstone is one u64 forever.
    retired: Mutex<HashSet<SessionId>>,
    /// Replication epoch of each held replica image (`repl-` files).
    replicas: Mutex<HashMap<SessionId, u64>>,
    /// Snapshot files that failed to decode since the store opened.
    corrupt: AtomicU64,
    /// Chaos hook consulted once per durable write; see [`WriteFault`].
    fault_hook: Mutex<Option<FaultHook>>,
    /// Writes the hook actually failed since the store opened.
    faults: AtomicU64,
}

impl SnapshotStore {
    /// Opens (creating if needed) the snapshot directory and scans it.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<SnapshotStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut index: HashMap<SessionId, u64> = HashMap::new();
        let mut replicas: HashMap<SessionId, u64> = HashMap::new();
        for entry in fs::read_dir(&root)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some((id, gen)) = parse_file_name(&name) {
                let latest = index.entry(id).or_insert(gen);
                *latest = (*latest).max(gen);
            } else if let Some((id, epoch)) = parse_replica_name(&name) {
                let latest = replicas.entry(id).or_insert(epoch);
                *latest = (*latest).max(epoch);
            }
            // tmp leftovers and foreign files are ignored
        }
        Ok(SnapshotStore {
            root,
            index: Mutex::new(index),
            save_lock: Mutex::new(()),
            retired: Mutex::new(HashSet::new()),
            replicas: Mutex::new(replicas),
            corrupt: AtomicU64::new(0),
            fault_hook: Mutex::new(None),
            faults: AtomicU64::new(0),
        })
    }

    /// Installs the chaos hook: consulted once per durable write with
    /// the final path, and whatever [`WriteFault`] it returns is
    /// injected into that write. Replaces any previous hook.
    pub fn set_fault_hook(
        &self,
        hook: impl Fn(&Path) -> Option<WriteFault> + Send + Sync + 'static,
    ) {
        *self.fault_hook.lock().unwrap() = Some(Box::new(hook));
    }

    /// Removes the chaos hook — the disk is healthy again.
    pub fn clear_fault_hook(&self) {
        *self.fault_hook.lock().unwrap() = None;
    }

    /// Writes the hook actually failed since the store opened.
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// The tmp + fsync + rename + directory-fsync discipline both save
    /// paths share, with the chaos hook applied. On any failure —
    /// injected or real — the final path is untouched: the tmp file is
    /// left behind exactly as a crash would leave it (the startup scan
    /// ignores it) and the caller's index entry is not advanced.
    fn write_durable(&self, tmp_path: &Path, final_path: &Path, bytes: &[u8]) -> io::Result<()> {
        let fault = self
            .fault_hook
            .lock()
            .unwrap()
            .as_ref()
            .and_then(|hook| hook(final_path));
        if fault.is_some() {
            self.faults.fetch_add(1, Ordering::Relaxed);
        }
        if matches!(fault, Some(WriteFault::NoSpace)) {
            return Err(io::Error::other("no space left on device (injected)"));
        }
        let mut file = fs::File::create(tmp_path)?;
        if let Some(WriteFault::ShortWrite(n)) = fault {
            let n = n.min(bytes.len());
            io::Write::write_all(&mut file, &bytes[..n])?;
            let _ = file.sync_all();
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("short write (injected): {n} of {} bytes", bytes.len()),
            ));
        }
        io::Write::write_all(&mut file, bytes)?;
        if matches!(fault, Some(WriteFault::FsyncFail)) {
            return Err(io::Error::other("fsync failed (injected)"));
        }
        file.sync_all()?;
        fs::rename(tmp_path, final_path)?;
        // Persist the rename: fsync the directory entry.
        fs::File::open(&self.root)?.sync_all()?;
        Ok(())
    }

    /// The directory this store writes into.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of sessions with at least one on-disk snapshot.
    pub fn persisted(&self) -> u64 {
        self.index.lock().unwrap().len() as u64
    }

    /// Snapshot files that failed to decode since the store opened.
    pub fn corrupt_count(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// True when `id` has an on-disk snapshot.
    pub fn contains(&self, id: SessionId) -> bool {
        self.index.lock().unwrap().contains_key(&id)
    }

    /// Ids of every persisted session (startup reporting).
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.index.lock().unwrap().keys().copied().collect()
    }

    /// The largest persisted session id, if any — a restarted server
    /// resumes id allocation above it so restored sessions and new ones
    /// can never collide.
    pub fn max_session_id(&self) -> Option<SessionId> {
        self.index.lock().unwrap().keys().max().copied()
    }

    fn file_path(&self, id: SessionId, gen: u64) -> PathBuf {
        self.root.join(format!("sess-{id}.g{gen}.awrs"))
    }

    /// Durably writes a new generation for `image.id`: tmp + fsync +
    /// rename + directory fsync, then prunes generations older than
    /// [`GENERATIONS_KEPT`]. A save for a session already removed by
    /// [`SnapshotStore::remove`] is a no-op — closed sessions stay
    /// closed.
    pub fn save(&self, image: &SessionImage) -> io::Result<()> {
        let bytes = snapshot::encode(image);
        let _writers = self.save_lock.lock().unwrap();
        if self.retired.lock().unwrap().contains(&image.id) {
            return Ok(());
        }
        let gen = {
            let index = self.index.lock().unwrap();
            index.get(&image.id).map_or(1, |g| g + 1)
        };
        let final_path = self.file_path(image.id, gen);
        let tmp_path = final_path.with_extension("awrs.tmp");
        self.write_durable(&tmp_path, &final_path, &bytes)?;
        self.index.lock().unwrap().insert(image.id, gen);
        if gen > GENERATIONS_KEPT {
            let _ = fs::remove_file(self.file_path(image.id, gen - GENERATIONS_KEPT));
        }
        Ok(())
    }

    /// Loads the newest decodable generation of `id`. Corrupt
    /// generations are skipped (and counted); if every generation is
    /// corrupt the session is unrecoverable and the caller gets
    /// [`ErrorCode::CorruptSnapshot`] — never a silently reset wealth.
    pub fn load(&self, id: SessionId) -> Result<SessionImage, ServeError> {
        let Some(latest) = self.index.lock().unwrap().get(&id).copied() else {
            return Err(ServeError::unknown_session(id));
        };
        let mut last_error: Option<ServeError> = None;
        for gen in (latest.saturating_sub(GENERATIONS_KEPT - 1)..=latest).rev() {
            let path = self.file_path(id, gen);
            let bytes = match fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => {
                    last_error = Some(ServeError {
                        code: ErrorCode::CorruptSnapshot,
                        message: format!("cannot read {}: {e}", path.display()),
                    });
                    continue;
                }
            };
            match snapshot::decode(&bytes) {
                Ok(image) if image.id == id => return Ok(image),
                Ok(image) => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    last_error = Some(ServeError {
                        code: ErrorCode::CorruptSnapshot,
                        message: format!(
                            "{} contains session {} (expected {id})",
                            path.display(),
                            image.id
                        ),
                    });
                }
                Err(e) => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    last_error = Some(ServeError {
                        code: ErrorCode::CorruptSnapshot,
                        message: format!("{}: {}", path.display(), e.message),
                    });
                }
            }
        }
        Err(last_error.unwrap_or_else(|| ServeError {
            code: ErrorCode::CorruptSnapshot,
            message: format!("every snapshot generation of session {id} is missing"),
        }))
    }

    /// Clears `id`'s tombstone so the session can persist here again —
    /// the import path calls this: a session that was exported off this
    /// shard (which tombstones the id against late snapshotter saves)
    /// and later migrates *back* must not find its saves silently
    /// refused forever.
    pub fn revive(&self, id: SessionId) {
        let _writers = self.save_lock.lock().unwrap();
        self.retired.lock().unwrap().remove(&id);
    }

    /// Deletes `id`'s on-disk generations (after a clean close) and
    /// tombstones the id so an in-flight snapshotter save cannot
    /// resurrect the session.
    pub fn remove(&self, id: SessionId) {
        let _writers = self.save_lock.lock().unwrap();
        self.retired.lock().unwrap().insert(id);
        let Some(latest) = self.index.lock().unwrap().remove(&id) else {
            return;
        };
        // Only the last GENERATIONS_KEPT files can exist (saves prune),
        // plus possibly a tmp leftover from a crashed write.
        for gen in latest.saturating_sub(GENERATIONS_KEPT - 1)..=latest {
            let _ = fs::remove_file(self.file_path(id, gen));
        }
        let _ = fs::remove_file(self.file_path(id, latest + 1).with_extension("awrs.tmp"));
    }

    // -- replica images -----------------------------------------------------

    fn replica_path(&self, id: SessionId, epoch: u64) -> PathBuf {
        self.root.join(format!("repl-{id}.e{epoch}.awrs"))
    }

    /// Durably writes the replica image for `id` at `epoch` (tmp +
    /// fsync + rename + directory fsync) and deletes the superseded
    /// epoch's file. The caller has already validated the bytes; the
    /// store just keeps them safe.
    pub fn save_replica(&self, id: SessionId, epoch: u64, bytes: &[u8]) -> io::Result<()> {
        let _writers = self.save_lock.lock().unwrap();
        let previous = self.replicas.lock().unwrap().get(&id).copied();
        let final_path = self.replica_path(id, epoch);
        let tmp_path = final_path.with_extension("awrs.tmp");
        self.write_durable(&tmp_path, &final_path, bytes)?;
        self.replicas.lock().unwrap().insert(id, epoch);
        if let Some(previous) = previous {
            if previous != epoch {
                let _ = fs::remove_file(self.replica_path(id, previous));
            }
        }
        Ok(())
    }

    /// Reads the held replica image of `id` straight from disk — the
    /// authoritative bytes a promotion re-validates. Returns the
    /// replication epoch alongside.
    pub fn load_replica(&self, id: SessionId) -> Option<(u64, Vec<u8>)> {
        let epoch = self.replicas.lock().unwrap().get(&id).copied()?;
        fs::read(self.replica_path(id, epoch))
            .ok()
            .map(|bytes| (epoch, bytes))
    }

    /// Epoch of the held replica image of `id`, if any.
    pub fn replica_epoch(&self, id: SessionId) -> Option<u64> {
        self.replicas.lock().unwrap().get(&id).copied()
    }

    /// Deletes the held replica image of `id` (idempotent).
    pub fn remove_replica(&self, id: SessionId) {
        let _writers = self.save_lock.lock().unwrap();
        if let Some(epoch) = self.replicas.lock().unwrap().remove(&id) {
            let _ = fs::remove_file(self.replica_path(id, epoch));
            let _ = fs::remove_file(self.replica_path(id, epoch).with_extension("awrs.tmp"));
        }
    }

    /// Every held replica as `(session, epoch)` — `list_sessions`
    /// reporting and startup re-seeding.
    pub fn replica_entries(&self) -> Vec<(SessionId, u64)> {
        self.replicas
            .lock()
            .unwrap()
            .iter()
            .map(|(&id, &epoch)| (id, epoch))
            .collect()
    }

    /// Number of held replica images.
    pub fn replica_count(&self) -> u64 {
        self.replicas.lock().unwrap().len() as u64
    }
}

/// Parses `sess-<id>.g<gen>.awrs`.
fn parse_file_name(name: &str) -> Option<(SessionId, u64)> {
    let rest = name.strip_prefix("sess-")?.strip_suffix(".awrs")?;
    let (id, gen) = rest.split_once(".g")?;
    Some((id.parse().ok()?, gen.parse().ok()?))
}

/// Parses `repl-<id>.e<epoch>.awrs`.
fn parse_replica_name(name: &str) -> Option<(SessionId, u64)> {
    let rest = name.strip_prefix("repl-")?.strip_suffix(".awrs")?;
    let (id, epoch) = rest.split_once(".e")?;
    Some((id.parse().ok()?, epoch.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::PolicySpec;
    use aware_data::census::CensusGenerator;
    use aware_data::predicate::Predicate;
    use std::sync::Arc;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aware-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn image(id: SessionId, steps: usize) -> SessionImage {
        let table = Arc::new(CensusGenerator::new(5).generate(800));
        let policy = PolicySpec::Fixed { gamma: 10.0 };
        let mut s =
            aware_core::session::Session::shared(table, 0.05, policy.build().unwrap()).unwrap();
        for i in 0..steps {
            let filter = Predicate::eq("survey_wave", format!("Wave-{}", (i % 4) + 1).as_str());
            let _ = s.add_visualization("race", filter);
        }
        SessionImage {
            id,
            dataset: "census".into(),
            fingerprint: Some(0x1234_5678_9abc_def0),
            policy,
            policy_since: 0,
            session: s.snapshot(),
        }
    }

    #[test]
    fn save_load_remove_lifecycle() {
        let root = temp_root("lifecycle");
        let store = SnapshotStore::open(&root).unwrap();
        assert_eq!(store.persisted(), 0);
        assert!(!store.contains(7));
        let img = image(7, 2);
        store.save(&img).unwrap();
        assert!(store.contains(7));
        assert_eq!(store.persisted(), 1);
        assert_eq!(store.load(7).unwrap(), img);
        assert_eq!(store.load(8).unwrap_err().code, ErrorCode::UnknownSession);
        store.remove(7);
        assert!(!store.contains(7));
        assert!(
            fs::read_dir(&root).unwrap().next().is_none(),
            "no leftovers"
        );
        // A save racing past a close is a no-op: closed sessions stay
        // closed (the snapshotter may hold a stale entry Arc).
        store.save(&img).unwrap();
        assert!(!store.contains(7), "tombstone must refuse resurrection");
        assert!(fs::read_dir(&root).unwrap().next().is_none());
        // …but an id revived by an import persists again: the session
        // deliberately came back, this is not a race.
        store.revive(7);
        store.save(&img).unwrap();
        assert!(store.contains(7), "revived id must persist again");
        assert_eq!(store.load(7).unwrap(), img);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn generations_rotate_and_scan_resumes() {
        let root = temp_root("generations");
        let store = SnapshotStore::open(&root).unwrap();
        for steps in 1..=4 {
            store.save(&image(3, steps)).unwrap();
        }
        // Only the two newest generations remain on disk.
        let mut names: Vec<String> = fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, ["sess-3.g3.awrs", "sess-3.g4.awrs"]);
        // A fresh store (server restart) scans the same state and keeps
        // allocating generations above it.
        let reopened = SnapshotStore::open(&root).unwrap();
        assert_eq!(reopened.persisted(), 1);
        assert_eq!(reopened.max_session_id(), Some(3));
        assert_eq!(
            reopened.load(3).unwrap().session.visualizations.len(),
            4,
            "newest generation wins"
        );
        reopened.save(&image(3, 5)).unwrap();
        assert!(root.join("sess-3.g5.awrs").exists());
        assert!(!root.join("sess-3.g3.awrs").exists(), "pruned");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_newest_generation_falls_back_to_previous() {
        let root = temp_root("torn");
        let store = SnapshotStore::open(&root).unwrap();
        store.save(&image(9, 1)).unwrap();
        store.save(&image(9, 2)).unwrap();
        // Tear the newest file at an arbitrary byte.
        let newest = root.join("sess-9.g2.awrs");
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() * 2 / 3]).unwrap();
        let reopened = SnapshotStore::open(&root).unwrap();
        let restored = reopened.load(9).unwrap();
        assert_eq!(restored.session.visualizations.len(), 1, "previous gen");
        assert_eq!(reopened.corrupt_count(), 1);
        // Tear the fallback too: the session is unrecoverable, loudly.
        let previous = root.join("sess-9.g1.awrs");
        let bytes = fs::read(&previous).unwrap();
        fs::write(&previous, &bytes[..bytes.len() / 2]).unwrap();
        let err = reopened.load(9).unwrap_err();
        assert_eq!(err.code, ErrorCode::CorruptSnapshot);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn replica_images_live_in_their_own_namespace() {
        let root = temp_root("replica");
        let store = SnapshotStore::open(&root).unwrap();
        // A replica is not a primary: saving one changes nothing about
        // the primary index, and vice versa.
        store.save_replica(7, 1, b"replica bytes e1").unwrap();
        assert!(!store.contains(7));
        assert_eq!(store.persisted(), 0);
        assert_eq!(store.replica_count(), 1);
        assert_eq!(store.replica_epoch(7), Some(1));
        assert_eq!(
            store.load_replica(7),
            Some((1, b"replica bytes e1".to_vec()))
        );
        // A newer epoch supersedes (and deletes) the older file.
        store.save_replica(7, 5, b"replica bytes e5").unwrap();
        assert!(!root.join("repl-7.e1.awrs").exists(), "superseded");
        assert!(root.join("repl-7.e5.awrs").exists());
        assert_eq!(
            store.load_replica(7),
            Some((5, b"replica bytes e5".to_vec()))
        );
        // A restart rescans the replica namespace with epochs intact.
        store.save(&image(7, 1)).unwrap();
        let reopened = SnapshotStore::open(&root).unwrap();
        assert_eq!(reopened.replica_entries(), vec![(7, 5)]);
        assert!(reopened.contains(7), "primary scan unaffected");
        // Dropping a replica leaves the primary alone, and is
        // idempotent.
        reopened.remove_replica(7);
        reopened.remove_replica(7);
        assert_eq!(reopened.replica_count(), 0);
        assert_eq!(reopened.load_replica(7), None);
        assert!(reopened.contains(7));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_disk_faults_never_lose_the_previous_generation() {
        let root = temp_root("faults");
        let store = SnapshotStore::open(&root).unwrap();
        let durable = image(4, 1);
        store.save(&durable).unwrap();

        // Every fault flavor in turn: the save errors loudly, the index
        // does not advance, and the last durable image still loads —
        // wealth is never reset by a sick disk.
        for fault in [
            WriteFault::ShortWrite(4),
            WriteFault::NoSpace,
            WriteFault::FsyncFail,
        ] {
            store.set_fault_hook(move |_| Some(fault));
            let err = store.save(&image(4, 3)).unwrap_err();
            assert!(
                err.to_string().contains("injected"),
                "{fault:?}: unexpected error {err}"
            );
            assert_eq!(store.load(4).unwrap(), durable, "{fault:?} lost data");
            assert!(
                !root.join("sess-4.g2.awrs").exists(),
                "{fault:?} must not produce a final file"
            );
        }
        assert_eq!(store.faults_injected(), 3);

        // The replica path rides the same discipline.
        let err = store.save_replica(9, 1, b"replica bytes").unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert_eq!(store.replica_epoch(9), None);
        assert_eq!(store.load_replica(9), None);

        // Disk healed: the very next save lands, and a rescan (restart)
        // sees only intact state despite the torn tmp leftovers.
        store.clear_fault_hook();
        let healed = image(4, 3);
        store.save(&healed).unwrap();
        assert_eq!(store.load(4).unwrap(), healed);
        let reopened = SnapshotStore::open(&root).unwrap();
        assert_eq!(reopened.load(4).unwrap(), healed);
        assert_eq!(reopened.corrupt_count(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fault_hook_can_target_one_path_namespace() {
        let root = temp_root("fault-target");
        let store = SnapshotStore::open(&root).unwrap();
        // Only replica writes fail: the primary namespace is healthy.
        store.set_fault_hook(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .filter(|n| n.starts_with("repl-"))
                .map(|_| WriteFault::NoSpace)
        });
        store.save(&image(2, 1)).unwrap();
        assert!(store.contains(2));
        assert!(store.save_replica(2, 1, b"bytes").is_err());
        assert_eq!(store.replica_count(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stray_files_are_ignored_by_the_scan() {
        let root = temp_root("stray");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join("README.txt"), b"not a snapshot").unwrap();
        fs::write(root.join("sess-1.g1.awrs.tmp"), b"crashed mid-write").unwrap();
        fs::write(root.join("sess-x.g1.awrs"), b"bad id").unwrap();
        let store = SnapshotStore::open(&root).unwrap();
        assert_eq!(store.persisted(), 0);
        let _ = fs::remove_dir_all(&root);
    }
}
