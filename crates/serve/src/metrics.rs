//! Server-wide metrics: lock-free monotone counters plus a live-session
//! gauge, snapshotted on demand by the `stats` command.

use crate::proto::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counter block shared by every worker and connection thread.
///
/// All counters are cumulative since server start except
/// `sessions_live`, which is a gauge derived from the registry at
/// snapshot time. Relaxed ordering is deliberate: each counter is an
/// independent statistic, not a synchronization edge.
#[derive(Debug, Default)]
pub struct Metrics {
    sessions_created: AtomicU64,
    sessions_closed: AtomicU64,
    sessions_evicted: AtomicU64,
    commands: AtomicU64,
    hypotheses_tested: AtomicU64,
    discoveries: AtomicU64,
    rejected_by_budget: AtomicU64,
    errors: AtomicU64,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    pub fn session_created(&self) {
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
    }

    pub fn session_closed(&self) {
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn session_evicted(&self) {
        self.sessions_evicted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn command(&self) {
        self.commands.fetch_add(1, Ordering::Relaxed);
    }

    pub fn hypothesis_tested(&self, rejected: bool) {
        self.hypotheses_tested.fetch_add(1, Ordering::Relaxed);
        if rejected {
            self.discoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn rejected_by_budget(&self) {
        self.rejected_by_budget.fetch_add(1, Ordering::Relaxed);
    }

    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot with the given live-session gauge.
    pub fn snapshot(&self, sessions_live: u64) -> StatsSnapshot {
        StatsSnapshot {
            sessions_created: self.sessions_created.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            sessions_live,
            commands: self.commands.load(Ordering::Relaxed),
            hypotheses_tested: self.hypotheses_tested.load(Ordering::Relaxed),
            discoveries: self.discoveries.load(Ordering::Relaxed),
            rejected_by_budget: self.rejected_by_budget.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.session_created();
        m.session_created();
        m.session_closed();
        m.session_evicted();
        m.command();
        m.hypothesis_tested(true);
        m.hypothesis_tested(false);
        m.rejected_by_budget();
        m.error();
        let s = m.snapshot(1);
        assert_eq!(s.sessions_created, 2);
        assert_eq!(s.sessions_closed, 1);
        assert_eq!(s.sessions_evicted, 1);
        assert_eq!(s.sessions_live, 1);
        assert_eq!(s.commands, 1);
        assert_eq!(s.hypotheses_tested, 2);
        assert_eq!(s.discoveries, 1);
        assert_eq!(s.rejected_by_budget, 1);
        assert_eq!(s.errors, 1);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let m = std::sync::Arc::new(Metrics::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        m.command();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.snapshot(0).commands, 80_000);
    }
}
