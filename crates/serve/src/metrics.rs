//! Server-wide metrics: lock-free monotone counters, per-command-kind
//! latency histograms with a stage breakdown, and a live-session
//! gauge, snapshotted on demand by the `stats` command and rendered by
//! the `--metrics-addr` exposition endpoint.

use crate::proto::{Encoding, StatsSnapshot, BATCH_SIZE_BUCKETS, COMMAND_KINDS};
use aware_obs::hist::{HistogramSnapshot, LatencyHistogram};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counter block shared by every worker and connection thread.
///
/// All counters are cumulative since server start except
/// `sessions_live`, which is a gauge derived from the registry at
/// snapshot time. Relaxed ordering is deliberate: each counter is an
/// independent statistic, not a synchronization edge. Histogram
/// recording is likewise one relaxed `fetch_add` per sample.
#[derive(Debug, Default)]
pub struct Metrics {
    sessions_created: AtomicU64,
    sessions_closed: AtomicU64,
    sessions_evicted: AtomicU64,
    commands: AtomicU64,
    hypotheses_tested: AtomicU64,
    discoveries: AtomicU64,
    rejected_by_budget: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    batch_commands: AtomicU64,
    overloaded: AtomicU64,
    ndjson_requests: AtomicU64,
    binary_frames: AtomicU64,
    slow_queries: AtomicU64,
    promotions: AtomicU64,
    hedged_reads: AtomicU64,
    reactor_conn_opened: AtomicU64,
    reactor_conn_closed: AtomicU64,
    reactor_wakeups: AtomicU64,
    push_frames: AtomicU64,
    drr_deferrals: AtomicU64,
    batch_size_hist: [AtomicU64; 5],
    /// End-to-end command latency (queue wait + execute), bucketed by
    /// [`COMMAND_KINDS`] index. The all-kinds distribution is the
    /// bucket-wise merge of these at snapshot time — no separate
    /// total histogram to double-record into.
    latency_by_kind: [LatencyHistogram; COMMAND_KINDS.len()],
    /// Stage breakdown: time an accepted unit waited in a worker's
    /// queue before pickup.
    stage_queue_wait: LatencyHistogram,
    /// Stage breakdown: time spent executing one command.
    stage_execute: LatencyHistogram,
    /// Stage breakdown: time writing one durable session snapshot
    /// (tmp + fsync + rename).
    stage_snapshot_flush: LatencyHistogram,
    /// Stage breakdown: time encoding + writing one reply to the wire.
    stage_wire_encode: LatencyHistogram,
}

/// Histogram bucket index for a batch of `n` commands; edges are
/// [`BATCH_SIZE_BUCKETS`].
fn batch_bucket(n: usize) -> usize {
    BATCH_SIZE_BUCKETS
        .iter()
        .position(|&edge| n as u64 <= edge)
        .unwrap_or(BATCH_SIZE_BUCKETS.len())
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    pub fn session_created(&self) {
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
    }

    pub fn session_closed(&self) {
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn session_evicted(&self) {
        self.sessions_evicted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn command(&self) {
        self.commands.fetch_add(1, Ordering::Relaxed);
    }

    pub fn hypothesis_tested(&self, rejected: bool) {
        self.hypotheses_tested.fetch_add(1, Ordering::Relaxed);
        if rejected {
            self.discoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn rejected_by_budget(&self) {
        self.rejected_by_budget.fetch_add(1, Ordering::Relaxed);
    }

    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// One dispatch unit of `n` commands accepted by `call_batch` (a
    /// plain `call` is a batch of one).
    pub fn batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_commands.fetch_add(n as u64, Ordering::Relaxed);
        self.batch_size_hist[batch_bucket(n)].fetch_add(1, Ordering::Relaxed);
    }

    /// Work refused by backpressure (session capacity or pending cap).
    pub fn overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// One wire message received on the given surface.
    pub fn wire_request(&self, encoding: Encoding) {
        match encoding {
            Encoding::Json => &self.ndjson_requests,
            Encoding::Binary => &self.binary_frames,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// One command past the `--slow-ms` threshold (a slow-query record
    /// was emitted).
    pub fn slow_query(&self) {
        self.slow_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// One replica image promoted to the live session on this shard.
    pub fn promotion(&self) {
        self.promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// One read-only command answered from a held replica image (the
    /// serving half of a router's hedged read).
    pub fn hedged_read(&self) {
        self.hedged_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// One connection accepted by the reactor front end. The
    /// `reactor_connections` gauge is opened − closed, computed at
    /// snapshot time from two monotone counters so concurrent
    /// open/close never races a decrement below zero.
    pub fn reactor_conn_opened(&self) {
        self.reactor_conn_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// One reactor connection fully closed (deregistered and dropped).
    pub fn reactor_conn_closed(&self) {
        self.reactor_conn_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// One `epoll_wait` return with at least one ready event.
    pub fn reactor_wakeup(&self) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// One server-push frame handed to a subscribed connection.
    pub fn push_frame(&self) {
        self.push_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// One dispatch unit deferred by the deficit-round-robin drainer
    /// because its route exhausted the round's quantum.
    pub fn drr_deferral(&self) {
        self.drr_deferrals.fetch_add(1, Ordering::Relaxed);
    }

    /// End-to-end latency (µs) of one command of the given
    /// [`COMMAND_KINDS`] index.
    pub fn observe_command(&self, kind: usize, micros: u64) {
        self.latency_by_kind[kind.min(COMMAND_KINDS.len() - 1)].record(micros);
    }

    /// Queue wait (µs) of one dispatch unit: enqueue → worker pickup.
    pub fn observe_queue_wait(&self, micros: u64) {
        self.stage_queue_wait.record(micros);
    }

    /// Execute stage (µs) of one command.
    pub fn observe_execute(&self, micros: u64) {
        self.stage_execute.record(micros);
    }

    /// One durable snapshot flush (µs).
    pub fn observe_snapshot_flush(&self, micros: u64) {
        self.stage_snapshot_flush.record(micros);
    }

    /// One reply encoded + written to the wire (µs).
    pub fn observe_wire_encode(&self, micros: u64) {
        self.stage_wire_encode.record(micros);
    }

    /// The all-kinds latency distribution: bucket-wise merge of every
    /// per-kind histogram.
    pub fn latency(&self) -> HistogramSnapshot {
        let mut total = HistogramSnapshot::default();
        for h in &self.latency_by_kind {
            total.merge(&h.snapshot());
        }
        total
    }

    /// Latency distribution of one command kind.
    pub fn latency_of_kind(&self, kind: usize) -> HistogramSnapshot {
        self.latency_by_kind[kind.min(COMMAND_KINDS.len() - 1)].snapshot()
    }

    /// The four stage distributions, in (queue wait, execute,
    /// snapshot flush, wire encode) order.
    pub fn stages(&self) -> [(&'static str, HistogramSnapshot); 4] {
        [
            ("queue_wait", self.stage_queue_wait.snapshot()),
            ("execute", self.stage_execute.snapshot()),
            ("snapshot_flush", self.stage_snapshot_flush.snapshot()),
            ("wire_encode", self.stage_wire_encode.snapshot()),
        ]
    }

    /// Snapshot with the given live-session gauge.
    pub fn snapshot(&self, sessions_live: u64) -> StatsSnapshot {
        let mut batch_size_hist = [0u64; 5];
        for (slot, counter) in batch_size_hist.iter_mut().zip(&self.batch_size_hist) {
            *slot = counter.load(Ordering::Relaxed);
        }
        let [latency_p50_us, latency_p90_us, latency_p99_us, latency_p999_us] =
            self.latency().summary();
        StatsSnapshot {
            sessions_created: self.sessions_created.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            sessions_live,
            commands: self.commands.load(Ordering::Relaxed),
            hypotheses_tested: self.hypotheses_tested.load(Ordering::Relaxed),
            discoveries: self.discoveries.load(Ordering::Relaxed),
            rejected_by_budget: self.rejected_by_budget.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_commands: self.batch_commands.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            ndjson_requests: self.ndjson_requests.load(Ordering::Relaxed),
            binary_frames: self.binary_frames.load(Ordering::Relaxed),
            // Evaluation-cache counters live with each dataset's cache,
            // the persisted gauge with the snapshot store, and uptime
            // plus per-session risk with the registry — the service
            // folds them in at snapshot time. The cluster counters and
            // per-shard table belong to a router, not a shard.
            cache_hits: 0,
            cache_misses: 0,
            persisted: 0,
            forwarded: 0,
            migrations: 0,
            shard_errors: 0,
            uptime_seconds: 0,
            latency_p50_us,
            latency_p90_us,
            latency_p99_us,
            latency_p999_us,
            slow_queries: self.slow_queries.load(Ordering::Relaxed),
            batch_size_hist,
            shards: Vec::new(),
            sessions: Vec::new(),
            // `replicas_live` is a gauge over the replica map — the
            // service folds it in at snapshot time. Replication lag is
            // only observable from a router, which knows the acks.
            replicas_live: 0,
            replication_lag_max_epochs: 0,
            promotions: self.promotions.load(Ordering::Relaxed),
            hedged_reads: self.hedged_reads.load(Ordering::Relaxed),
            // Deadline/breaker accounting belongs to a router's shard
            // pools; a plain serve has no outbound calls to time out.
            shard_timeouts: 0,
            breaker_opens: 0,
            breaker_shed: 0,
            reactor_connections: self
                .reactor_conn_opened
                .load(Ordering::Relaxed)
                .saturating_sub(self.reactor_conn_closed.load(Ordering::Relaxed)),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            push_frames: self.push_frames.load(Ordering::Relaxed),
            drr_deferrals: self.drr_deferrals.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.session_created();
        m.session_created();
        m.session_closed();
        m.session_evicted();
        m.command();
        m.hypothesis_tested(true);
        m.hypothesis_tested(false);
        m.rejected_by_budget();
        m.error();
        m.batch(1);
        m.batch(8);
        m.batch(64);
        m.batch(65);
        m.batch(1000);
        m.overloaded();
        m.wire_request(Encoding::Json);
        m.wire_request(Encoding::Binary);
        m.wire_request(Encoding::Binary);
        let s = m.snapshot(1);
        assert_eq!(s.sessions_created, 2);
        assert_eq!(s.sessions_closed, 1);
        assert_eq!(s.sessions_evicted, 1);
        assert_eq!(s.sessions_live, 1);
        assert_eq!(s.commands, 1);
        assert_eq!(s.hypotheses_tested, 2);
        assert_eq!(s.discoveries, 1);
        assert_eq!(s.rejected_by_budget, 1);
        assert_eq!(s.errors, 1);
        assert_eq!(s.batches, 5);
        assert_eq!(s.batch_commands, 1 + 8 + 64 + 65 + 1000);
        assert_eq!(s.batch_size_hist, [1, 1, 1, 1, 1]);
        assert_eq!(s.overloaded, 1);
        assert_eq!(s.ndjson_requests, 1);
        assert_eq!(s.binary_frames, 2);
    }

    #[test]
    fn reactor_gauge_is_opened_minus_closed() {
        let m = Metrics::new();
        m.reactor_conn_opened();
        m.reactor_conn_opened();
        m.reactor_conn_opened();
        m.reactor_conn_closed();
        m.reactor_wakeup();
        m.push_frame();
        m.push_frame();
        m.drr_deferral();
        let s = m.snapshot(0);
        assert_eq!(s.reactor_connections, 2);
        assert_eq!(s.reactor_wakeups, 1);
        assert_eq!(s.push_frames, 2);
        assert_eq!(s.drr_deferrals, 1);
        // The gauge saturates rather than wrapping if a close is
        // counted before its open is visible.
        let m = Metrics::new();
        m.reactor_conn_closed();
        assert_eq!(m.snapshot(0).reactor_connections, 0);
    }

    #[test]
    fn latency_histograms_merge_across_kinds_into_the_snapshot() {
        let m = Metrics::new();
        m.observe_command(0, 100);
        m.observe_command(2, 300);
        m.observe_command(2, 50_000);
        m.observe_queue_wait(5);
        m.observe_execute(95);
        m.observe_snapshot_flush(2_000);
        m.observe_wire_encode(8);
        m.slow_query();
        assert_eq!(m.latency().count(), 3);
        assert_eq!(m.latency_of_kind(2).count(), 2);
        let s = m.snapshot(0);
        // p50 of {100, 300, 50000} is 300; the histogram may overshoot
        // by at most 1/16.
        assert!(
            s.latency_p50_us >= 300 && s.latency_p50_us as u128 * 16 <= 300 * 17,
            "{}",
            s.latency_p50_us
        );
        assert!(s.latency_p999_us >= 50_000);
        assert_eq!(s.slow_queries, 1);
        for (name, stage) in m.stages() {
            assert_eq!(stage.count(), 1, "{name}");
        }
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let m = std::sync::Arc::new(Metrics::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        m.command();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.snapshot(0).commands, 80_000);
    }
}
