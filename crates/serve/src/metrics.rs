//! Server-wide metrics: lock-free monotone counters plus a live-session
//! gauge, snapshotted on demand by the `stats` command.

use crate::proto::{Encoding, StatsSnapshot, BATCH_SIZE_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counter block shared by every worker and connection thread.
///
/// All counters are cumulative since server start except
/// `sessions_live`, which is a gauge derived from the registry at
/// snapshot time. Relaxed ordering is deliberate: each counter is an
/// independent statistic, not a synchronization edge.
#[derive(Debug, Default)]
pub struct Metrics {
    sessions_created: AtomicU64,
    sessions_closed: AtomicU64,
    sessions_evicted: AtomicU64,
    commands: AtomicU64,
    hypotheses_tested: AtomicU64,
    discoveries: AtomicU64,
    rejected_by_budget: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    batch_commands: AtomicU64,
    overloaded: AtomicU64,
    ndjson_requests: AtomicU64,
    binary_frames: AtomicU64,
    batch_size_hist: [AtomicU64; 5],
}

/// Histogram bucket index for a batch of `n` commands; edges are
/// [`BATCH_SIZE_BUCKETS`].
fn batch_bucket(n: usize) -> usize {
    BATCH_SIZE_BUCKETS
        .iter()
        .position(|&edge| n as u64 <= edge)
        .unwrap_or(BATCH_SIZE_BUCKETS.len())
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    pub fn session_created(&self) {
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
    }

    pub fn session_closed(&self) {
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn session_evicted(&self) {
        self.sessions_evicted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn command(&self) {
        self.commands.fetch_add(1, Ordering::Relaxed);
    }

    pub fn hypothesis_tested(&self, rejected: bool) {
        self.hypotheses_tested.fetch_add(1, Ordering::Relaxed);
        if rejected {
            self.discoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn rejected_by_budget(&self) {
        self.rejected_by_budget.fetch_add(1, Ordering::Relaxed);
    }

    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// One dispatch unit of `n` commands accepted by `call_batch` (a
    /// plain `call` is a batch of one).
    pub fn batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_commands.fetch_add(n as u64, Ordering::Relaxed);
        self.batch_size_hist[batch_bucket(n)].fetch_add(1, Ordering::Relaxed);
    }

    /// Work refused by backpressure (session capacity or pending cap).
    pub fn overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// One wire message received on the given surface.
    pub fn wire_request(&self, encoding: Encoding) {
        match encoding {
            Encoding::Json => &self.ndjson_requests,
            Encoding::Binary => &self.binary_frames,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot with the given live-session gauge.
    pub fn snapshot(&self, sessions_live: u64) -> StatsSnapshot {
        let mut batch_size_hist = [0u64; 5];
        for (slot, counter) in batch_size_hist.iter_mut().zip(&self.batch_size_hist) {
            *slot = counter.load(Ordering::Relaxed);
        }
        StatsSnapshot {
            sessions_created: self.sessions_created.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            sessions_live,
            commands: self.commands.load(Ordering::Relaxed),
            hypotheses_tested: self.hypotheses_tested.load(Ordering::Relaxed),
            discoveries: self.discoveries.load(Ordering::Relaxed),
            rejected_by_budget: self.rejected_by_budget.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_commands: self.batch_commands.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            ndjson_requests: self.ndjson_requests.load(Ordering::Relaxed),
            binary_frames: self.binary_frames.load(Ordering::Relaxed),
            // Evaluation-cache counters live with each dataset's cache
            // and the persisted gauge with the snapshot store, not here;
            // the service folds them in at snapshot time. The cluster
            // counters and per-shard table belong to a router, not a
            // shard.
            cache_hits: 0,
            cache_misses: 0,
            persisted: 0,
            forwarded: 0,
            migrations: 0,
            shard_errors: 0,
            batch_size_hist,
            shards: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.session_created();
        m.session_created();
        m.session_closed();
        m.session_evicted();
        m.command();
        m.hypothesis_tested(true);
        m.hypothesis_tested(false);
        m.rejected_by_budget();
        m.error();
        m.batch(1);
        m.batch(8);
        m.batch(64);
        m.batch(65);
        m.batch(1000);
        m.overloaded();
        m.wire_request(Encoding::Json);
        m.wire_request(Encoding::Binary);
        m.wire_request(Encoding::Binary);
        let s = m.snapshot(1);
        assert_eq!(s.sessions_created, 2);
        assert_eq!(s.sessions_closed, 1);
        assert_eq!(s.sessions_evicted, 1);
        assert_eq!(s.sessions_live, 1);
        assert_eq!(s.commands, 1);
        assert_eq!(s.hypotheses_tested, 2);
        assert_eq!(s.discoveries, 1);
        assert_eq!(s.rejected_by_budget, 1);
        assert_eq!(s.errors, 1);
        assert_eq!(s.batches, 5);
        assert_eq!(s.batch_commands, 1 + 8 + 64 + 65 + 1000);
        assert_eq!(s.batch_size_hist, [1, 1, 1, 1, 1]);
        assert_eq!(s.overloaded, 1);
        assert_eq!(s.ndjson_requests, 1);
        assert_eq!(s.binary_frames, 2);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let m = std::sync::Arc::new(Metrics::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        m.command();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.snapshot(0).commands, 80_000);
    }
}
