//! The compact tag-based binary codec for protocol v2 payloads.
//!
//! Each frame payload (see [`crate::frame`] for the outer framing) is
//! one [`Envelope`] or [`Reply`], encoded with four primitives:
//!
//! * unsigned integers as LEB128 varints (`session`, counts, ids);
//! * signed integers zig-zag folded, then varint;
//! * `f64` as its 8 IEEE-754 bytes, little-endian — p-values survive
//!   bit-exactly, no decimal detour;
//! * strings and transcripts as a varint byte length + UTF-8 bytes.
//!
//! Every composite value opens with a one-byte tag. The codec is
//! self-contained (no lengths besides string/collection counts), so a
//! decoder either consumes exactly the payload or reports the byte
//! offset where it lost the plot. Decoding is hardened the same way the
//! JSON parser is: filter nesting is depth-capped and batch item counts
//! honour [`MAX_BATCH_ITEMS`], so a hostile frame cannot blow the stack
//! or fan out unbounded work.

use crate::error::{ErrorCode, ServeError};
use crate::proto::{
    Batch, BatchItem, BatchMode, Command, Encoding, Envelope, HypothesisReport, PushEvent, Reply,
    Response, StatsSnapshot, TranscriptFormat, MAX_BATCH_ITEMS,
};
use aware_data::predicate::CmpOp;
use aware_data::value::Value;

use crate::proto::{FilterSpec, PolicySpec};

/// Decoded-filter nesting ceiling, mirroring the JSON parser's.
const MAX_FILTER_DEPTH: usize = 128;

/// Scalar counters in a binary `Stats` reply. The wire carries this as
/// a count prefix so the list can grow without breaking older decoders
/// (unknown trailing counters are skipped, missing ones default to 0) —
/// which is exactly how `persisted` (field 17) arrived without a
/// protocol-version bump, how the cluster router's `forwarded`/
/// `migrations`/`shard_errors` (fields 18–20) arrived without one, and
/// now — fourth proof — how the observability scalars `uptime_seconds`
/// and the four latency quantiles plus `slow_queries` (fields 21–26)
/// arrive without one, fifth proof — how the replication scalars
/// `replicas_live`/`replication_lag_max_epochs`/`promotions`/
/// `hedged_reads` (fields 27–30) arrive without one, and now — sixth
/// proof — how the resilience scalars `shard_timeouts`/`breaker_opens`/
/// `breaker_shed` (fields 31–33) arrive without one, and now — seventh
/// proof — how the reactor/push scalars `reactor_connections`/
/// `reactor_wakeups`/`push_frames`/`drr_deferrals` (fields 34–37)
/// arrive without one. The per-shard health breakdown and per-session
/// risk rows are JSON-surface only: they are not scalars, and the
/// count prefix covers only scalars.
const STATS_SCALAR_FIELDS: usize = 37;

// Envelope tags.
const TAG_HELLO: u8 = 0x01;
const TAG_BATCH: u8 = 0x02;
const TAG_SINGLE: u8 = 0x03;

// Reply tags.
const TAG_HELLO_ACK: u8 = 0x81;
const TAG_BATCH_REPLY: u8 = 0x82;
const TAG_SINGLE_REPLY: u8 = 0x83;

/// Encodes a request envelope into one frame payload.
pub fn encode_envelope(envelope: &Envelope) -> Vec<u8> {
    let mut w = Writer::new();
    match envelope {
        Envelope::Hello {
            id,
            version,
            encoding,
            push,
        } => {
            w.u8(TAG_HELLO);
            w.opt_varint(*id);
            w.varint(*version as u64);
            w.u8(encoding_tag(*encoding));
            // Optional trailing capability byte — written only when the
            // client opts into push, so hellos from older clients keep
            // their exact historical bytes. Beware the asymmetry with
            // the JSON surface: a pre-push *server* decodes binary
            // hellos with a strict `Reader::finish()` and rejects this
            // byte as trailing garbage, failing the handshake — do not
            // request push in a binary-native hello against old
            // servers (request it over a JSON hello instead, as
            // `tcp::Client` does).
            if *push {
                w.u8(1);
            }
        }
        Envelope::Batch { id, batch } => {
            w.u8(TAG_BATCH);
            w.opt_varint(*id);
            w.u8(match batch.mode {
                BatchMode::Continue => 0,
                BatchMode::FailFast => 1,
            });
            w.varint(batch.items.len() as u64);
            for item in &batch.items {
                w.opt_varint(item.id);
                w.command(&item.cmd);
            }
        }
        Envelope::Single { id, cmd } => {
            w.u8(TAG_SINGLE);
            w.opt_varint(*id);
            w.command(cmd);
        }
    }
    w.buf
}

/// Encodes a reply envelope into one frame payload.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut w = Writer::new();
    match reply {
        Reply::HelloAck {
            id,
            version,
            encoding,
            max_frame,
            push,
        } => {
            w.u8(TAG_HELLO_ACK);
            w.opt_varint(*id);
            w.varint(*version as u64);
            w.u8(encoding_tag(*encoding));
            w.varint(*max_frame);
            // Mirror of the hello capability byte: present only when
            // the server granted push.
            if *push {
                w.u8(1);
            }
        }
        Reply::Batch { id, items } => {
            w.u8(TAG_BATCH_REPLY);
            w.opt_varint(*id);
            w.varint(items.len() as u64);
            for (item_id, response) in items {
                w.opt_varint(*item_id);
                w.response(response);
            }
        }
        Reply::Single { id, response } => {
            w.u8(TAG_SINGLE_REPLY);
            w.opt_varint(*id);
            w.response(response);
        }
    }
    w.buf
}

/// Decodes one frame payload as a request envelope.
pub fn decode_envelope(payload: &[u8]) -> Result<Envelope, ServeError> {
    let mut r = Reader::new(payload);
    let envelope = match r.u8("envelope tag")? {
        TAG_HELLO => {
            let id = r.opt_varint("hello id")?;
            let version = r.varint("hello version")?;
            let encoding = r.encoding()?;
            // Lenient capability decode: the push byte is optional and
            // trailing, so hellos from pre-push clients (which simply
            // end here) parse exactly as before.
            let push = if r.has_more() {
                r.u8("hello push capability")? != 0
            } else {
                false
            };
            Envelope::Hello {
                id,
                version: version.min(u32::MAX as u64) as u32,
                encoding,
                push,
            }
        }
        TAG_BATCH => {
            let id = r.opt_varint("batch id")?;
            let mode = match r.u8("batch mode")? {
                0 => BatchMode::Continue,
                1 => BatchMode::FailFast,
                other => return Err(r.bad(format!("unknown batch mode {other}"))),
            };
            let count = r.varint("batch item count")? as usize;
            if count > MAX_BATCH_ITEMS {
                return Err(ServeError::invalid(format!(
                    "batch of {count} items exceeds the {MAX_BATCH_ITEMS}-item ceiling"
                )));
            }
            let mut items = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let id = r.opt_varint("item id")?;
                let cmd = r.command()?;
                items.push(BatchItem { id, cmd });
            }
            Envelope::Batch {
                id,
                batch: Batch { mode, items },
            }
        }
        TAG_SINGLE => {
            let id = r.opt_varint("single id")?;
            let cmd = r.command()?;
            Envelope::Single { id, cmd }
        }
        other => return Err(r.bad(format!("unknown envelope tag 0x{other:02x}"))),
    };
    r.finish()?;
    Ok(envelope)
}

/// Decodes one frame payload as a reply envelope.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, ServeError> {
    let mut r = Reader::new(payload);
    let reply = match r.u8("reply tag")? {
        TAG_HELLO_ACK => {
            let id = r.opt_varint("hello id")?;
            let version = r.varint("hello version")?;
            let encoding = r.encoding()?;
            let max_frame = r.varint("max_frame")?;
            let push = if r.has_more() {
                r.u8("hello ack push capability")? != 0
            } else {
                false
            };
            Reply::HelloAck {
                id,
                version: version.min(u32::MAX as u64) as u32,
                encoding,
                max_frame,
                push,
            }
        }
        TAG_BATCH_REPLY => {
            let id = r.opt_varint("batch id")?;
            let count = r.varint("response count")? as usize;
            if count > MAX_BATCH_ITEMS {
                return Err(ServeError::invalid(format!(
                    "batch reply of {count} items exceeds the {MAX_BATCH_ITEMS}-item ceiling"
                )));
            }
            let mut items = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let item_id = r.opt_varint("item id")?;
                let response = r.response()?;
                items.push((item_id, response));
            }
            Reply::Batch { id, items }
        }
        TAG_SINGLE_REPLY => {
            let id = r.opt_varint("single id")?;
            let response = r.response()?;
            Reply::Single { id, response }
        }
        other => return Err(r.bad(format!("unknown reply tag 0x{other:02x}"))),
    };
    r.finish()?;
    Ok(reply)
}

fn encoding_tag(encoding: Encoding) -> u8 {
    match encoding {
        Encoding::Json => 0,
        Encoding::Binary => 1,
    }
}

fn cmp_op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 1,
        CmpOp::Neq => 2,
        CmpOp::Lt => 3,
        CmpOp::Le => 4,
        CmpOp::Gt => 5,
        CmpOp::Ge => 6,
    }
}

// -- writer -----------------------------------------------------------------

/// The tag-codec byte writer. `pub(crate)` so the session-snapshot
/// codec ([`crate::snapshot`]) reuses the exact same primitives (and
/// the policy/filter encoders below) instead of inventing a dialect.
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// The bytes written so far.
    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    pub(crate) fn varint(&mut self, mut n: u64) {
        loop {
            let byte = (n & 0x7f) as u8;
            n >>= 7;
            if n == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    pub(crate) fn zigzag(&mut self, n: i64) {
        self.varint(((n << 1) ^ (n >> 63)) as u64);
    }

    pub(crate) fn opt_varint(&mut self, n: Option<u64>) {
        match n {
            None => self.u8(0),
            Some(n) => {
                self.u8(1);
                self.varint(n);
            }
        }
    }

    pub(crate) fn f64(&mut self, x: f64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Fixed-width little-endian u64 (content fingerprints).
    pub(crate) fn raw_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Raw byte string: varint length + bytes (snapshot images).
    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    pub(crate) fn value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.u8(0);
                self.zigzag(*i);
            }
            Value::Float(x) => {
                self.u8(1);
                self.f64(*x);
            }
            Value::Bool(b) => {
                self.u8(2);
                self.u8(*b as u8);
            }
            Value::Str(s) => {
                self.u8(3);
                self.str(s);
            }
        }
    }

    pub(crate) fn policy(&mut self, p: &PolicySpec) {
        match *p {
            PolicySpec::Fixed { gamma } => {
                self.u8(1);
                self.f64(gamma);
            }
            PolicySpec::Farsighted { beta } => {
                self.u8(2);
                self.f64(beta);
            }
            PolicySpec::Hopeful { delta } => {
                self.u8(3);
                self.f64(delta);
            }
            PolicySpec::EpsilonHybrid {
                gamma,
                delta,
                epsilon,
                window,
            } => {
                self.u8(4);
                self.f64(gamma);
                self.f64(delta);
                self.f64(epsilon);
                self.opt_varint(window.map(|w| w as u64));
            }
            PolicySpec::PsiSupport { gamma, psi } => {
                self.u8(5);
                self.f64(gamma);
                self.f64(psi);
            }
        }
    }

    pub(crate) fn filter(&mut self, f: &FilterSpec) {
        match f {
            FilterSpec::True => self.u8(0),
            FilterSpec::Cmp { column, op, value } => {
                self.u8(cmp_op_tag(*op));
                self.str(column);
                self.value(value);
            }
            FilterSpec::In { column, values } => {
                self.u8(7);
                self.str(column);
                self.varint(values.len() as u64);
                for v in values {
                    self.value(v);
                }
            }
            FilterSpec::Between { column, lo, hi } => {
                self.u8(8);
                self.str(column);
                self.f64(*lo);
                self.f64(*hi);
            }
            FilterSpec::Not(inner) => {
                self.u8(9);
                self.filter(inner);
            }
            FilterSpec::And(parts) => {
                self.u8(10);
                self.varint(parts.len() as u64);
                for p in parts {
                    self.filter(p);
                }
            }
            FilterSpec::Or(parts) => {
                self.u8(11);
                self.varint(parts.len() as u64);
                for p in parts {
                    self.filter(p);
                }
            }
        }
    }

    fn command(&mut self, cmd: &Command) {
        match cmd {
            Command::CreateSession {
                dataset,
                alpha,
                policy,
            } => {
                self.u8(1);
                self.str(dataset);
                self.f64(*alpha);
                self.policy(policy);
            }
            Command::AddVisualization {
                session,
                attribute,
                filter,
            } => {
                self.u8(2);
                self.varint(*session);
                self.str(attribute);
                self.filter(filter);
            }
            Command::SetPolicy { session, policy } => {
                self.u8(3);
                self.varint(*session);
                self.policy(policy);
            }
            Command::Gauge { session } => {
                self.u8(4);
                self.varint(*session);
            }
            Command::Transcript { session, format } => {
                self.u8(5);
                self.varint(*session);
                self.u8(matches!(format, TranscriptFormat::Text) as u8);
            }
            Command::CloseSession { session } => {
                self.u8(6);
                self.varint(*session);
            }
            Command::Stats => self.u8(7),
            Command::CreateSessionAs {
                session,
                dataset,
                alpha,
                policy,
            } => {
                self.u8(8);
                self.varint(*session);
                self.str(dataset);
                self.f64(*alpha);
                self.policy(policy);
            }
            Command::ExportSession { session } => {
                self.u8(9);
                self.varint(*session);
            }
            Command::ImportSession { session, image } => {
                self.u8(10);
                self.varint(*session);
                self.bytes(image);
            }
            Command::ListDatasets => self.u8(11),
            Command::JoinShard { addr } => {
                self.u8(12);
                self.str(addr);
            }
            Command::LeaveShard { addr } => {
                self.u8(13);
                self.str(addr);
            }
            Command::ReplicateSession {
                session,
                epoch,
                image,
            } => {
                self.u8(14);
                self.varint(*session);
                self.varint(*epoch);
                self.bytes(image);
            }
            Command::PromoteReplica { session } => {
                self.u8(15);
                self.varint(*session);
            }
            Command::DropReplica { session } => {
                self.u8(16);
                self.varint(*session);
            }
            Command::SnapshotSession { session } => {
                self.u8(17);
                self.varint(*session);
            }
            Command::ListSessions => self.u8(18),
            Command::Gossip {
                from,
                generation,
                members,
            } => {
                self.u8(19);
                self.str(from);
                self.varint(*generation);
                self.members(members);
            }
        }
    }

    fn members(&mut self, members: &[crate::proto::MemberInfo]) {
        self.varint(members.len() as u64);
        for m in members {
            self.str(&m.addr);
            self.u8(m.status.as_u8());
            self.varint(m.incarnation);
        }
    }

    fn response(&mut self, response: &Response) {
        match response {
            Response::SessionCreated {
                session,
                wealth,
                policy,
            } => {
                self.u8(1);
                self.varint(*session);
                self.f64(*wealth);
                self.str(policy);
            }
            Response::VizAdded {
                session,
                viz,
                wealth,
                hypothesis,
            } => {
                self.u8(2);
                self.varint(*session);
                self.varint(*viz);
                self.f64(*wealth);
                match hypothesis {
                    None => self.u8(0),
                    Some(h) => {
                        self.u8(1);
                        self.varint(h.id);
                        self.str(&h.test);
                        self.f64(h.statistic);
                        self.f64(h.p_value);
                        self.f64(h.bid);
                        self.u8(h.rejected as u8);
                        self.f64(h.effect_size);
                        self.f64(h.support_fraction);
                        self.f64(h.wealth_after);
                    }
                }
            }
            Response::PolicySet { session, policy } => {
                self.u8(3);
                self.varint(*session);
                self.str(policy);
            }
            Response::GaugeText { session, text } => {
                self.u8(4);
                self.varint(*session);
                self.str(text);
            }
            Response::TranscriptText {
                session,
                format,
                text,
            } => {
                self.u8(5);
                self.varint(*session);
                self.u8(matches!(format, TranscriptFormat::Text) as u8);
                self.str(text);
            }
            Response::SessionClosed {
                session,
                hypotheses,
                discoveries,
            } => {
                self.u8(6);
                self.varint(*session);
                self.varint(*hypotheses);
                self.varint(*discoveries);
            }
            Response::Stats(s) => {
                self.u8(7);
                // The scalar-counter list is count-prefixed so the set
                // can grow (as cache_hits/cache_misses did) without a
                // framing break: readers take the counters they know
                // and skip the rest.
                self.varint(STATS_SCALAR_FIELDS as u64);
                for n in [
                    s.sessions_created,
                    s.sessions_closed,
                    s.sessions_evicted,
                    s.sessions_live,
                    s.commands,
                    s.hypotheses_tested,
                    s.discoveries,
                    s.rejected_by_budget,
                    s.errors,
                    s.batches,
                    s.batch_commands,
                    s.overloaded,
                    s.ndjson_requests,
                    s.binary_frames,
                    s.cache_hits,
                    s.cache_misses,
                    s.persisted,
                    s.forwarded,
                    s.migrations,
                    s.shard_errors,
                    s.uptime_seconds,
                    s.latency_p50_us,
                    s.latency_p90_us,
                    s.latency_p99_us,
                    s.latency_p999_us,
                    s.slow_queries,
                    s.replicas_live,
                    s.replication_lag_max_epochs,
                    s.promotions,
                    s.hedged_reads,
                    s.shard_timeouts,
                    s.breaker_opens,
                    s.breaker_shed,
                    s.reactor_connections,
                    s.reactor_wakeups,
                    s.push_frames,
                    s.drr_deferrals,
                ] {
                    self.varint(n);
                }
                for n in s.batch_size_hist {
                    self.varint(n);
                }
            }
            Response::Error(e) => {
                self.u8(8);
                self.str(e.code.as_str());
                self.str(&e.message);
            }
            Response::SessionExported { session, image } => {
                self.u8(9);
                self.varint(*session);
                self.bytes(image);
            }
            Response::SessionImported { session, wealth } => {
                self.u8(10);
                self.varint(*session);
                self.f64(*wealth);
            }
            Response::Datasets {
                datasets,
                next_session,
            } => {
                self.u8(11);
                self.varint(datasets.len() as u64);
                for d in datasets {
                    self.str(&d.name);
                    self.varint(d.rows);
                    // Fixed 8 bytes, not varint: fingerprints are
                    // uniformly distributed, varints would only pad.
                    self.raw_u64(d.fingerprint);
                }
                self.varint(*next_session);
            }
            Response::Rebalanced {
                addr,
                joined,
                migrated,
            } => {
                self.u8(12);
                self.str(addr);
                self.u8(*joined as u8);
                self.varint(*migrated);
            }
            Response::SessionReplicated { session, epoch } => {
                self.u8(13);
                self.varint(*session);
                self.varint(*epoch);
            }
            Response::ReplicaPromoted {
                session,
                epoch,
                wealth,
            } => {
                self.u8(14);
                self.varint(*session);
                self.varint(*epoch);
                self.f64(*wealth);
            }
            Response::ReplicaDropped { session } => {
                self.u8(15);
                self.varint(*session);
            }
            Response::Sessions { sessions } => {
                self.u8(16);
                self.varint(sessions.len() as u64);
                for s in sessions {
                    self.varint(s.session);
                    self.u8(s.replica as u8);
                    self.varint(s.epoch);
                }
            }
            Response::GossipView {
                generation,
                members,
            } => {
                self.u8(17);
                self.varint(*generation);
                self.members(members);
            }
            Response::Push(event) => {
                self.u8(18);
                match event {
                    PushEvent::SessionEvicted { session, reason } => {
                        self.u8(1);
                        self.varint(*session);
                        self.str(reason);
                    }
                    PushEvent::CacheReset { dataset } => {
                        self.u8(2);
                        self.str(dataset);
                    }
                }
            }
        }
    }
}

// -- reader -----------------------------------------------------------------

pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn bad(&self, message: impl Into<String>) -> ServeError {
        ServeError {
            code: ErrorCode::BadRequest,
            message: format!("binary payload at byte {}: {}", self.pos, message.into()),
        }
    }

    /// Whether any undecoded bytes remain — used for optional trailing
    /// capability bytes (the hello `push` flag) that must stay lenient.
    pub(crate) fn has_more(&self) -> bool {
        self.pos < self.bytes.len()
    }

    pub(crate) fn finish(&self) -> Result<(), ServeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.bad(format!(
                "{} trailing bytes after the message",
                self.bytes.len() - self.pos
            )))
        }
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, ServeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.bad(format!("truncated payload reading {what}")))?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn varint(&mut self, what: &str) -> Result<u64, ServeError> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(what)?;
            if shift == 63 && byte > 1 {
                return Err(self.bad(format!("varint overflow reading {what}")));
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.bad(format!("varint longer than 10 bytes reading {what}")));
            }
        }
    }

    pub(crate) fn zigzag(&mut self, what: &str) -> Result<i64, ServeError> {
        let n = self.varint(what)?;
        Ok((n >> 1) as i64 ^ -((n & 1) as i64))
    }

    pub(crate) fn opt_varint(&mut self, what: &str) -> Result<Option<u64>, ServeError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.varint(what)?)),
            other => Err(self.bad(format!("bad optional flag {other} for {what}"))),
        }
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, ServeError> {
        Ok(f64::from_le_bytes(self.raw8(what)?))
    }

    /// Fixed-width little-endian u64 (content fingerprints — uniformly
    /// distributed, so a varint would only pad them).
    pub(crate) fn u64_le(&mut self, what: &str) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.raw8(what)?))
    }

    fn raw8(&mut self, what: &str) -> Result<[u8; 8], ServeError> {
        if self.pos + 8 > self.bytes.len() {
            return Err(self.bad(format!("truncated payload reading {what}")));
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(raw)
    }

    pub(crate) fn str(&mut self, what: &str) -> Result<String, ServeError> {
        let len = self.varint(what)? as usize;
        // Compare against the remainder, never `pos + len` — a hostile
        // length near u64::MAX must be an error, not an overflow.
        if len > self.bytes.len() - self.pos {
            return Err(self.bad(format!("string length {len} overruns payload in {what}")));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
            .map_err(|_| self.bad(format!("invalid UTF-8 in {what}")))?
            .to_string();
        self.pos += len;
        Ok(s)
    }

    /// Raw byte string: varint length + bytes. Same hostile-length
    /// hardening as [`Reader::str`], minus the UTF-8 requirement.
    pub(crate) fn byte_string(&mut self, what: &str) -> Result<Vec<u8>, ServeError> {
        let len = self.varint(what)? as usize;
        if len > self.bytes.len() - self.pos {
            return Err(self.bad(format!(
                "byte string length {len} overruns payload in {what}"
            )));
        }
        let out = self.bytes[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(out)
    }

    fn encoding(&mut self) -> Result<Encoding, ServeError> {
        match self.u8("encoding")? {
            0 => Ok(Encoding::Json),
            1 => Ok(Encoding::Binary),
            other => Err(self.bad(format!("unknown encoding tag {other}"))),
        }
    }

    pub(crate) fn value(&mut self) -> Result<Value, ServeError> {
        Ok(match self.u8("value tag")? {
            0 => Value::Int(self.zigzag("int value")?),
            1 => Value::Float(self.f64("float value")?),
            2 => Value::Bool(self.u8("bool value")? != 0),
            3 => Value::Str(self.str("string value")?),
            other => return Err(self.bad(format!("unknown value tag {other}"))),
        })
    }

    pub(crate) fn policy(&mut self) -> Result<PolicySpec, ServeError> {
        Ok(match self.u8("policy tag")? {
            1 => PolicySpec::Fixed {
                gamma: self.f64("gamma")?,
            },
            2 => PolicySpec::Farsighted {
                beta: self.f64("beta")?,
            },
            3 => PolicySpec::Hopeful {
                delta: self.f64("delta")?,
            },
            4 => PolicySpec::EpsilonHybrid {
                gamma: self.f64("gamma")?,
                delta: self.f64("delta")?,
                epsilon: self.f64("epsilon")?,
                window: self.opt_varint("window")?.map(|w| w as usize),
            },
            5 => PolicySpec::PsiSupport {
                gamma: self.f64("gamma")?,
                psi: self.f64("psi")?,
            },
            other => return Err(self.bad(format!("unknown policy tag {other}"))),
        })
    }

    pub(crate) fn filter(&mut self, depth: usize) -> Result<FilterSpec, ServeError> {
        if depth > MAX_FILTER_DEPTH {
            return Err(self.bad(format!(
                "filter nesting deeper than {MAX_FILTER_DEPTH} levels"
            )));
        }
        let tag = self.u8("filter tag")?;
        Ok(match tag {
            0 => FilterSpec::True,
            1..=6 => {
                let op = match tag {
                    1 => CmpOp::Eq,
                    2 => CmpOp::Neq,
                    3 => CmpOp::Lt,
                    4 => CmpOp::Le,
                    5 => CmpOp::Gt,
                    _ => CmpOp::Ge,
                };
                FilterSpec::Cmp {
                    column: self.str("filter column")?,
                    op,
                    value: self.value()?,
                }
            }
            7 => {
                let column = self.str("filter column")?;
                let count = self.varint("in-list count")? as usize;
                let mut values = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    values.push(self.value()?);
                }
                FilterSpec::In { column, values }
            }
            8 => FilterSpec::Between {
                column: self.str("filter column")?,
                lo: self.f64("between lo")?,
                hi: self.f64("between hi")?,
            },
            9 => FilterSpec::Not(Box::new(self.filter(depth + 1)?)),
            10 | 11 => {
                let count = self.varint("junction arity")? as usize;
                let mut parts = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    parts.push(self.filter(depth + 1)?);
                }
                if tag == 10 {
                    FilterSpec::And(parts)
                } else {
                    FilterSpec::Or(parts)
                }
            }
            other => return Err(self.bad(format!("unknown filter tag {other}"))),
        })
    }

    fn command(&mut self) -> Result<Command, ServeError> {
        Ok(match self.u8("command tag")? {
            1 => Command::CreateSession {
                dataset: self.str("dataset")?,
                alpha: self.f64("alpha")?,
                policy: self.policy()?,
            },
            2 => Command::AddVisualization {
                session: self.varint("session")?,
                attribute: self.str("attribute")?,
                filter: self.filter(0)?,
            },
            3 => Command::SetPolicy {
                session: self.varint("session")?,
                policy: self.policy()?,
            },
            4 => Command::Gauge {
                session: self.varint("session")?,
            },
            5 => Command::Transcript {
                session: self.varint("session")?,
                format: self.transcript_format()?,
            },
            6 => Command::CloseSession {
                session: self.varint("session")?,
            },
            7 => Command::Stats,
            8 => Command::CreateSessionAs {
                session: self.varint("session")?,
                dataset: self.str("dataset")?,
                alpha: self.f64("alpha")?,
                policy: self.policy()?,
            },
            9 => Command::ExportSession {
                session: self.varint("session")?,
            },
            10 => Command::ImportSession {
                session: self.varint("session")?,
                image: self.byte_string("image")?,
            },
            11 => Command::ListDatasets,
            12 => Command::JoinShard {
                addr: self.str("addr")?,
            },
            13 => Command::LeaveShard {
                addr: self.str("addr")?,
            },
            14 => Command::ReplicateSession {
                session: self.varint("session")?,
                epoch: self.varint("epoch")?,
                image: self.byte_string("image")?,
            },
            15 => Command::PromoteReplica {
                session: self.varint("session")?,
            },
            16 => Command::DropReplica {
                session: self.varint("session")?,
            },
            17 => Command::SnapshotSession {
                session: self.varint("session")?,
            },
            18 => Command::ListSessions,
            19 => Command::Gossip {
                from: self.str("from")?,
                generation: self.varint("generation")?,
                members: self.members()?,
            },
            other => {
                return Err(ServeError {
                    code: ErrorCode::UnknownCommand,
                    message: format!("unknown command tag {other}"),
                })
            }
        })
    }

    fn members(&mut self) -> Result<Vec<crate::proto::MemberInfo>, ServeError> {
        let count = self.varint("member count")? as usize;
        if count > 4096 {
            return Err(self.bad(format!("member count {count} exceeds cap")));
        }
        let mut members = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            members.push(crate::proto::MemberInfo {
                addr: self.str("member addr")?,
                status: crate::proto::MemberStatus::from_u8(self.u8("member status")?)?,
                incarnation: self.varint("member incarnation")?,
            });
        }
        Ok(members)
    }

    fn transcript_format(&mut self) -> Result<TranscriptFormat, ServeError> {
        match self.u8("transcript format")? {
            0 => Ok(TranscriptFormat::Csv),
            1 => Ok(TranscriptFormat::Text),
            other => Err(self.bad(format!("unknown transcript format {other}"))),
        }
    }

    fn response(&mut self) -> Result<Response, ServeError> {
        Ok(match self.u8("response tag")? {
            1 => Response::SessionCreated {
                session: self.varint("session")?,
                wealth: self.f64("wealth")?,
                policy: self.str("policy")?,
            },
            2 => Response::VizAdded {
                session: self.varint("session")?,
                viz: self.varint("viz")?,
                wealth: self.f64("wealth")?,
                hypothesis: match self.u8("hypothesis flag")? {
                    0 => None,
                    1 => Some(HypothesisReport {
                        id: self.varint("hypothesis id")?,
                        test: self.str("test")?,
                        statistic: self.f64("statistic")?,
                        p_value: self.f64("p_value")?,
                        bid: self.f64("bid")?,
                        rejected: self.u8("rejected")? != 0,
                        effect_size: self.f64("effect_size")?,
                        support_fraction: self.f64("support_fraction")?,
                        wealth_after: self.f64("wealth_after")?,
                    }),
                    other => return Err(self.bad(format!("bad hypothesis flag {other}"))),
                },
            },
            3 => Response::PolicySet {
                session: self.varint("session")?,
                policy: self.str("policy")?,
            },
            4 => Response::GaugeText {
                session: self.varint("session")?,
                text: self.str("gauge")?,
            },
            5 => Response::TranscriptText {
                session: self.varint("session")?,
                format: self.transcript_format()?,
                text: self.str("transcript")?,
            },
            6 => Response::SessionClosed {
                session: self.varint("session")?,
                hypotheses: self.varint("hypotheses")?,
                discoveries: self.varint("discoveries")?,
            },
            7 => {
                // Count-prefixed scalar counters: decode the ones this
                // build knows, default the missing (older peer), skip
                // the surplus (newer peer).
                let count = self.varint("stats field count")? as usize;
                if count > 256 {
                    return Err(self.bad(format!("stats field count {count} exceeds cap")));
                }
                let mut fields = [0u64; STATS_SCALAR_FIELDS];
                for slot_index in 0..count {
                    let value = self.varint("stats field")?;
                    if let Some(slot) = fields.get_mut(slot_index) {
                        *slot = value;
                    }
                }
                let mut batch_size_hist = [0u64; 5];
                for slot in &mut batch_size_hist {
                    *slot = self.varint("stats histogram")?;
                }
                Response::Stats(Box::new(StatsSnapshot {
                    sessions_created: fields[0],
                    sessions_closed: fields[1],
                    sessions_evicted: fields[2],
                    sessions_live: fields[3],
                    commands: fields[4],
                    hypotheses_tested: fields[5],
                    discoveries: fields[6],
                    rejected_by_budget: fields[7],
                    errors: fields[8],
                    batches: fields[9],
                    batch_commands: fields[10],
                    overloaded: fields[11],
                    ndjson_requests: fields[12],
                    binary_frames: fields[13],
                    cache_hits: fields[14],
                    cache_misses: fields[15],
                    persisted: fields[16],
                    forwarded: fields[17],
                    migrations: fields[18],
                    shard_errors: fields[19],
                    uptime_seconds: fields[20],
                    latency_p50_us: fields[21],
                    latency_p90_us: fields[22],
                    latency_p99_us: fields[23],
                    latency_p999_us: fields[24],
                    slow_queries: fields[25],
                    replicas_live: fields[26],
                    replication_lag_max_epochs: fields[27],
                    promotions: fields[28],
                    hedged_reads: fields[29],
                    shard_timeouts: fields[30],
                    breaker_opens: fields[31],
                    breaker_shed: fields[32],
                    reactor_connections: fields[33],
                    reactor_wakeups: fields[34],
                    push_frames: fields[35],
                    drr_deferrals: fields[36],
                    batch_size_hist,
                    shards: Vec::new(),
                    sessions: Vec::new(),
                }))
            }
            8 => Response::Error(ServeError {
                code: ErrorCode::parse(&self.str("error code")?),
                message: self.str("error message")?,
            }),
            9 => Response::SessionExported {
                session: self.varint("session")?,
                image: self.byte_string("image")?,
            },
            10 => Response::SessionImported {
                session: self.varint("session")?,
                wealth: self.f64("wealth")?,
            },
            11 => {
                let count = self.varint("dataset count")? as usize;
                let mut datasets = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    datasets.push(crate::proto::DatasetInfo {
                        name: self.str("dataset name")?,
                        rows: self.varint("dataset rows")?,
                        fingerprint: self.u64_le("dataset fingerprint")?,
                    });
                }
                Response::Datasets {
                    datasets,
                    next_session: self.varint("next_session")?,
                }
            }
            12 => Response::Rebalanced {
                addr: self.str("addr")?,
                joined: self.u8("joined")? != 0,
                migrated: self.varint("migrated")?,
            },
            13 => Response::SessionReplicated {
                session: self.varint("session")?,
                epoch: self.varint("epoch")?,
            },
            14 => Response::ReplicaPromoted {
                session: self.varint("session")?,
                epoch: self.varint("epoch")?,
                wealth: self.f64("wealth")?,
            },
            15 => Response::ReplicaDropped {
                session: self.varint("session")?,
            },
            16 => {
                let count = self.varint("session count")? as usize;
                let mut sessions = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    sessions.push(crate::proto::SessionEntry {
                        session: self.varint("session")?,
                        replica: self.u8("replica flag")? != 0,
                        epoch: self.varint("epoch")?,
                    });
                }
                Response::Sessions { sessions }
            }
            17 => Response::GossipView {
                generation: self.varint("generation")?,
                members: self.members()?,
            },
            18 => Response::Push(match self.u8("push event kind")? {
                1 => PushEvent::SessionEvicted {
                    session: self.varint("session")?,
                    reason: self.str("eviction reason")?,
                },
                2 => PushEvent::CacheReset {
                    dataset: self.str("dataset")?,
                },
                other => return Err(self.bad(format!("unknown push event kind {other}"))),
            }),
            other => return Err(self.bad(format!("unknown response tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_envelope(envelope: Envelope) {
        let bytes = encode_envelope(&envelope);
        assert_eq!(decode_envelope(&bytes).unwrap(), envelope);
    }

    fn round_trip_reply(reply: Reply) {
        let bytes = encode_reply(&reply);
        assert_eq!(decode_reply(&bytes).unwrap(), reply);
    }

    #[test]
    fn envelopes_round_trip() {
        round_trip_envelope(Envelope::Hello {
            id: Some(1),
            version: 2,
            encoding: Encoding::Binary,
            push: false,
        });
        round_trip_envelope(Envelope::Hello {
            id: Some(2),
            version: 3,
            encoding: Encoding::Binary,
            push: true,
        });
        round_trip_envelope(Envelope::Single {
            id: None,
            cmd: Command::Stats,
        });
        round_trip_envelope(Envelope::Batch {
            id: Some(9),
            batch: Batch {
                mode: BatchMode::FailFast,
                items: vec![
                    BatchItem {
                        id: Some(0),
                        cmd: Command::CreateSession {
                            dataset: "census".into(),
                            alpha: 0.05,
                            policy: PolicySpec::EpsilonHybrid {
                                gamma: 10.0,
                                delta: 5.0,
                                epsilon: 0.5,
                                window: Some(8),
                            },
                        },
                    },
                    BatchItem {
                        id: None,
                        cmd: Command::AddVisualization {
                            session: u64::MAX,
                            attribute: "edu".into(),
                            filter: FilterSpec::And(vec![
                                FilterSpec::Cmp {
                                    column: "age".into(),
                                    op: CmpOp::Ge,
                                    value: Value::Int(-40),
                                },
                                FilterSpec::Not(Box::new(FilterSpec::In {
                                    column: "race".into(),
                                    values: vec![Value::Str("é😀".into()), Value::Bool(true)],
                                })),
                                FilterSpec::Between {
                                    column: "hours".into(),
                                    lo: 1.5,
                                    hi: 60.0,
                                },
                                FilterSpec::Or(vec![FilterSpec::True]),
                            ]),
                        },
                    },
                    BatchItem {
                        id: Some(u64::MAX),
                        cmd: Command::Transcript {
                            session: 3,
                            format: TranscriptFormat::Text,
                        },
                    },
                ],
            },
        });
    }

    #[test]
    fn replies_round_trip() {
        round_trip_reply(Reply::HelloAck {
            id: None,
            version: 2,
            encoding: Encoding::Binary,
            max_frame: 8 << 20,
            push: false,
        });
        round_trip_reply(Reply::HelloAck {
            id: Some(7),
            version: 3,
            encoding: Encoding::Binary,
            max_frame: 8 << 20,
            push: true,
        });
        round_trip_reply(Reply::Single {
            id: Some(0),
            response: Response::Push(PushEvent::SessionEvicted {
                session: 7,
                reason: "idle".into(),
            }),
        });
        round_trip_reply(Reply::Single {
            id: Some(0),
            response: Response::Push(PushEvent::CacheReset {
                dataset: "census".into(),
            }),
        });
        round_trip_reply(Reply::Batch {
            id: Some(4),
            items: vec![
                (
                    Some(0),
                    Response::VizAdded {
                        session: 1,
                        viz: 2,
                        wealth: 0.0475,
                        hypothesis: Some(HypothesisReport {
                            id: 0,
                            test: "chi-square".into(),
                            statistic: 223.4,
                            p_value: 4.9e-324, // bit-exactness at the subnormal edge
                            bid: 0.004,
                            rejected: true,
                            effect_size: 0.21,
                            support_fraction: 1.0,
                            wealth_after: 0.09,
                        }),
                    },
                ),
                (
                    None,
                    Response::Error(ServeError {
                        code: ErrorCode::Aborted,
                        message: "skipped".into(),
                    }),
                ),
                (
                    Some(2),
                    Response::Stats(Box::new(StatsSnapshot {
                        batches: 3,
                        batch_size_hist: [1, 0, 2, 0, 9],
                        ..Default::default()
                    })),
                ),
            ],
        });
        round_trip_reply(Reply::Single {
            id: Some(7),
            response: Response::GaugeText {
                session: 0,
                text: "┌─ AWARE risk gauge ─┐".into(),
            },
        });
    }

    #[test]
    fn cluster_commands_and_replies_round_trip() {
        round_trip_envelope(Envelope::Single {
            id: Some(1),
            cmd: Command::CreateSessionAs {
                session: 9_000,
                dataset: "census".into(),
                alpha: 0.05,
                policy: PolicySpec::Fixed { gamma: 10.0 },
            },
        });
        round_trip_envelope(Envelope::Single {
            id: None,
            cmd: Command::ExportSession { session: 7 },
        });
        round_trip_envelope(Envelope::Single {
            id: Some(2),
            cmd: Command::ImportSession {
                session: 7,
                image: vec![0x41, 0x57, 0x52, 0x53, 0x02, 0x00, 0xff],
            },
        });
        round_trip_envelope(Envelope::Single {
            id: Some(3),
            cmd: Command::ListDatasets,
        });
        round_trip_envelope(Envelope::Single {
            id: Some(4),
            cmd: Command::JoinShard {
                addr: "127.0.0.1:7879".into(),
            },
        });
        round_trip_envelope(Envelope::Single {
            id: Some(5),
            cmd: Command::LeaveShard {
                addr: "127.0.0.1:7879".into(),
            },
        });
        round_trip_reply(Reply::Single {
            id: Some(1),
            response: Response::SessionExported {
                session: 7,
                image: (0..=255u8).collect(),
            },
        });
        round_trip_reply(Reply::Single {
            id: Some(2),
            response: Response::SessionImported {
                session: 7,
                wealth: 0.0475,
            },
        });
        round_trip_reply(Reply::Single {
            id: Some(3),
            response: Response::Datasets {
                datasets: vec![
                    crate::proto::DatasetInfo {
                        name: "census".into(),
                        rows: 20_000,
                        fingerprint: u64::MAX,
                    },
                    crate::proto::DatasetInfo {
                        name: "retail".into(),
                        rows: 3,
                        fingerprint: 0,
                    },
                ],
                next_session: 42,
            },
        });
        round_trip_reply(Reply::Single {
            id: Some(4),
            response: Response::Rebalanced {
                addr: "127.0.0.1:7879".into(),
                joined: true,
                migrated: 12,
            },
        });
        // The router's stats counters ride the scalar list bit-exactly.
        round_trip_reply(Reply::Single {
            id: Some(5),
            response: Response::Stats(Box::new(StatsSnapshot {
                forwarded: u64::MAX,
                migrations: 3,
                shard_errors: 1,
                uptime_seconds: 86_400,
                latency_p50_us: 120,
                latency_p90_us: 900,
                latency_p99_us: 4_500,
                latency_p999_us: 21_000,
                slow_queries: 2,
                replicas_live: 14,
                replication_lag_max_epochs: 2,
                promotions: 1,
                hedged_reads: 4_096,
                ..Default::default()
            })),
        });
    }

    #[test]
    fn replication_commands_and_replies_round_trip() {
        round_trip_envelope(Envelope::Single {
            id: Some(1),
            cmd: Command::ReplicateSession {
                session: 7,
                epoch: 300,
                image: vec![0x41, 0x57, 0x52, 0x53, 0x02, 0x00, 0xff],
            },
        });
        round_trip_envelope(Envelope::Single {
            id: Some(2),
            cmd: Command::PromoteReplica { session: 7 },
        });
        round_trip_envelope(Envelope::Single {
            id: None,
            cmd: Command::DropReplica { session: 7 },
        });
        round_trip_envelope(Envelope::Single {
            id: Some(3),
            cmd: Command::SnapshotSession { session: 7 },
        });
        round_trip_envelope(Envelope::Single {
            id: Some(4),
            cmd: Command::ListSessions,
        });
        round_trip_envelope(Envelope::Single {
            id: Some(5),
            cmd: Command::Gossip {
                from: "127.0.0.1:7878".into(),
                generation: 12,
                members: vec![
                    crate::proto::MemberInfo {
                        addr: "127.0.0.1:7001".into(),
                        status: crate::proto::MemberStatus::Alive,
                        incarnation: 3,
                    },
                    crate::proto::MemberInfo {
                        addr: "127.0.0.1:7002".into(),
                        status: crate::proto::MemberStatus::Dead,
                        incarnation: u64::MAX,
                    },
                ],
            },
        });
        round_trip_reply(Reply::Single {
            id: Some(1),
            response: Response::SessionReplicated {
                session: 7,
                epoch: 300,
            },
        });
        round_trip_reply(Reply::Single {
            id: Some(2),
            response: Response::ReplicaPromoted {
                session: 7,
                epoch: 300,
                wealth: 0.0375,
            },
        });
        round_trip_reply(Reply::Single {
            id: None,
            response: Response::ReplicaDropped { session: 7 },
        });
        round_trip_reply(Reply::Single {
            id: Some(3),
            response: Response::Sessions {
                sessions: vec![
                    crate::proto::SessionEntry {
                        session: 1,
                        replica: false,
                        epoch: 0,
                    },
                    crate::proto::SessionEntry {
                        session: 9,
                        replica: true,
                        epoch: u64::MAX,
                    },
                ],
            },
        });
        round_trip_reply(Reply::Single {
            id: Some(4),
            response: Response::GossipView {
                generation: 12,
                members: vec![crate::proto::MemberInfo {
                    addr: "127.0.0.1:7001".into(),
                    status: crate::proto::MemberStatus::Suspect,
                    incarnation: 0,
                }],
            },
        });
        // A hostile member status byte is rejected, not mapped.
        let mut w = Writer::new();
        w.u8(TAG_SINGLE_REPLY);
        w.opt_varint(None);
        w.u8(17); // Response::GossipView tag
        w.varint(0); // generation
        w.varint(1); // one member
        w.str("127.0.0.1:1");
        w.u8(7); // no such status
        w.varint(0);
        assert!(decode_reply(&w.buf).is_err());
    }

    #[test]
    fn stats_field_count_prefix_tolerates_older_and_newer_peers() {
        // Hand-build a Single(Stats) reply whose scalar-counter list is
        // shorter (older peer) or longer (newer peer) than this build's
        // STATS_SCALAR_FIELDS: both must decode, defaulting the missing
        // counters and skipping the surplus.
        // 14 = a pre-persistence peer, 20 = a PR-5-era peer (cluster
        // counters but no observability scalars), 26 = a PR-6-era peer
        // (no replication scalars), 30 = a PR-7-era peer (no resilience
        // scalars), 33 = a PR-8-era peer (no reactor scalars), 40 = a
        // future peer with three counters we don't know yet.
        for count in [14usize, 20, 26, 30, 33, 40] {
            let mut w = Writer::new();
            w.u8(TAG_SINGLE_REPLY);
            w.opt_varint(Some(9));
            w.u8(7); // Response::Stats tag
            w.varint(count as u64);
            for i in 0..count {
                w.varint(100 + i as u64);
            }
            for i in 0..5u64 {
                w.varint(i);
            }
            let reply = decode_reply(&w.buf).unwrap();
            let Reply::Single {
                id: Some(9),
                response: Response::Stats(s),
            } = reply
            else {
                panic!("expected Single(Stats), got {reply:?}");
            };
            assert_eq!(s.sessions_created, 100);
            assert_eq!(s.binary_frames, 113);
            // Fields beyond the sender's count default to zero; fields
            // beyond ours are skipped.
            if count < 20 {
                assert_eq!(s.cache_hits, 0);
                assert_eq!(s.cache_misses, 0);
                assert_eq!(s.persisted, 0);
                assert_eq!(s.forwarded, 0);
                assert_eq!(s.shard_errors, 0);
            } else {
                assert_eq!(s.cache_hits, 114);
                assert_eq!(s.cache_misses, 115);
                assert_eq!(s.persisted, 116);
                assert_eq!(s.forwarded, 117);
                assert_eq!(s.migrations, 118);
                assert_eq!(s.shard_errors, 119);
            }
            if count < 26 {
                assert_eq!(s.uptime_seconds, 0);
                assert_eq!(s.latency_p999_us, 0);
                assert_eq!(s.slow_queries, 0);
            } else {
                assert_eq!(s.uptime_seconds, 120);
                assert_eq!(s.latency_p50_us, 121);
                assert_eq!(s.latency_p90_us, 122);
                assert_eq!(s.latency_p99_us, 123);
                assert_eq!(s.latency_p999_us, 124);
                assert_eq!(s.slow_queries, 125);
            }
            if count < 30 {
                assert_eq!(s.replicas_live, 0);
                assert_eq!(s.replication_lag_max_epochs, 0);
                assert_eq!(s.promotions, 0);
                assert_eq!(s.hedged_reads, 0);
            } else {
                assert_eq!(s.replicas_live, 126);
                assert_eq!(s.replication_lag_max_epochs, 127);
                assert_eq!(s.promotions, 128);
                assert_eq!(s.hedged_reads, 129);
            }
            if count < 33 {
                assert_eq!(s.shard_timeouts, 0);
                assert_eq!(s.breaker_opens, 0);
                assert_eq!(s.breaker_shed, 0);
            } else {
                assert_eq!(s.shard_timeouts, 130);
                assert_eq!(s.breaker_opens, 131);
                assert_eq!(s.breaker_shed, 132);
            }
            if count < STATS_SCALAR_FIELDS {
                assert_eq!(s.reactor_connections, 0);
                assert_eq!(s.push_frames, 0);
                assert_eq!(s.drr_deferrals, 0);
            } else {
                assert_eq!(s.reactor_connections, 133);
                assert_eq!(s.reactor_wakeups, 134);
                assert_eq!(s.push_frames, 135);
                assert_eq!(s.drr_deferrals, 136);
            }
            assert_eq!(s.batch_size_hist, [0, 1, 2, 3, 4]);
        }
        // An absurd count is rejected before any allocation.
        let mut w = Writer::new();
        w.u8(TAG_SINGLE_REPLY);
        w.opt_varint(None);
        w.u8(7);
        w.varint(10_000);
        assert!(decode_reply(&w.buf).is_err());
    }

    #[test]
    fn truncations_are_rejected_at_every_prefix() {
        let bytes = encode_envelope(&Envelope::Batch {
            id: Some(3),
            batch: Batch {
                mode: BatchMode::Continue,
                items: vec![BatchItem {
                    id: Some(1),
                    cmd: Command::AddVisualization {
                        session: 300,
                        attribute: "sex".into(),
                        filter: FilterSpec::Between {
                            column: "age".into(),
                            lo: 18.0,
                            hi: 30.0,
                        },
                    },
                }],
            },
        });
        for cut in 0..bytes.len() {
            assert!(
                decode_envelope(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // …and trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_envelope(&padded).is_err());
    }

    #[test]
    fn hostile_payloads_are_rejected() {
        // Unknown envelope tag.
        assert!(decode_envelope(&[0x7f]).is_err());
        // Unknown command tag inside a single.
        assert!(matches!(
            decode_envelope(&[TAG_SINGLE, 0, 99]),
            Err(e) if e.code == ErrorCode::UnknownCommand
        ));
        // Batch claiming more items than the ceiling.
        let mut bomb = vec![TAG_BATCH, 0, 0];
        let mut w = Writer::new();
        w.varint(MAX_BATCH_ITEMS as u64 + 1);
        bomb.extend_from_slice(&w.buf);
        assert!(matches!(
            decode_envelope(&bomb),
            Err(e) if e.code == ErrorCode::InvalidArgument
        ));
        // A deeply nested Not-chain must hit the depth ceiling, not the
        // stack guard: add_visualization with 100k Not tags.
        let mut deep = vec![TAG_SINGLE, 0, 2, 0];
        let mut w = Writer::new();
        w.str("sex");
        deep.extend_from_slice(&w.buf);
        deep.extend(std::iter::repeat_n(9u8, 100_000));
        deep.push(0);
        let err = decode_envelope(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Varint overflow (11 continuation bytes).
        let overflow = [
            TAG_SINGLE, 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        ];
        assert!(decode_envelope(&overflow).is_err());
        // A string claiming a near-u64::MAX length must be a clean
        // error, not an arithmetic overflow: create_session whose
        // dataset length varint is u64::MAX - 1.
        let mut huge = vec![TAG_SINGLE, 0, 1];
        let mut w = Writer::new();
        w.varint(u64::MAX - 1);
        huge.extend_from_slice(&w.buf);
        match decode_envelope(&huge) {
            Err(e) => assert!(e.message.contains("overruns"), "{e}"),
            Ok(v) => panic!("decoded {v:?}"),
        }
    }

    #[test]
    fn readme_hex_example_is_accurate() {
        // The README's worked frame example must match the codec bytes.
        let payload = encode_envelope(&Envelope::Single {
            id: Some(5),
            cmd: Command::Gauge { session: 7 },
        });
        assert_eq!(payload, [0x03, 0x01, 0x05, 0x04, 0x07]);
        let mut framed = Vec::new();
        crate::frame::write_frame(&mut framed, &payload).unwrap();
        assert_eq!(
            framed,
            [0x41, 0x57, 0x52, 0x32, 0x02, 0, 0, 0, 5, 0x03, 0x01, 0x05, 0x04, 0x07]
        );
    }

    #[test]
    fn readme_push_frame_example_is_accurate() {
        // The README's worked server-push example (the "Reactor"
        // chapter) must match the codec bytes: an id-0 single carrying
        // an idle-eviction notice for session 7.
        let payload = encode_reply(&Reply::Single {
            id: Some(0),
            response: Response::Push(PushEvent::SessionEvicted {
                session: 7,
                reason: "idle".into(),
            }),
        });
        assert_eq!(
            payload,
            [0x83, 0x01, 0x00, 0x12, 0x01, 0x07, 0x04, 0x69, 0x64, 0x6c, 0x65]
        );
        let mut framed = Vec::new();
        crate::frame::write_frame(&mut framed, &payload).unwrap();
        assert_eq!(
            framed,
            [
                0x41, 0x57, 0x52, 0x32, 0x02, 0, 0, 0, 11, 0x83, 0x01, 0x00, 0x12, 0x01, 0x07,
                0x04, 0x69, 0x64, 0x6c, 0x65
            ]
        );
    }

    #[test]
    fn singles_are_compact() {
        // The envelope layer should cost bytes, not the payload: a gauge
        // command with an id fits in a handful of bytes.
        let bytes = encode_envelope(&Envelope::Single {
            id: Some(5),
            cmd: Command::Gauge { session: 7 },
        });
        assert!(bytes.len() <= 6, "{} bytes: {bytes:?}", bytes.len());
    }
}
