//! The `serve` binary: AWARE multi-session exploration service over TCP.
//!
//! ```text
//! serve [--addr 127.0.0.1:7878] [--workers N] [--rows 20000]
//!       [--max-sessions N] [--idle-timeout-secs S] [--seed K]
//!       [--max-pending N] [--data-dir DIR] [--snapshot-every SECS]
//! ```
//!
//! With `--data-dir`, sessions are durable: eviction spills to disk,
//! commands addressing spilled sessions restore them lazily, and a
//! restart over the same directory resumes every session.
//! `--snapshot-every SECS` sets the background snapshot cadence
//! (default 30 s); `--snapshot-every 0` makes every mutating command
//! write its snapshot before the response is released.
//!
//! Registers a synthetic census dataset (the workspace's stand-in for
//! UCI Adult) under the name `census` and speaks both protocol
//! surfaces documented in the repository README — v1 NDJSON and v2
//! envelopes (JSON or AWR2 binary frames), auto-detected per
//! connection by first byte. Try v1 with netcat:
//!
//! ```text
//! $ echo '{"id":1,"cmd":"create_session","dataset":"census","alpha":0.05,
//!          "policy":{"kind":"fixed","gamma":10}}' | nc 127.0.0.1 7878
//! ```

use aware_data::census::CensusGenerator;
use aware_serve::service::{Service, ServiceConfig};
use aware_serve::tcp::TcpServer;
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    addr: String,
    workers: Option<usize>,
    rows: usize,
    max_sessions: u64,
    idle_timeout: Duration,
    seed: u64,
    max_pending: usize,
    data_dir: Option<PathBuf>,
    snapshot_every: Duration,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        workers: None,
        rows: 20_000,
        max_sessions: 65_536,
        idle_timeout: Duration::from_secs(15 * 60),
        seed: 2017,
        max_pending: 4096,
        data_dir: None,
        snapshot_every: Duration::from_secs(30),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--rows" => {
                args.rows = value("--rows")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--max-sessions" => {
                args.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?
            }
            "--idle-timeout-secs" => {
                args.idle_timeout = Duration::from_secs(
                    value("--idle-timeout-secs")?
                        .parse()
                        .map_err(|e| format!("--idle-timeout-secs: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--max-pending" => {
                args.max_pending = value("--max-pending")?
                    .parse()
                    .map_err(|e| format!("--max-pending: {e}"))?
            }
            "--data-dir" => args.data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--snapshot-every" => {
                args.snapshot_every = Duration::from_secs(
                    value("--snapshot-every")?
                        .parse()
                        .map_err(|e| format!("--snapshot-every: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!(
                    "serve [--addr HOST:PORT] [--workers N] [--rows N] \
                     [--max-sessions N] [--idle-timeout-secs S] [--seed K] \
                     [--max-pending N] [--data-dir DIR] [--snapshot-every SECS]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };

    let mut config = ServiceConfig {
        max_sessions: args.max_sessions,
        idle_timeout: args.idle_timeout,
        sweep_interval: Some(Duration::from_secs(5)),
        max_pending_per_session: args.max_pending,
        data_dir: args.data_dir.clone(),
        snapshot_every: args.data_dir.as_ref().map(|_| args.snapshot_every),
        ..ServiceConfig::default()
    };
    if let Some(w) = args.workers {
        config.workers = w;
    }

    eprintln!(
        "generating census dataset: {} rows (seed {}) …",
        args.rows, args.seed
    );
    let table = CensusGenerator::new(args.seed).generate(args.rows);

    let service = Service::start(config.clone());
    let handle = service.handle();
    handle.register_table("census", table);

    let server = match TcpServer::bind(&args.addr, handle) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    match (&config.data_dir, config.snapshot_every) {
        (Some(dir), Some(every)) if every.is_zero() => eprintln!(
            "persistence: {} (synchronous — every mutation hits disk)",
            dir.display()
        ),
        (Some(dir), Some(every)) => {
            eprintln!("persistence: {} (snapshot every {every:?})", dir.display())
        }
        _ => {}
    }
    eprintln!(
        "aware-serve listening on {} ({} workers, {} max sessions, idle timeout {:?})",
        server.local_addr(),
        config.workers,
        config.max_sessions,
        config.idle_timeout,
    );
    server.join();
}
