//! The `serve` binary: AWARE multi-session exploration service over TCP.
//!
//! ```text
//! serve [--addr 127.0.0.1:7878] [--workers N] [--rows 20000]
//!       [--max-sessions N] [--idle-timeout-secs S] [--seed K]
//!       [--max-pending N] [--data-dir DIR] [--snapshot-every SECS]
//!       [--log-level LEVEL] [--log-json] [--slow-ms MS]
//!       [--metrics-addr HOST:PORT] [--reactor]
//! ```
//!
//! `--reactor` swaps the thread-per-connection front end for the
//! epoll-based event loop in `aware-reactor`: thousands of mostly-idle
//! connections on a handful of threads, and server-push frames
//! (eviction notices, cache resets) for clients that opt in via the
//! hello `push` capability. The wire protocol is byte-identical
//! either way.
//!
//! Observability: `--log-level` (debug|info|warn|error, default info)
//! and `--log-json` control the structured stderr logger; `--slow-ms`
//! emits a `slow_query` record (with trace id, stage timings, and
//! cache deltas) for every command at or past the threshold;
//! `--metrics-addr` serves Prometheus text exposition over HTTP GET.
//!
//! With `--data-dir`, sessions are durable: eviction spills to disk,
//! commands addressing spilled sessions restore them lazily, and a
//! restart over the same directory resumes every session.
//! `--snapshot-every SECS` sets the background snapshot cadence
//! (default 30 s); `--snapshot-every 0` makes every mutating command
//! write its snapshot before the response is released.
//!
//! Registers a synthetic census dataset (the workspace's stand-in for
//! UCI Adult) under the name `census` and speaks both protocol
//! surfaces documented in the repository README — v1 NDJSON and v2
//! envelopes (JSON or AWR2 binary frames), auto-detected per
//! connection by first byte. Try v1 with netcat:
//!
//! ```text
//! $ echo '{"id":1,"cmd":"create_session","dataset":"census","alpha":0.05,
//!          "policy":{"kind":"fixed","gamma":10}}' | nc 127.0.0.1 7878
//! ```

use aware_data::census::CensusGenerator;
use aware_serve::reactor_front::ServerFront;
use aware_serve::service::{Service, ServiceConfig};
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    addr: String,
    reactor: bool,
    workers: Option<usize>,
    rows: usize,
    max_sessions: u64,
    idle_timeout: Duration,
    seed: u64,
    max_pending: usize,
    data_dir: Option<PathBuf>,
    snapshot_every: Duration,
    log_level: aware_obs::log::Level,
    log_json: bool,
    slow_ms: Option<u64>,
    metrics_addr: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        reactor: false,
        workers: None,
        rows: 20_000,
        max_sessions: 65_536,
        idle_timeout: Duration::from_secs(15 * 60),
        seed: 2017,
        max_pending: 4096,
        data_dir: None,
        snapshot_every: Duration::from_secs(30),
        log_level: aware_obs::log::Level::Info,
        log_json: false,
        slow_ms: None,
        metrics_addr: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--rows" => {
                args.rows = value("--rows")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--max-sessions" => {
                args.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?
            }
            "--idle-timeout-secs" => {
                args.idle_timeout = Duration::from_secs(
                    value("--idle-timeout-secs")?
                        .parse()
                        .map_err(|e| format!("--idle-timeout-secs: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--max-pending" => {
                args.max_pending = value("--max-pending")?
                    .parse()
                    .map_err(|e| format!("--max-pending: {e}"))?
            }
            "--data-dir" => args.data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--snapshot-every" => {
                args.snapshot_every = Duration::from_secs(
                    value("--snapshot-every")?
                        .parse()
                        .map_err(|e| format!("--snapshot-every: {e}"))?,
                )
            }
            "--log-level" => {
                let raw = value("--log-level")?;
                args.log_level = aware_obs::log::Level::parse(&raw)
                    .ok_or_else(|| format!("--log-level: unknown level '{raw}'"))?
            }
            "--log-json" => args.log_json = true,
            "--slow-ms" => {
                args.slow_ms = Some(
                    value("--slow-ms")?
                        .parse()
                        .map_err(|e| format!("--slow-ms: {e}"))?,
                )
            }
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")?),
            "--reactor" => args.reactor = true,
            "--help" | "-h" => {
                println!(
                    "serve [--addr HOST:PORT] [--workers N] [--rows N] \
                     [--max-sessions N] [--idle-timeout-secs S] [--seed K] \
                     [--max-pending N] [--data-dir DIR] [--snapshot-every SECS] \
                     [--log-level debug|info|warn|error] [--log-json] \
                     [--slow-ms MS] [--metrics-addr HOST:PORT] [--reactor]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(2);
        }
    };

    aware_obs::log::init(args.log_level, args.log_json);

    let mut config = ServiceConfig {
        max_sessions: args.max_sessions,
        idle_timeout: args.idle_timeout,
        sweep_interval: Some(Duration::from_secs(5)),
        max_pending_per_session: args.max_pending,
        data_dir: args.data_dir.clone(),
        snapshot_every: args.data_dir.as_ref().map(|_| args.snapshot_every),
        slow_ms: args.slow_ms,
        ..ServiceConfig::default()
    };
    if let Some(w) = args.workers {
        config.workers = w;
    }

    eprintln!(
        "generating census dataset: {} rows (seed {}) …",
        args.rows, args.seed
    );
    let table = CensusGenerator::new(args.seed).generate(args.rows);

    let service = Service::start(config.clone());
    let handle = service.handle();
    handle.register_table("census", table);

    let server = match ServerFront::bind(&args.addr, handle.clone(), args.reactor) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    // Held until after join(): dropping it would stop the endpoint.
    let _metrics = args.metrics_addr.as_ref().map(|addr| {
        let h = handle.clone();
        match aware_obs::expose::MetricsServer::bind(addr, move || h.metrics_text()) {
            Ok(m) => {
                eprintln!("metrics exposition on http://{}/metrics", m.local_addr());
                m
            }
            Err(e) => {
                eprintln!("serve: cannot bind metrics addr {addr}: {e}");
                std::process::exit(1);
            }
        }
    });
    match (&config.data_dir, config.snapshot_every) {
        (Some(dir), Some(every)) if every.is_zero() => eprintln!(
            "persistence: {} (synchronous — every mutation hits disk)",
            dir.display()
        ),
        (Some(dir), Some(every)) => {
            eprintln!("persistence: {} (snapshot every {every:?})", dir.display())
        }
        _ => {}
    }
    eprintln!(
        "aware-serve listening on {} ({} workers, {} max sessions, idle timeout {:?}, {} front end)",
        server.local_addr(),
        config.workers,
        config.max_sessions,
        config.idle_timeout,
        if args.reactor {
            "reactor"
        } else {
            "thread-per-connection"
        },
    );

    aware_obs::signal::install_term_handler();
    while !aware_obs::signal::term_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }

    // Graceful drain: stop accepting first (dropping the server joins
    // the accept loop), then let Service::shutdown finish in-flight
    // work and spill every dirty session to disk.
    let sessions_live = match handle.call(aware_serve::proto::Command::Stats) {
        aware_serve::proto::Response::Stats(s) => s.sessions_live,
        _ => 0,
    };
    let started = std::time::Instant::now();
    drop(server);
    service.shutdown();
    aware_obs::logline!(
        aware_obs::log::Level::Info,
        "drain_complete",
        role = "serve",
        sessions_live = sessions_live,
        drain_ms = started.elapsed().as_millis()
    );
}
