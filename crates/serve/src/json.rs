//! Hand-rolled JSON for the wire protocol — the serving layer is
//! deliberately std-only, so this module provides the minimal value
//! model, writer, and recursive-descent parser the NDJSON protocol
//! needs. Object key order is preserved on both paths, which keeps
//! encoded responses byte-deterministic (the concurrency smoke test
//! depends on that).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (small N — linear lookup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric member interpreted as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    v.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the protocol encodes them as null.
        return f.write_str("null");
    }
    if n == 0.0 {
        // Both zeros are integral, but `n as i64` erases the sign bit:
        // -0.0 must come back as -0.0 (a flip-factor of -0.0 vs 0.0 is
        // a different IEEE-754 value, and the v2 binary codec preserves
        // it — the JSON surface must not be the lossy one).
        return f.write_str(if n.is_sign_negative() { "-0.0" } else { "0" });
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else if !(1e-5..1e17).contains(&n.abs()) {
        // Extreme magnitudes (tiny p-values!) use exponent notation —
        // valid JSON, and spares clients 300-digit decimal expansions.
        write!(f, "{n:e}")
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        write!(f, "{n}")
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    // Write unescaped spans in bulk; only the rare escape goes through
    // the formatter one piece at a time.
    let mut start = 0;
    for (i, c) in s.char_indices() {
        let escape: Option<&str> = match c {
            '"' => Some("\\\""),
            '\\' => Some("\\\\"),
            '\n' => Some("\\n"),
            '\r' => Some("\\r"),
            '\t' => Some("\\t"),
            c if (c as u32) < 0x20 => None, // \uXXXX, formatted below
            _ => continue,
        };
        f.write_str(&s[start..i])?;
        match escape {
            Some(text) => f.write_str(text)?,
            None => write!(f, "\\u{:04x}", c as u32)?,
        }
        start = i + c.len_utf8();
    }
    f.write_str(&s[start..])?;
    f.write_str("\"")
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting ceiling: recursion in `value()` is bounded so a hostile
/// request (one line of 100k '[') cannot overflow the stack and abort
/// the whole server.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                            // hex4 advanced past the digits; compensate the
                            // unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the span up to the next quote or escape.
                    // The input is a &str (valid UTF-8 by construction)
                    // and both delimiters are ASCII, so the span never
                    // splits a multi-byte character — and the copy stays
                    // O(span), not O(remaining input) per character,
                    // which matters for transcript-sized strings.
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let span = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(span);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.25",
            "1e-06",
            "\"hello\"",
            "\"esc \\\" \\\\ \\n\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"x\"}}",
        ] {
            let v = Json::parse(text).unwrap();
            let re = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, re, "{text}");
        }
    }

    #[test]
    fn encoding_is_deterministic_and_ordered() {
        let v = Json::obj(vec![("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.to_string(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Json::Num(10.0).to_string(), "10");
        assert_eq!(Json::Num(0.05).to_string(), "0.05");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn extreme_magnitudes_use_exponent_notation() {
        assert_eq!(Json::Num(6.697e-38).to_string(), "6.697e-38");
        assert_eq!(Json::Num(-1.5e200).to_string(), "-1.5e200");
        // …and still parse back to the same bits.
        for v in [6.697154985608185e-38, 1e-300, -2.5e19, 4.9e-324] {
            let text = Json::Num(v).to_string();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(v), "{text}");
        }
    }

    #[test]
    fn number_writer_round_trips_bit_exactly_at_the_edges() {
        // The writer's three regimes each have edges that once bit (the
        // integral-float path in PR 2, the -0.0 sign in this audit). A
        // finite f64 must survive encode→parse with its exact bits.
        let cases = [
            0.0,
            -0.0,                    // sign bit must survive the integral path
            5e-324,                  // smallest positive subnormal
            -5e-324,                 // …and its negation
            2.225073858507201e-308,  // largest subnormal
            2.2250738585072014e-308, // smallest positive normal
            1.0e-5,                  // decimal/exponent boundary, decimal side
            0.9999999999999999e-5,   // …exponent side
            9.0e15 - 1.0,            // last integral value written as i64
            9.0e15,                  // first integral value that is not
            9007199254740993.0,      // 2^53 + 1 rounds to 2^53: still exact bits
            1.0e17,                  // integral, exponent regime
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            -1.7976931348623155e308, // one ULP inside MIN
            0.1 + 0.2,               // the classic shortest-repr case
        ];
        for v in cases {
            let text = Json::Num(v).to_string();
            let parsed = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(
                parsed.to_bits(),
                v.to_bits(),
                "{v:?} -> {text} -> {parsed:?}"
            );
        }
        // Spot-check the spellings the regimes are expected to pick.
        assert_eq!(Json::Num(-0.0).to_string(), "-0.0");
        assert_eq!(Json::Num(0.0).to_string(), "0");
        assert_eq!(Json::Num(5e-324).to_string(), "5e-324");
        assert_eq!(
            Json::Num(8999999999999999.0).to_string(),
            "8999999999999999"
        );
    }

    #[test]
    fn number_writer_round_trips_bit_exactly_for_swept_bit_patterns() {
        // A deterministic sweep over structured bit patterns: every
        // exponent with a handful of mantissas, both signs. Skips only
        // non-finite values (encoded as null by design).
        for exp in 0..=0x7fe_u64 {
            for mantissa in [0, 1, 0x8000000000000, 0xfffffffffffff_u64] {
                for sign in [0u64, 1 << 63] {
                    let bits = sign | (exp << 52) | mantissa;
                    let v = f64::from_bits(bits);
                    if !v.is_finite() {
                        continue;
                    }
                    let text = Json::Num(v).to_string();
                    let parsed = Json::parse(&text).unwrap().as_f64().unwrap();
                    assert_eq!(parsed.to_bits(), bits, "{v:?} -> {text}");
                }
            }
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
        // Control characters are re-escaped on output.
        assert_eq!(Json::Str("\u{1}".into()).to_string(), "\"\\u0001\"");
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"n\":3,\"s\":\"x\",\"b\":true,\"a\":[1],\"z\":null}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("z").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Within the ceiling: fine.
        let ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        // A hostile one-line bomb is rejected, not a stack overflow.
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let objs = "{\"a\":".repeat(100_000);
        assert!(Json::parse(&objs).is_err());
        // Mixed nesting counts both container kinds.
        let mixed = format!("{}1{}", "[{\"k\":".repeat(80), "}]".repeat(80));
        assert!(Json::parse(&mixed).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\"}", "nul", "1 2", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }
}
