//! Service-level errors and their wire codes.

use aware_core::AwareError;
use std::fmt;

/// Machine-readable error category carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON or not a request object.
    BadRequest,
    /// The `cmd` discriminator names no known command.
    UnknownCommand,
    /// A field was missing, of the wrong type, or out of range.
    InvalidArgument,
    /// The referenced dataset is not registered with the server.
    UnknownDataset,
    /// The referenced session does not exist (never created, closed, or
    /// evicted).
    UnknownSession,
    /// The session's α-wealth cannot fund the requested test; the
    /// session survives, the hypothesis was recorded untested.
    WealthExhausted,
    /// The session rejected the operation (unknown attribute, untestable
    /// override target, …).
    SessionError,
    /// The command was skipped: an earlier command of the same session
    /// stream failed inside a fail-fast batch.
    Aborted,
    /// The server refused the work: session capacity exhausted and
    /// nothing evictable, or the session's pending-command cap is full.
    Overloaded,
    /// The session was spilled to disk but every on-disk snapshot
    /// generation failed validation; the session cannot be restored.
    /// Deliberately distinct from `unknown_session`: a client must be
    /// able to tell "your wealth ledger is gone" from "your wealth
    /// ledger is unreadable" — the latter must never be silently
    /// answered with a fresh budget.
    CorruptSnapshot,
    /// The shard that owns the addressed session is unreachable (a
    /// cluster router's answer for a dead backend). Deliberately
    /// distinct from `unknown_session`: the session and its wealth
    /// ledger still exist on the dead shard and will be served again
    /// when it returns — a router must never answer a dead shard with
    /// a fresh budget.
    Unavailable,
    /// The service is shutting down.
    Shutdown,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownCommand => "unknown_command",
            ErrorCode::InvalidArgument => "invalid_argument",
            ErrorCode::UnknownDataset => "unknown_dataset",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::WealthExhausted => "wealth_exhausted",
            ErrorCode::SessionError => "session_error",
            ErrorCode::Aborted => "aborted",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::CorruptSnapshot => "corrupt_snapshot",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Shutdown => "shutdown",
        }
    }

    /// Inverse of [`Self::as_str`]; unknown strings map to
    /// [`ErrorCode::SessionError`] so clients never fail on a new code.
    pub fn parse(s: &str) -> ErrorCode {
        match s {
            "bad_request" => ErrorCode::BadRequest,
            "unknown_command" => ErrorCode::UnknownCommand,
            "invalid_argument" => ErrorCode::InvalidArgument,
            "unknown_dataset" => ErrorCode::UnknownDataset,
            "unknown_session" => ErrorCode::UnknownSession,
            "wealth_exhausted" => ErrorCode::WealthExhausted,
            "aborted" => ErrorCode::Aborted,
            "overloaded" => ErrorCode::Overloaded,
            "corrupt_snapshot" => ErrorCode::CorruptSnapshot,
            "unavailable" => ErrorCode::Unavailable,
            "shutdown" => ErrorCode::Shutdown,
            _ => ErrorCode::SessionError,
        }
    }
}

/// An error response payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    pub code: ErrorCode,
    pub message: String,
}

impl ServeError {
    /// Shorthand for [`ErrorCode::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> ServeError {
        ServeError {
            code: ErrorCode::InvalidArgument,
            message: message.into(),
        }
    }

    /// Shorthand for [`ErrorCode::UnknownSession`].
    pub fn unknown_session(id: u64) -> ServeError {
        ServeError {
            code: ErrorCode::UnknownSession,
            message: format!("no session {id} (never created, closed, or evicted)"),
        }
    }

    /// Maps a session-layer failure onto a wire code.
    pub fn from_session(e: AwareError) -> ServeError {
        if e.is_wealth_exhausted() {
            ServeError {
                code: ErrorCode::WealthExhausted,
                message: e.to_string(),
            }
        } else {
            ServeError {
                code: ErrorCode::SessionError,
                message: e.to_string(),
            }
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownCommand,
            ErrorCode::InvalidArgument,
            ErrorCode::UnknownDataset,
            ErrorCode::UnknownSession,
            ErrorCode::WealthExhausted,
            ErrorCode::SessionError,
            ErrorCode::Aborted,
            ErrorCode::Overloaded,
            ErrorCode::CorruptSnapshot,
            ErrorCode::Unavailable,
            ErrorCode::Shutdown,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), code);
        }
        assert_eq!(ErrorCode::parse("brand_new_code"), ErrorCode::SessionError);
    }
}
