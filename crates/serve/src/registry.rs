//! The sharded session registry.
//!
//! Sessions live behind `N` shards of `RwLock<HashMap<SessionId,
//! Arc<SessionEntry>>>`, so lookups from many worker threads contend
//! only on the shard they hash to, and an eviction sweep never stops
//! the world. The entry's `Mutex<Session>` serializes *statistical*
//! state per session — the α-investing guarantee is sequential, so a
//! session's decisions must happen one at a time even though the map
//! itself is freely concurrent.
//!
//! Recency is tracked twice per entry, because its two consumers need
//! different properties: the **idle sweep** compares wall-clock
//! milliseconds since the registry epoch (a timeout is a duration), while
//! **LRU admission eviction** orders by a registry-global monotone touch
//! sequence — milliseconds are too coarse there, since under load many
//! touches share one millisecond and a "touched after the scan" re-check
//! on ms stamps could still evict an actively-used session.
//!
//! Admission eviction is *sampled* past [`LRU_EXACT_THRESHOLD`] live
//! sessions (Redis-style: draw a uniformly random shard, evict its
//! oldest entry), so a full registry pays O(live/shards) under one
//! lock per create instead of an O(live) all-shard scan; the exact
//! scan survives for small registries and as the fallback when drawn
//! shards are empty. Safety never depends on the choice being exact —
//! any candidate is re-checked for freshness under the shard write
//! lock before removal.

use crate::proto::{BoxedPolicy, PolicySpec, SessionId};
use aware_core::session::Session;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// A session as the service stores it: dynamic policy, shared table.
pub type ServedSession = Session<BoxedPolicy>;

/// Persistence bookkeeping the session itself cannot carry: which
/// dataset it explores and which wire-level policy spec is active (the
/// boxed policy object is opaque — the spec is what a snapshot stores
/// and a restore rebuilds from).
#[derive(Debug, Clone)]
pub struct SessionMeta {
    /// Name of the registered dataset the session was opened on.
    pub dataset: String,
    /// Content fingerprint of the dataset's table at session-open (or
    /// restore/import) time — stamped into every snapshot image so a
    /// restore on another process can prove it holds the same table.
    pub fingerprint: u64,
    /// The policy spec currently in force.
    pub policy: PolicySpec,
    /// Ledger index at which `policy` was installed (0 = at creation);
    /// restore replays `observe` from here.
    pub policy_since: u64,
}

/// One registered session plus its bookkeeping.
pub struct SessionEntry {
    /// The session's id (key in its shard).
    pub id: SessionId,
    /// The serialized session state. Workers lock this for the duration
    /// of one command.
    pub session: Mutex<ServedSession>,
    /// Persistence metadata (dataset name, active policy spec).
    pub meta: Mutex<SessionMeta>,
    /// Set by state-mutating commands, cleared when a snapshot of the
    /// session reaches disk — the periodic snapshotter skips clean
    /// sessions.
    dirty: AtomicBool,
    /// Milliseconds since the registry epoch at last use (idle sweeps).
    last_used_ms: AtomicU64,
    /// Registry-global touch sequence at last use (LRU ordering).
    touch_seq: AtomicU64,
}

impl SessionEntry {
    /// Recency in epoch-milliseconds.
    pub fn last_used_ms(&self) -> u64 {
        self.last_used_ms.load(Ordering::Relaxed)
    }

    /// Recency in the registry's monotone touch sequence.
    pub fn touch_seq(&self) -> u64 {
        self.touch_seq.load(Ordering::Relaxed)
    }

    /// Marks the session as changed since its last durable snapshot.
    pub fn mark_dirty(&self) {
        self.dirty.store(true, Ordering::Release);
    }

    /// True when the session changed since its last durable snapshot.
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }

    /// Clears the dirty flag (call with the session mutex held, after
    /// capturing the snapshot that will be written).
    pub fn clear_dirty(&self) {
        self.dirty.store(false, Ordering::Release);
    }
}

/// Live-session count at or below which [`Registry::lru_candidate`]
/// scans exactly instead of sampling — an exact scan over a few dozen
/// entries is cheaper than worrying about sample coverage.
pub const LRU_EXACT_THRESHOLD: u64 = 64;

/// Sharded id → session map.
pub struct Registry {
    shards: Vec<RwLock<HashMap<SessionId, Arc<SessionEntry>>>>,
    epoch: Instant,
    seq: AtomicU64,
    live: AtomicU64,
    /// xorshift64 state for sampled eviction.
    rng: AtomicU64,
}

impl Registry {
    /// Creates a registry with `shards` shards (rounded up to 1).
    pub fn new(shards: usize) -> Registry {
        let shards = shards.max(1);
        Registry {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            live: AtomicU64::new(0),
            rng: AtomicU64::new(0x9E3779B97F4A7C15),
        }
    }

    fn shard(&self, id: SessionId) -> &RwLock<HashMap<SessionId, Arc<SessionEntry>>> {
        // Ids are sequential; a multiplicative hash spreads neighbours
        // across shards so one busy tenant block doesn't pile onto one lock.
        let h = id.wrapping_mul(0x9E3779B97F4A7C15) >> 32;
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Milliseconds since the registry was created.
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn touch(&self, entry: &SessionEntry) {
        entry.last_used_ms.store(self.now_ms(), Ordering::Relaxed);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        entry.touch_seq.store(seq, Ordering::Relaxed);
    }

    /// Number of live sessions.
    pub fn len(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// True when no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a fresh (or freshly restored) session under `id`,
    /// stamping it used-now.
    pub fn insert(
        &self,
        id: SessionId,
        session: ServedSession,
        meta: SessionMeta,
    ) -> Arc<SessionEntry> {
        let entry = Arc::new(SessionEntry {
            id,
            session: Mutex::new(session),
            meta: Mutex::new(meta),
            dirty: AtomicBool::new(false),
            last_used_ms: AtomicU64::new(0),
            touch_seq: AtomicU64::new(0),
        });
        self.touch(&entry);
        let prev = self.shard(id).write().unwrap().insert(id, entry.clone());
        debug_assert!(prev.is_none(), "session ids are unique by construction");
        self.live.fetch_add(1, Ordering::Relaxed);
        entry
    }

    /// Inserts a session under a caller-chosen id, refusing (without
    /// effect) when the id is already live — the import/preassigned-
    /// create path, where the id arrives from outside the shard's own
    /// allocator. The check and the insert happen under one shard
    /// write lock, so two racing imports of the same id cannot both
    /// win.
    pub fn try_insert(
        &self,
        id: SessionId,
        session: ServedSession,
        meta: SessionMeta,
    ) -> Option<Arc<SessionEntry>> {
        let entry = Arc::new(SessionEntry {
            id,
            session: Mutex::new(session),
            meta: Mutex::new(meta),
            dirty: AtomicBool::new(false),
            last_used_ms: AtomicU64::new(0),
            touch_seq: AtomicU64::new(0),
        });
        self.touch(&entry);
        {
            let mut shard = self.shard(id).write().unwrap();
            if shard.contains_key(&id) {
                return None;
            }
            shard.insert(id, entry.clone());
        }
        self.live.fetch_add(1, Ordering::Relaxed);
        Some(entry)
    }

    /// Looks up a session and bumps its recency.
    pub fn get(&self, id: SessionId) -> Option<Arc<SessionEntry>> {
        let entry = self.shard(id).read().unwrap().get(&id).cloned()?;
        self.touch(&entry);
        Some(entry)
    }

    /// Looks up a session *without* bumping its recency — the spill
    /// paths use this so snapshotting a victim doesn't make it look
    /// freshly used and dodge its own eviction.
    pub fn peek(&self, id: SessionId) -> Option<Arc<SessionEntry>> {
        self.shard(id).read().unwrap().get(&id).cloned()
    }

    /// Every live entry (the periodic snapshotter walks these).
    pub fn entries(&self) -> Vec<Arc<SessionEntry>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().unwrap().values().cloned());
        }
        out
    }

    /// Unlinks a session; in-flight holders of the `Arc` finish their
    /// command, after which the state drops.
    pub fn remove(&self, id: SessionId) -> Option<Arc<SessionEntry>> {
        let removed = self.shard(id).write().unwrap().remove(&id);
        if removed.is_some() {
            self.live.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Removes `id` only if it is still idle past `cutoff_ms`, checked
    /// under the shard's write lock so a just-touched session survives.
    pub fn remove_if_idle(&self, id: SessionId, cutoff_ms: u64) -> bool {
        let mut shard = self.shard(id).write().unwrap();
        match shard.get(&id) {
            Some(entry) if entry.last_used_ms() < cutoff_ms => {
                shard.remove(&id);
                self.live.fetch_sub(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Ids of sessions idle since before `cutoff_ms` (epoch-relative).
    pub fn idle_ids(&self, cutoff_ms: u64) -> Vec<SessionId> {
        let mut ids = Vec::new();
        for shard in &self.shards {
            for entry in shard.read().unwrap().values() {
                if entry.last_used_ms() < cutoff_ms {
                    ids.push(entry.id);
                }
            }
        }
        ids
    }

    /// An eviction candidate with the touch sequence observed during
    /// the scan — used when the registry is full. The sequence is
    /// globally monotone, so "touched after the scan" is exact (ties on
    /// ms timestamps cannot hide a touch). Pass the observed sequence
    /// to [`Self::remove_if_unused_since`].
    ///
    /// Small registries (≤ [`LRU_EXACT_THRESHOLD`] live sessions) get
    /// the exact least-recently-used session. Beyond that the cost of
    /// an exact scan — O(live) across every shard lock, paid on
    /// *every* create once the registry sits at capacity — buys
    /// nothing a Redis-style sample does not: one random shard is
    /// scanned and its oldest entry is the candidate, an O(live/shards)
    /// single-lock approximation whose victims sit in the oldest tail
    /// of the recency distribution with overwhelming probability.
    /// Either way the caller re-checks recency under the shard write
    /// lock before removal, so an actively-used session never falls to
    /// eviction.
    pub fn lru_candidate(&self) -> Option<(SessionId, u64)> {
        if self.len() <= LRU_EXACT_THRESHOLD {
            self.lru_candidate_exact()
        } else {
            self.lru_candidate_sampled()
        }
    }

    /// Exact full scan over every shard.
    fn lru_candidate_exact(&self) -> Option<(SessionId, u64)> {
        let mut best: Option<(u64, SessionId)> = None;
        for shard in &self.shards {
            for entry in shard.read().unwrap().values() {
                let key = (entry.touch_seq(), entry.id);
                if best.is_none() || key < best.unwrap() {
                    best = Some(key);
                }
            }
        }
        best.map(|(seq, id)| (id, seq))
    }

    /// Sampled scan: draw one random shard and evict-candidate its
    /// oldest entry — the sample is the shard's whole population, so
    /// the candidate is the true LRU of a uniformly random 1/shards
    /// slice of the registry. One pass, one read lock, O(live/shards):
    /// `HashMap` offers no O(1) random access, so any K-point sample
    /// would pay the same iterator walk for a strictly worse candidate.
    /// Uniformity across shards is load-bearing, not cosmetic: a fixed
    /// probe window could wedge admission if exactly those entries were
    /// hot, whereas here a failed re-check just re-draws a shard. Falls
    /// back to the exact scan if the drawn shards are empty — possible
    /// only under heavy concurrent removal. (True O(1) sampling needs
    /// an auxiliary dense index; see the ROADMAP backpressure notes.)
    fn lru_candidate_sampled(&self) -> Option<(SessionId, u64)> {
        for _ in 0..4 {
            let r = self.next_rand();
            let shard = &self.shards[(r as usize >> 8) % self.shards.len()];
            let shard = shard.read().unwrap();
            let mut best: Option<(u64, SessionId)> = None;
            for entry in shard.values() {
                let key = (entry.touch_seq(), entry.id);
                if best.is_none() || key < best.unwrap() {
                    best = Some(key);
                }
            }
            if let Some((seq, id)) = best {
                return Some((id, seq));
            }
        }
        self.lru_candidate_exact()
    }

    /// Next value of the sampling generator (xorshift64; racy updates
    /// under contention merely repeat a draw, which is harmless).
    fn next_rand(&self) -> u64 {
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        x
    }

    /// Removes `id` only if its touch sequence has not advanced past
    /// `observed_seq` since the caller's scan, checked under the shard's
    /// write lock — an actively-used session never falls to LRU eviction.
    pub fn remove_if_unused_since(&self, id: SessionId, observed_seq: u64) -> bool {
        let mut shard = self.shard(id).write().unwrap();
        match shard.get(&id) {
            Some(entry) if entry.touch_seq() <= observed_seq => {
                shard.remove(&id);
                self.live.fetch_sub(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::PolicySpec;
    use aware_data::census::CensusGenerator;

    fn session(table: &Arc<aware_data::table::Table>) -> ServedSession {
        Session::shared(
            table.clone(),
            0.05,
            PolicySpec::Fixed { gamma: 10.0 }.build().unwrap(),
        )
        .unwrap()
    }

    fn meta() -> SessionMeta {
        SessionMeta {
            dataset: "census".into(),
            fingerprint: 0,
            policy: PolicySpec::Fixed { gamma: 10.0 },
            policy_since: 0,
        }
    }

    #[test]
    fn try_insert_refuses_a_live_id() {
        let table = Arc::new(CensusGenerator::new(9).generate(100));
        let reg = Registry::new(4);
        assert!(reg.try_insert(7, session(&table), meta()).is_some());
        assert!(reg.try_insert(7, session(&table), meta()).is_none());
        assert_eq!(reg.len(), 1);
        reg.remove(7);
        assert!(reg.try_insert(7, session(&table), meta()).is_some());
    }

    #[test]
    fn insert_get_remove_lifecycle() {
        let table = Arc::new(CensusGenerator::new(1).generate(200));
        let reg = Registry::new(8);
        assert!(reg.is_empty());
        reg.insert(0, session(&table), meta());
        reg.insert(1, session(&table), meta());
        assert_eq!(reg.len(), 2);
        assert!(reg.get(0).is_some());
        assert!(reg.get(99).is_none());
        assert!(reg.remove(0).is_some());
        assert!(reg.remove(0).is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn sessions_share_one_table() {
        let table = Arc::new(CensusGenerator::new(2).generate(100));
        let reg = Registry::new(4);
        for id in 0..50 {
            reg.insert(id, session(&table), meta());
        }
        // 50 sessions + this handle: 51 strong refs, one table.
        assert_eq!(Arc::strong_count(&table), 51);
    }

    #[test]
    fn touch_sequence_orders_lru_exactly() {
        let table = Arc::new(CensusGenerator::new(3).generate(100));
        let reg = Registry::new(4);
        for id in 0..4 {
            reg.insert(id, session(&table), meta());
        }
        // Insertion order is the initial LRU order, even though all four
        // inserts very likely landed in the same millisecond.
        let (victim, _) = reg.lru_candidate().unwrap();
        assert_eq!(victim, 0);
        // Touching 0 makes 1 the LRU.
        reg.get(0).unwrap();
        let (victim, _) = reg.lru_candidate().unwrap();
        assert_eq!(victim, 1);
        // Touching everything in reverse order makes 3 the LRU.
        for id in (0..4u64).rev() {
            reg.get(id).unwrap();
        }
        let (victim, _) = reg.lru_candidate().unwrap();
        assert_eq!(victim, 3);
    }

    #[test]
    fn idle_scan_uses_wall_clock_ms() {
        let table = Arc::new(CensusGenerator::new(4).generate(100));
        let reg = Registry::new(4);
        for id in 0..3 {
            reg.insert(id, session(&table), meta());
        }
        // Deterministic recency without sleeping: stamp ms by hand.
        for id in 0..3u64 {
            reg.get(id)
                .unwrap()
                .last_used_ms
                .store(10 * id, Ordering::Relaxed);
        }
        let mut idle = reg.idle_ids(15);
        idle.sort_unstable();
        assert_eq!(idle, vec![0, 1]);
        assert!(reg.remove_if_idle(0, 15));
        assert!(!reg.remove_if_idle(2, 15), "still fresh");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn sampled_eviction_avoids_the_hot_tail_and_respects_the_recheck() {
        let table = Arc::new(CensusGenerator::new(6).generate(100));
        let reg = Registry::new(8);
        let total: u64 = 4 * LRU_EXACT_THRESHOLD; // well into the sampled regime
        for id in 0..total {
            reg.insert(id, session(&table), meta());
        }
        // Touch everything once in id order so recency is fully known;
        // the most recent 8 are the ids at the end.
        for id in 0..total {
            reg.get(id).unwrap();
        }
        let hottest: Vec<SessionId> = (total - 8..total).collect();
        // The candidate is the oldest entry of a random shard; landing
        // in the hottest 8 of 256 would require a whole shard (~32
        // entries) to fit inside those 8 — impossible by pigeonhole.
        let (victim, seq) = reg.lru_candidate().unwrap();
        assert!(
            !hottest.contains(&victim),
            "sampled eviction picked one of the most recently used sessions"
        );
        // Touched-after-scan still survives, exactly as on the exact path.
        reg.get(victim).unwrap();
        assert!(!reg.remove_if_unused_since(victim, seq));
        // Under churn the sampled candidates keep the registry draining:
        // every fresh scan must yield an evictable session.
        while reg.len() > LRU_EXACT_THRESHOLD {
            let before = reg.len();
            let (victim, seq) = reg.lru_candidate().unwrap();
            assert!(reg.remove_if_unused_since(victim, seq));
            assert_eq!(reg.len(), before - 1);
        }
    }

    #[test]
    fn stale_lru_candidate_survives_removal() {
        let table = Arc::new(CensusGenerator::new(5).generate(100));
        let reg = Registry::new(4);
        reg.insert(0, session(&table), meta());
        let (victim, seq) = reg.lru_candidate().unwrap();
        // The session is touched after the scan (same millisecond is
        // fine — the sequence is what's compared)…
        reg.get(victim).unwrap();
        // …so the stale candidate must not be evicted.
        assert!(!reg.remove_if_unused_since(victim, seq));
        assert_eq!(reg.len(), 1);
        // A fresh scan observes the new sequence and may evict.
        let (victim, seq) = reg.lru_candidate().unwrap();
        assert!(reg.remove_if_unused_since(victim, seq));
        assert_eq!(reg.len(), 0);
        assert!(
            !reg.remove_if_unused_since(victim, u64::MAX),
            "already gone"
        );
    }
}
