//! The durable session-snapshot format (`AWRS`, version 1).
//!
//! One snapshot file is one session image:
//!
//! ```text
//! offset 0   magic    "AWRS"           (4 bytes)
//! offset 4   version  0x01             (1 byte)
//! offset 5   length   u32 big-endian   (payload bytes that follow)
//! offset 9   checksum u64 little-endian (FNV-1a over the payload)
//! offset 17  payload                   (tag codec, see below)
//! ```
//!
//! The payload reuses the protocol-v2 tag codec of [`crate::wire`] —
//! LEB128 varints, bit-exact little-endian `f64`s, length-prefixed
//! UTF-8 strings, and the existing policy/filter encoders — so the
//! wealth ledger survives persistence exactly as it survives the wire:
//! bit for bit. The length prefix makes truncation detectable and the
//! checksum makes any other corruption detectable; both decode to
//! [`ErrorCode::CorruptSnapshot`], never a panic and never a silently
//! reset wealth.
//!
//! What is stored: the session id, its dataset name, the active
//! [`PolicySpec`] (plus the ledger index it was installed at, so
//! stateful policies replay the right observation history), the
//! α-investing machine snapshot, and the visualization/hypothesis
//! histories. What is deliberately **not** stored: selection bitmaps or
//! anything else sized by the table — selections are re-derived from
//! the stored predicates through the per-dataset `EvalCache` on
//! restore, so snapshot size tracks the exploration, never the data.
//!
//! Version discipline: any change to the payload grammar must bump
//! [`SNAPSHOT_VERSION`] and keep a decoder for version 1 — the golden
//! fixture under `tests/fixtures/` pins the version-1 bytes.

use crate::error::{ErrorCode, ServeError};
use crate::proto::{FilterSpec, PolicySpec, SessionId};
use crate::wire::{Reader, Writer};
use aware_core::hypothesis::{
    Hypothesis, HypothesisId, HypothesisStatus, NullSpec, ShiftMethod, TestRecord,
};
use aware_core::session::SessionSnapshot;
use aware_core::viz::{Visualization, VizId};
use aware_data::hash::fnv1a;
use aware_mht::investing::{LedgerEntry, MachineSnapshot};
use aware_mht::Decision;
use aware_stats::power::{FlipDirection, FlipEstimate};
use aware_stats::tests::{TestKind, TestOutcome};

/// Snapshot-file magic. Distinct from the wire's `AWR2` so a snapshot
/// file accidentally fed to a socket (or vice versa) fails loudly.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"AWRS";

/// Current snapshot format version. Version 2 added the dataset
/// content fingerprint (an `Option<u64>` right after the dataset
/// name); version-1 files still decode, with [`SessionImage::
/// fingerprint`] `None` — they were written before tables could be
/// fingerprinted, so restore extends them the trust they always had.
pub const SNAPSHOT_VERSION: u8 = 2;

/// Oldest snapshot version this build still decodes.
pub const SNAPSHOT_VERSION_MIN: u8 = 1;

/// Bytes before the payload: magic + version + u32 length + u64 FNV-1a.
pub const SNAPSHOT_HEADER_LEN: usize = 17;

/// Hard ceiling on a snapshot payload — a corrupted length prefix must
/// not ask the loader to allocate gigabytes.
pub const MAX_SNAPSHOT_BYTES: usize = 64 << 20;

/// Everything the serving layer persists about one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionImage {
    /// The session's registry id.
    pub id: SessionId,
    /// Name of the dataset the session explores; restore re-attaches
    /// the registered table and shared evaluation cache by this name.
    pub dataset: String,
    /// Content fingerprint of the dataset's table at snapshot time
    /// ([`aware_data::table::Table::fingerprint`]). Restore and import
    /// refuse a registered table whose fingerprint differs — a wealth
    /// ledger replayed against changed data is a corrupt ledger, and
    /// for cross-shard migration this is what proves both shards hold
    /// the *same* table, not merely one with the same name. `None` for
    /// version-1 files, which predate fingerprinting.
    pub fingerprint: Option<u64>,
    /// The investing policy active at snapshot time.
    pub policy: PolicySpec,
    /// Ledger index at which `policy` was installed: the restore
    /// replays `observe` for entries from here on (0 = active since the
    /// session opened).
    pub policy_since: u64,
    /// The session state proper.
    pub session: SessionSnapshot,
}

/// Encodes a session image into complete snapshot-file bytes.
pub fn encode(image: &SessionImage) -> Vec<u8> {
    let mut w = Writer::new();
    w.varint(image.id);
    w.str(&image.dataset);
    // Version 2: the dataset fingerprint. Fixed 8 bytes (fingerprints
    // are uniformly distributed; a varint would only pad them).
    match image.fingerprint {
        None => w.u8(0),
        Some(fp) => {
            w.u8(1);
            w.raw_u64(fp);
        }
    }
    w.policy(&image.policy);
    w.varint(image.policy_since);
    machine(&mut w, &image.session.machine);
    w.varint(image.session.visualizations.len() as u64);
    for viz in &image.session.visualizations {
        w.str(&viz.attribute);
        w.filter(&FilterSpec::from_predicate(&viz.filter));
    }
    w.varint(image.session.hypotheses.len() as u64);
    for h in &image.session.hypotheses {
        hypothesis(&mut w, h);
    }
    let payload = w.into_bytes();

    let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.push(SNAPSHOT_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes complete snapshot-file bytes. Every failure — truncation,
/// checksum mismatch, unknown version, codec error — is a
/// [`ErrorCode::CorruptSnapshot`].
pub fn decode(bytes: &[u8]) -> Result<SessionImage, ServeError> {
    let corrupt = |message: String| ServeError {
        code: ErrorCode::CorruptSnapshot,
        message,
    };
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(corrupt(format!(
            "file of {} bytes is shorter than the {SNAPSHOT_HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(corrupt(format!(
            "bad snapshot magic {:02x}{:02x}{:02x}{:02x} (expected \"AWRS\")",
            bytes[0], bytes[1], bytes[2], bytes[3]
        )));
    }
    let version = bytes[4];
    if !(SNAPSHOT_VERSION_MIN..=SNAPSHOT_VERSION).contains(&version) {
        return Err(corrupt(format!(
            "unsupported snapshot version {version} (this build reads \
             {SNAPSHOT_VERSION_MIN}..={SNAPSHOT_VERSION})"
        )));
    }
    let declared = u32::from_be_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]) as usize;
    if declared > MAX_SNAPSHOT_BYTES {
        return Err(corrupt(format!(
            "declared payload of {declared} bytes exceeds the {MAX_SNAPSHOT_BYTES}-byte ceiling"
        )));
    }
    let payload = &bytes[SNAPSHOT_HEADER_LEN..];
    if payload.len() != declared {
        return Err(corrupt(format!(
            "payload is {} bytes but the header declares {declared} (torn write?)",
            payload.len()
        )));
    }
    let mut checksum = [0u8; 8];
    checksum.copy_from_slice(&bytes[9..17]);
    let expected = u64::from_le_bytes(checksum);
    let actual = fnv1a(payload);
    if actual != expected {
        return Err(corrupt(format!(
            "payload checksum {actual:016x} does not match header {expected:016x}"
        )));
    }
    decode_payload(payload, version).map_err(|e| corrupt(e.message))
}

fn decode_payload(payload: &[u8], version: u8) -> Result<SessionImage, ServeError> {
    let mut r = Reader::new(payload);
    let id = r.varint("session id")?;
    let dataset = r.str("dataset name")?;
    let fingerprint = if version >= 2 {
        match r.u8("fingerprint flag")? {
            0 => None,
            1 => Some(r.u64_le("dataset fingerprint")?),
            other => return Err(ServeError::invalid(format!("bad fingerprint flag {other}"))),
        }
    } else {
        None // version 1 predates table fingerprinting
    };
    let policy = r.policy()?;
    let policy_since = r.varint("policy_since")?;
    let machine = read_machine(&mut r)?;
    let viz_count = r.varint("visualization count")? as usize;
    let mut visualizations = Vec::with_capacity(viz_count.min(1024));
    for i in 0..viz_count {
        let attribute = r.str("visualization attribute")?;
        let filter = r.filter(0)?.to_predicate();
        visualizations.push(Visualization {
            id: VizId(i as u64),
            attribute,
            filter,
        });
    }
    let hyp_count = r.varint("hypothesis count")? as usize;
    let mut hypotheses = Vec::with_capacity(hyp_count.min(1024));
    for i in 0..hyp_count {
        hypotheses.push(read_hypothesis(&mut r, i as u64)?);
    }
    r.finish()?;
    Ok(SessionImage {
        id,
        dataset,
        fingerprint,
        policy,
        policy_since,
        session: SessionSnapshot {
            machine,
            visualizations,
            hypotheses,
        },
    })
}

// -- machine ----------------------------------------------------------------

fn machine(w: &mut Writer, m: &MachineSnapshot) {
    w.f64(m.alpha);
    w.f64(m.eta);
    w.f64(m.omega);
    w.varint(m.ledger.len() as u64);
    for e in &m.ledger {
        w.f64(e.p_value);
        w.f64(e.bid);
        w.u8(e.decision.is_rejection() as u8);
        w.f64(e.wealth_before);
        w.f64(e.wealth_after);
    }
}

fn read_machine(r: &mut Reader) -> Result<MachineSnapshot, ServeError> {
    let alpha = r.f64("alpha")?;
    let eta = r.f64("eta")?;
    let omega = r.f64("omega")?;
    let count = r.varint("ledger length")? as usize;
    let mut ledger = Vec::with_capacity(count.min(1024));
    for index in 0..count {
        ledger.push(LedgerEntry {
            index,
            p_value: r.f64("ledger p_value")?,
            bid: r.f64("ledger bid")?,
            decision: read_decision(r)?,
            wealth_before: r.f64("ledger wealth_before")?,
            wealth_after: r.f64("ledger wealth_after")?,
        });
    }
    Ok(MachineSnapshot {
        alpha,
        eta,
        omega,
        ledger,
    })
}

fn read_decision(r: &mut Reader) -> Result<Decision, ServeError> {
    match r.u8("decision")? {
        0 => Ok(Decision::Accept),
        1 => Ok(Decision::Reject),
        other => Err(ServeError::invalid(format!("unknown decision tag {other}"))),
    }
}

// -- hypotheses -------------------------------------------------------------

fn predicate(w: &mut Writer, p: &aware_data::predicate::Predicate) {
    w.filter(&FilterSpec::from_predicate(p));
}

fn null_spec(w: &mut Writer, spec: &NullSpec) {
    match spec {
        NullSpec::NoFilterEffect { attribute, filter } => {
            w.u8(1);
            w.str(attribute);
            predicate(w, filter);
        }
        NullSpec::NoDistributionDifference {
            attribute,
            filter_a,
            filter_b,
        } => {
            w.u8(2);
            w.str(attribute);
            predicate(w, filter_a);
            predicate(w, filter_b);
        }
        NullSpec::MeanEquality {
            attribute,
            filter_a,
            filter_b,
        } => {
            w.u8(3);
            w.str(attribute);
            predicate(w, filter_a);
            predicate(w, filter_b);
        }
        NullSpec::IndependenceWithin {
            attribute_a,
            attribute_b,
            filter,
            use_g_test,
        } => {
            w.u8(4);
            w.str(attribute_a);
            w.str(attribute_b);
            predicate(w, filter);
            w.u8(*use_g_test as u8);
        }
        NullSpec::NoGroupMeanDifference {
            value_attribute,
            group_attribute,
            filter,
        } => {
            w.u8(5);
            w.str(value_attribute);
            w.str(group_attribute);
            predicate(w, filter);
        }
        NullSpec::StochasticEquality {
            attribute,
            filter_a,
            filter_b,
            method,
        } => {
            w.u8(6);
            w.str(attribute);
            predicate(w, filter_a);
            predicate(w, filter_b);
            w.u8(match method {
                ShiftMethod::MannWhitney => 0,
                ShiftMethod::KolmogorovSmirnov => 1,
            });
        }
    }
}

fn read_predicate(r: &mut Reader) -> Result<aware_data::predicate::Predicate, ServeError> {
    Ok(r.filter(0)?.to_predicate())
}

fn read_null_spec(r: &mut Reader) -> Result<NullSpec, ServeError> {
    Ok(match r.u8("null-spec tag")? {
        1 => NullSpec::NoFilterEffect {
            attribute: r.str("attribute")?,
            filter: read_predicate(r)?,
        },
        2 => NullSpec::NoDistributionDifference {
            attribute: r.str("attribute")?,
            filter_a: read_predicate(r)?,
            filter_b: read_predicate(r)?,
        },
        3 => NullSpec::MeanEquality {
            attribute: r.str("attribute")?,
            filter_a: read_predicate(r)?,
            filter_b: read_predicate(r)?,
        },
        4 => NullSpec::IndependenceWithin {
            attribute_a: r.str("attribute_a")?,
            attribute_b: r.str("attribute_b")?,
            filter: read_predicate(r)?,
            use_g_test: r.u8("use_g_test")? != 0,
        },
        5 => NullSpec::NoGroupMeanDifference {
            value_attribute: r.str("value_attribute")?,
            group_attribute: r.str("group_attribute")?,
            filter: read_predicate(r)?,
        },
        6 => NullSpec::StochasticEquality {
            attribute: r.str("attribute")?,
            filter_a: read_predicate(r)?,
            filter_b: read_predicate(r)?,
            method: match r.u8("shift method")? {
                0 => ShiftMethod::MannWhitney,
                1 => ShiftMethod::KolmogorovSmirnov,
                other => {
                    return Err(ServeError::invalid(format!(
                        "unknown shift-method tag {other}"
                    )))
                }
            },
        },
        other => {
            return Err(ServeError::invalid(format!(
                "unknown null-spec tag {other}"
            )))
        }
    })
}

fn test_kind_tag(kind: TestKind) -> u8 {
    match kind {
        TestKind::WelchT => 1,
        TestKind::StudentT => 2,
        TestKind::OneSampleT => 3,
        TestKind::ZTest => 4,
        TestKind::ChiSquareGof => 5,
        TestKind::ChiSquareIndependence => 6,
        TestKind::TwoProportionZ => 7,
        TestKind::MannWhitneyU => 8,
        TestKind::KolmogorovSmirnov => 9,
        TestKind::FisherExact => 10,
        TestKind::GTest => 11,
        TestKind::OneWayAnova => 12,
        TestKind::ExactBinomial => 13,
    }
}

fn read_test_kind(r: &mut Reader) -> Result<TestKind, ServeError> {
    Ok(match r.u8("test kind")? {
        1 => TestKind::WelchT,
        2 => TestKind::StudentT,
        3 => TestKind::OneSampleT,
        4 => TestKind::ZTest,
        5 => TestKind::ChiSquareGof,
        6 => TestKind::ChiSquareIndependence,
        7 => TestKind::TwoProportionZ,
        8 => TestKind::MannWhitneyU,
        9 => TestKind::KolmogorovSmirnov,
        10 => TestKind::FisherExact,
        11 => TestKind::GTest,
        12 => TestKind::OneWayAnova,
        13 => TestKind::ExactBinomial,
        other => {
            return Err(ServeError::invalid(format!(
                "unknown test-kind tag {other}"
            )))
        }
    })
}

fn record(w: &mut Writer, rec: &TestRecord) {
    w.u8(test_kind_tag(rec.outcome.kind));
    w.f64(rec.outcome.statistic);
    w.f64(rec.outcome.df);
    w.f64(rec.outcome.p_value);
    w.f64(rec.outcome.effect_size);
    w.varint(rec.outcome.support as u64);
    w.f64(rec.bid);
    w.u8(rec.decision.is_rejection() as u8);
    w.f64(rec.wealth_after);
    w.f64(rec.support_fraction);
    match &rec.flip {
        None => w.u8(0),
        Some(flip) => {
            w.u8(1);
            w.u8(match flip.direction {
                FlipDirection::ToRejection => 0,
                FlipDirection::ToAcceptance => 1,
            });
            w.f64(flip.factor);
            w.varint(flip.additional_observations);
        }
    }
}

fn read_record(r: &mut Reader) -> Result<TestRecord, ServeError> {
    let kind = read_test_kind(r)?;
    let outcome = TestOutcome {
        kind,
        statistic: r.f64("statistic")?,
        df: r.f64("df")?,
        p_value: r.f64("p_value")?,
        effect_size: r.f64("effect_size")?,
        support: r.varint("support")? as usize,
    };
    let bid = r.f64("bid")?;
    let decision = read_decision(r)?;
    let wealth_after = r.f64("wealth_after")?;
    let support_fraction = r.f64("support_fraction")?;
    let flip = match r.u8("flip flag")? {
        0 => None,
        1 => Some(FlipEstimate {
            direction: match r.u8("flip direction")? {
                0 => FlipDirection::ToRejection,
                1 => FlipDirection::ToAcceptance,
                other => {
                    return Err(ServeError::invalid(format!(
                        "unknown flip-direction tag {other}"
                    )))
                }
            },
            factor: r.f64("flip factor")?,
            additional_observations: r.varint("flip additional_observations")?,
        }),
        other => return Err(ServeError::invalid(format!("bad flip flag {other}"))),
    };
    Ok(TestRecord {
        outcome,
        bid,
        decision,
        wealth_after,
        support_fraction,
        flip,
    })
}

fn hypothesis(w: &mut Writer, h: &Hypothesis) {
    null_spec(w, &h.null);
    w.opt_varint(h.source.map(|v| v.0));
    match &h.status {
        HypothesisStatus::Tested(rec) => {
            w.u8(0);
            record(w, rec);
        }
        HypothesisStatus::Untestable => w.u8(1),
        HypothesisStatus::Superseded { by } => {
            w.u8(2);
            w.varint(by.0);
        }
        HypothesisStatus::Deleted => w.u8(3),
    }
    w.u8(h.bookmarked as u8);
}

fn read_hypothesis(r: &mut Reader, id: u64) -> Result<Hypothesis, ServeError> {
    let null = read_null_spec(r)?;
    let source = r.opt_varint("source viz")?.map(VizId);
    let status = match r.u8("hypothesis status")? {
        0 => HypothesisStatus::Tested(read_record(r)?),
        1 => HypothesisStatus::Untestable,
        2 => HypothesisStatus::Superseded {
            by: HypothesisId(r.varint("superseded-by id")?),
        },
        3 => HypothesisStatus::Deleted,
        other => {
            return Err(ServeError::invalid(format!(
                "unknown hypothesis-status tag {other}"
            )))
        }
    };
    let bookmarked = r.u8("bookmarked")? != 0;
    Ok(Hypothesis {
        id: HypothesisId(id),
        null,
        source,
        status,
        bookmarked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aware_data::census::CensusGenerator;
    use aware_data::predicate::Predicate;
    use std::sync::Arc;

    fn sample_image() -> SessionImage {
        let table: Arc<aware_data::table::Table> =
            Arc::new(CensusGenerator::new(11).generate(1_200));
        let policy = PolicySpec::Fixed { gamma: 10.0 };
        let mut session =
            aware_core::session::Session::shared(table.clone(), 0.05, policy.build().unwrap())
                .unwrap();
        session.add_visualization("sex", Predicate::True).unwrap();
        session
            .add_visualization("education", Predicate::eq("salary_over_50k", true))
            .unwrap();
        session
            .add_visualization("race", Predicate::eq("survey_wave", "Wave-1"))
            .unwrap();
        session
            .add_visualization("sex", Predicate::eq("education", "Kindergarten"))
            .unwrap();
        SessionImage {
            id: 42,
            dataset: "census".into(),
            fingerprint: Some(table.fingerprint()),
            policy,
            policy_since: 0,
            session: session.snapshot(),
        }
    }

    #[test]
    fn images_round_trip() {
        let image = sample_image();
        let bytes = encode(&image);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, image);
    }

    #[test]
    fn truncation_at_every_byte_is_corrupt_never_a_panic() {
        let bytes = encode(&sample_image());
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(e) => assert_eq!(e.code, ErrorCode::CorruptSnapshot, "cut {cut}"),
                Ok(_) => panic!("a {cut}-byte prefix of a {}-byte file decoded", bytes.len()),
            }
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let bytes = encode(&sample_image());
        // Flip one bit in every byte of the payload; the checksum (or
        // the codec) must reject every single mutation.
        for i in SNAPSHOT_HEADER_LEN..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x40;
            assert!(
                decode(&mutated).is_err(),
                "flipped bit at byte {i} went unnoticed"
            );
        }
        // Header corruption too: magic, version, length, checksum.
        for i in 0..SNAPSHOT_HEADER_LEN {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x01;
            assert!(decode(&mutated).is_err(), "header byte {i}");
        }
    }

    #[test]
    fn unknown_version_is_refused() {
        for version in [0u8, SNAPSHOT_VERSION + 1, 99] {
            let mut bytes = encode(&sample_image());
            bytes[4] = version;
            let err = decode(&bytes).unwrap_err();
            assert_eq!(err.code, ErrorCode::CorruptSnapshot);
            assert!(err.message.contains("version"), "{err}");
        }
    }

    /// Re-encodes an image in the version-1 grammar (no fingerprint
    /// field) by hand, reusing the very encoders `encode` uses.
    fn encode_v1(image: &SessionImage) -> Vec<u8> {
        let mut w = Writer::new();
        w.varint(image.id);
        w.str(&image.dataset);
        // v1 grammar: policy follows the dataset name directly.
        w.policy(&image.policy);
        w.varint(image.policy_since);
        machine(&mut w, &image.session.machine);
        w.varint(image.session.visualizations.len() as u64);
        for viz in &image.session.visualizations {
            w.str(&viz.attribute);
            w.filter(&FilterSpec::from_predicate(&viz.filter));
        }
        w.varint(image.session.hypotheses.len() as u64);
        for h in &image.session.hypotheses {
            hypothesis(&mut w, h);
        }
        let payload = w.into_bytes();
        let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.push(1); // version 1
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    #[test]
    fn version_1_files_still_decode_with_no_fingerprint() {
        let mut image = sample_image();
        let v1_bytes = encode_v1(&image);
        let decoded = decode(&v1_bytes).unwrap();
        // A v1 file carries no fingerprint; everything else survives.
        image.fingerprint = None;
        assert_eq!(decoded, image);
        // And re-encoding the migrated image writes a version-2 file.
        let reencoded = encode(&decoded);
        assert_eq!(reencoded[4], SNAPSHOT_VERSION);
        assert_eq!(decode(&reencoded).unwrap(), decoded);
    }

    #[test]
    fn snapshot_size_is_independent_of_table_size() {
        // The format's core promise: nothing in the file scales with the
        // dataset. The same exploration over a 60× larger table must
        // produce a byte-for-byte *identically sized* snapshot — which
        // is only possible because selections are stored as predicates,
        // never as bitmaps.
        let snap_for = |rows: usize| {
            let table = Arc::new(CensusGenerator::new(3).generate(rows));
            let mut s = aware_core::session::Session::shared(
                table,
                0.05,
                PolicySpec::Fixed { gamma: 10.0 }.build().unwrap(),
            )
            .unwrap();
            s.add_visualization("education", Predicate::eq("salary_over_50k", true))
                .unwrap();
            s.add_visualization("race", Predicate::eq("sex", "Female"))
                .unwrap();
            encode(&SessionImage {
                id: 1,
                dataset: "census".into(),
                // A fixed fingerprint, NOT the table's: the real one is
                // table-content-dependent, and this test's whole point
                // is that nothing else in the file scales with (or even
                // varies by) the data.
                fingerprint: Some(0xfeed_beef_dead_cafe),
                policy: PolicySpec::Fixed { gamma: 10.0 },
                policy_since: 0,
                session: s.snapshot(),
            })
        };
        let small = snap_for(500);
        let large = snap_for(30_000);
        // The only size dependence on the table is O(log n): varint row
        // counts (`support`, `n_H1`). A single serialized bitmap of the
        // large table would add ~3 750 bytes; the actual delta is the
        // width of a few varints.
        let delta = large.len().abs_diff(small.len());
        assert!(
            delta < 16,
            "snapshot size must track the exploration, not the data \
             ({} vs {} bytes)",
            small.len(),
            large.len()
        );
        assert!(large.len() < 30_000 / 8, "{} bytes", large.len());
    }
}
