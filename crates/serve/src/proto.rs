//! The typed command/response protocol of the serving layer, and its
//! line-delimited JSON (NDJSON) wire encoding.
//!
//! ## v1: one command per line
//!
//! One request per line, one response per line, in order. Every request
//! object carries a `"cmd"` discriminator plus command-specific fields
//! and an optional client-chosen `"id"` echoed verbatim on the response;
//! responses carry `"ok"` plus either the payload or an `"error"`
//! object. The full grammar with one example per command lives in the
//! repository README.
//!
//! ## v2: versioned envelopes
//!
//! Protocol v2 wraps commands in an [`Envelope`]: a `hello` negotiation
//! message, a [`Batch`] carrying N ordered commands (with per-item ids
//! and a [`BatchMode`]), or a bare single command (every v1 request is
//! a valid v2 envelope). Replies mirror the shape as [`Reply`]. The
//! envelope layer is encoding-agnostic — the same types travel as JSON
//! lines (this module) or as length-prefixed binary frames
//! ([`crate::frame`] + [`crate::wire`]), negotiated per connection by
//! the hello handshake and auto-detected by first byte.
//!
//! Filters travel as a small predicate AST (`FilterSpec`) mirroring
//! `aware_data::predicate::Predicate`, and policies as a tagged
//! `PolicySpec` naming one of the paper's five investing rules.

use crate::error::{ErrorCode, ServeError};
use crate::json::Json;
use aware_core::hypothesis::TestRecord;
use aware_data::predicate::{CmpOp, Predicate};
use aware_data::value::Value;
use aware_mht::investing::policies::{EpsilonHybrid, Farsighted, Fixed, Hopeful, SupportScaled};
use aware_mht::investing::InvestingPolicy;

/// Identifier of a live session, allocated by the service.
pub type SessionId = u64;

/// A boxed investing policy usable across worker threads.
pub type BoxedPolicy = Box<dyn InvestingPolicy + Send>;

/// The protocol version spoken after a successful hello handshake.
/// Version 1 is the implicit NDJSON single-command surface and needs no
/// hello. Version 3 kept version 2's envelope/batch/framing design but
/// changed the binary `stats` payload (the scalar-counter list became
/// count-prefixed and gained `cache_hits`/`cache_misses`), so version-2
/// peers are refused at the handshake instead of mis-decoding stats.
pub const PROTOCOL_VERSION: u32 = 3;

/// Hard ceiling on items per batch envelope, enforced at decode time on
/// both encodings — a client cannot make one wire message fan out into
/// unbounded dispatch work.
pub const MAX_BATCH_ITEMS: usize = 4096;

/// Wire encoding of a connection, negotiated by the `hello` handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Encoding {
    /// Line-delimited JSON — the v1 surface and the debug default.
    #[default]
    Json,
    /// `AWR2` length-prefixed frames with the compact tag codec.
    Binary,
}

impl Encoding {
    pub fn as_str(self) -> &'static str {
        match self {
            Encoding::Json => "json",
            Encoding::Binary => "binary",
        }
    }

    pub fn parse(s: &str) -> Option<Encoding> {
        match s {
            "json" => Some(Encoding::Json),
            "binary" => Some(Encoding::Binary),
            _ => None,
        }
    }
}

/// How a batch reacts to a failing item.
///
/// Fail-fast honours the same boundary as the ordering guarantee: it
/// aborts the *same-session command stream* that failed (later items
/// addressed to that stream answer [`ErrorCode::Aborted`]), while items
/// for other sessions — which execute in parallel and share no
/// statistical state — still run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Every item executes; errors are reported per item.
    #[default]
    Continue,
    /// After an item errors, later same-session items are skipped.
    FailFast,
}

impl BatchMode {
    pub fn as_str(self) -> &'static str {
        match self {
            BatchMode::Continue => "continue",
            BatchMode::FailFast => "fail_fast",
        }
    }

    pub fn parse(s: &str) -> Option<BatchMode> {
        match s {
            "continue" => Some(BatchMode::Continue),
            "fail_fast" => Some(BatchMode::FailFast),
            _ => None,
        }
    }
}

/// One command inside a batch, with its client-chosen item id.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    pub id: Option<u64>,
    pub cmd: Command,
}

/// An ordered batch of commands sharing one wire round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    pub mode: BatchMode,
    pub items: Vec<BatchItem>,
}

/// A v2 request envelope: everything a client can put on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// Version/encoding negotiation. `push` opts into server-push
    /// frames (id-0 envelopes); this server decodes it leniently — the
    /// seventh no-version-bump extension. The leniency is asymmetric
    /// across surfaces, though: on JSON, pre-push servers ignore the
    /// unknown `"push"` field and simply never grant it, but on the
    /// binary surface a pre-push server's strict `Reader::finish()`
    /// rejects the trailing capability byte as "trailing bytes", so a
    /// binary-native hello requesting push fails the whole handshake
    /// against an older server. Clients that must interoperate with
    /// old servers should request push over a JSON hello (upgrading to
    /// binary via the ack), which is exactly what [`crate::tcp::Client`]
    /// does.
    Hello {
        id: Option<u64>,
        version: u32,
        encoding: Encoding,
        push: bool,
    },
    /// N ordered commands, one round trip.
    Batch { id: Option<u64>, batch: Batch },
    /// A bare v1 command (every v1 request is a valid envelope).
    Single { id: Option<u64>, cmd: Command },
}

/// A v2 reply envelope, mirroring [`Envelope`].
// Stats responses carry the full snapshot inline; a Reply is built,
// encoded, and dropped on the spot, so the size gap never costs a copy.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Successful negotiation: the server's accepted version/encoding
    /// and its frame-size ceiling for the binary surface.
    HelloAck {
        id: Option<u64>,
        version: u32,
        encoding: Encoding,
        max_frame: u64,
        /// True when the server granted the push capability (requires
        /// both the client asking and a front end that can deliver
        /// unsolicited frames — the reactor).
        push: bool,
    },
    /// Ordered responses, one per batch item, with item ids echoed.
    Batch {
        id: Option<u64>,
        items: Vec<(Option<u64>, Response)>,
    },
    /// A bare v1 response.
    Single { id: Option<u64>, response: Response },
}

impl Envelope {
    /// Encodes as one JSON request line.
    pub fn encode_line(&self) -> String {
        match self {
            Envelope::Hello {
                id,
                version,
                encoding,
                push,
            } => {
                let mut pairs = Vec::new();
                if let Some(id) = id {
                    pairs.push(("id", Json::Num(*id as f64)));
                }
                pairs.push(("cmd", Json::Str("hello".into())));
                pairs.push(("version", Json::Num(*version as f64)));
                pairs.push(("encoding", Json::Str(encoding.as_str().into())));
                // Emitted only when requested: a non-push hello stays
                // byte-identical to what older clients send.
                if *push {
                    pairs.push(("push", Json::Bool(true)));
                }
                Json::obj(pairs).to_string()
            }
            Envelope::Batch { id, batch } => {
                let mut pairs = Vec::new();
                if let Some(id) = id {
                    pairs.push(("id", Json::Num(*id as f64)));
                }
                pairs.push(("mode", Json::Str(batch.mode.as_str().into())));
                pairs.push((
                    "batch",
                    Json::Arr(
                        batch
                            .items
                            .iter()
                            .map(|item| {
                                let mut json = item.cmd.to_json();
                                if let (Some(id), Json::Obj(pairs)) = (item.id, &mut json) {
                                    pairs.insert(0, ("id".to_string(), Json::Num(id as f64)));
                                }
                                json
                            })
                            .collect(),
                    ),
                ));
                Json::obj(pairs).to_string()
            }
            Envelope::Single { id, cmd } => cmd.encode_line(*id),
        }
    }

    /// Decodes a parsed request object into an envelope.
    pub fn from_json(v: &Json) -> Result<Envelope, ServeError> {
        let id = v.get("id").and_then(Json::as_u64);
        if let Some(items) = v.get("batch") {
            let items = items
                .as_arr()
                .ok_or_else(|| ServeError::invalid("'batch' must be an array of requests"))?;
            if items.len() > MAX_BATCH_ITEMS {
                return Err(ServeError::invalid(format!(
                    "batch of {} items exceeds the {MAX_BATCH_ITEMS}-item ceiling",
                    items.len()
                )));
            }
            let mode = match v.get("mode") {
                None => BatchMode::Continue,
                Some(m) => m.as_str().and_then(BatchMode::parse).ok_or_else(|| {
                    ServeError::invalid("'mode' must be \"continue\" or \"fail_fast\"")
                })?,
            };
            let items = items
                .iter()
                .map(|item| {
                    Ok(BatchItem {
                        id: item.get("id").and_then(Json::as_u64),
                        cmd: Command::from_json(item)?,
                    })
                })
                .collect::<Result<Vec<_>, ServeError>>()?;
            return Ok(Envelope::Batch {
                id,
                batch: Batch { mode, items },
            });
        }
        if v.get("cmd").and_then(Json::as_str) == Some("hello") {
            let version = v
                .get("version")
                .and_then(Json::as_u64)
                .ok_or_else(|| ServeError::invalid("hello missing integer field 'version'"))?;
            let encoding = match v.get("encoding") {
                None => Encoding::Json,
                Some(e) => e.as_str().and_then(Encoding::parse).ok_or_else(|| {
                    ServeError::invalid("hello 'encoding' must be \"json\" or \"binary\"")
                })?,
            };
            return Ok(Envelope::Hello {
                id,
                version: version.min(u32::MAX as u64) as u32,
                encoding,
                // Lenient: absent (or non-bool) means not requested, so
                // old clients keep decoding unchanged.
                push: v.get("push").and_then(Json::as_bool).unwrap_or(false),
            });
        }
        Ok(Envelope::Single {
            id,
            cmd: Command::from_json(v)?,
        })
    }

    /// Parses one request line into an envelope.
    pub fn decode_line(line: &str) -> Result<Envelope, ServeError> {
        let v = Json::parse(line.trim()).map_err(|e| ServeError {
            code: ErrorCode::BadRequest,
            message: e.to_string(),
        })?;
        Envelope::from_json(&v)
    }
}

impl Reply {
    /// Encodes as one JSON response line.
    pub fn encode_line(&self) -> String {
        match self {
            Reply::HelloAck {
                id,
                version,
                encoding,
                max_frame,
                push,
            } => {
                let mut pairs = Vec::new();
                if let Some(id) = id {
                    pairs.push(("id", Json::Num(*id as f64)));
                }
                pairs.push(("ok", Json::Bool(true)));
                let mut hello = vec![
                    ("version", Json::Num(*version as f64)),
                    ("encoding", Json::Str(encoding.as_str().into())),
                    ("max_frame", Json::Num(*max_frame as f64)),
                ];
                if *push {
                    hello.push(("push", Json::Bool(true)));
                }
                pairs.push(("hello", Json::obj(hello)));
                Json::obj(pairs).to_string()
            }
            Reply::Batch { id, items } => {
                let mut pairs = Vec::new();
                if let Some(id) = id {
                    pairs.push(("id", Json::Num(*id as f64)));
                }
                pairs.push(("ok", Json::Bool(true)));
                pairs.push((
                    "responses",
                    Json::Arr(
                        items
                            .iter()
                            .map(|(item_id, response)| {
                                let mut json = response.to_json();
                                if let (Some(id), Json::Obj(pairs)) = (item_id, &mut json) {
                                    pairs.insert(0, ("id".to_string(), Json::Num(*id as f64)));
                                }
                                json
                            })
                            .collect(),
                    ),
                ));
                Json::obj(pairs).to_string()
            }
            Reply::Single { id, response } => response.encode_line(*id),
        }
    }

    /// Decodes a parsed response object into a reply envelope.
    pub fn from_json(v: &Json) -> Result<Reply, ServeError> {
        let id = v.get("id").and_then(Json::as_u64);
        if let Some(hello) = v.get("hello") {
            return Ok(Reply::HelloAck {
                id,
                version: req_u64(hello, "version", "hello")? as u32,
                encoding: Encoding::parse(req_str(hello, "encoding", "hello")?)
                    .ok_or_else(|| ServeError::invalid("unknown hello encoding"))?,
                max_frame: req_u64(hello, "max_frame", "hello")?,
                push: hello.get("push").and_then(Json::as_bool).unwrap_or(false),
            });
        }
        if let Some(items) = v.get("responses") {
            let items = items
                .as_arr()
                .ok_or_else(|| ServeError::invalid("'responses' must be an array"))?
                .iter()
                .map(|item| {
                    Ok((
                        item.get("id").and_then(Json::as_u64),
                        Response::from_json(item)?,
                    ))
                })
                .collect::<Result<Vec<_>, ServeError>>()?;
            return Ok(Reply::Batch { id, items });
        }
        Ok(Reply::Single {
            id,
            response: Response::from_json(v)?,
        })
    }

    /// Parses one response line into a reply envelope.
    pub fn decode_line(line: &str) -> Result<Reply, ServeError> {
        let v = Json::parse(line.trim()).map_err(|e| ServeError {
            code: ErrorCode::BadRequest,
            message: e.to_string(),
        })?;
        Reply::from_json(&v)
    }
}

/// Which transcript rendering the client wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranscriptFormat {
    /// The stable CSV audit log.
    Csv,
    /// The human-readable text report (summary + gauge).
    Text,
}

impl TranscriptFormat {
    pub fn as_str(self) -> &'static str {
        match self {
            TranscriptFormat::Csv => "csv",
            TranscriptFormat::Text => "text",
        }
    }
}

/// One of the paper's five α-investing rules, by wire name.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// γ-fixed: bid wealth/γ.
    Fixed { gamma: f64 },
    /// β-farsighted: bid a β-fraction of the affordable maximum.
    Farsighted { beta: f64 },
    /// δ-hopeful: re-invest the wealth held at the last rejection.
    Hopeful { delta: f64 },
    /// ε-hybrid of γ-fixed and δ-hopeful.
    EpsilonHybrid {
        gamma: f64,
        delta: f64,
        epsilon: f64,
        window: Option<usize>,
    },
    /// ψ-support–scaled γ-fixed.
    PsiSupport { gamma: f64, psi: f64 },
}

impl PolicySpec {
    /// Instantiates the policy (validating its parameters).
    pub fn build(&self) -> Result<BoxedPolicy, ServeError> {
        let invalid = |e: aware_mht::MhtError| ServeError {
            code: ErrorCode::InvalidArgument,
            message: format!("invalid policy parameters: {e}"),
        };
        Ok(match *self {
            PolicySpec::Fixed { gamma } => Box::new(Fixed::new(gamma)),
            PolicySpec::Farsighted { beta } => Box::new(Farsighted::new(beta).map_err(invalid)?),
            PolicySpec::Hopeful { delta } => Box::new(Hopeful::new(delta)),
            PolicySpec::EpsilonHybrid {
                gamma,
                delta,
                epsilon,
                window,
            } => Box::new(EpsilonHybrid::new(gamma, delta, epsilon, window).map_err(invalid)?),
            PolicySpec::PsiSupport { gamma, psi } => {
                Box::new(SupportScaled::new(Fixed::new(gamma), psi).map_err(invalid)?)
            }
        })
    }

    fn to_json(&self) -> Json {
        match *self {
            PolicySpec::Fixed { gamma } => Json::obj(vec![
                ("kind", Json::Str("fixed".into())),
                ("gamma", Json::Num(gamma)),
            ]),
            PolicySpec::Farsighted { beta } => Json::obj(vec![
                ("kind", Json::Str("farsighted".into())),
                ("beta", Json::Num(beta)),
            ]),
            PolicySpec::Hopeful { delta } => Json::obj(vec![
                ("kind", Json::Str("hopeful".into())),
                ("delta", Json::Num(delta)),
            ]),
            PolicySpec::EpsilonHybrid {
                gamma,
                delta,
                epsilon,
                window,
            } => {
                let mut pairs = vec![
                    ("kind", Json::Str("epsilon_hybrid".into())),
                    ("gamma", Json::Num(gamma)),
                    ("delta", Json::Num(delta)),
                    ("epsilon", Json::Num(epsilon)),
                ];
                if let Some(w) = window {
                    pairs.push(("window", Json::Num(w as f64)));
                }
                Json::obj(pairs)
            }
            PolicySpec::PsiSupport { gamma, psi } => Json::obj(vec![
                ("kind", Json::Str("psi_support".into())),
                ("gamma", Json::Num(gamma)),
                ("psi", Json::Num(psi)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<PolicySpec, ServeError> {
        let kind = req_str(v, "kind", "policy")?;
        let num = |field: &str| req_num(v, field, "policy");
        Ok(match kind {
            "fixed" => PolicySpec::Fixed {
                gamma: num("gamma")?,
            },
            "farsighted" => PolicySpec::Farsighted { beta: num("beta")? },
            "hopeful" => PolicySpec::Hopeful {
                delta: num("delta")?,
            },
            "epsilon_hybrid" => PolicySpec::EpsilonHybrid {
                gamma: num("gamma")?,
                delta: num("delta")?,
                epsilon: num("epsilon")?,
                window: match v.get("window") {
                    None => None,
                    Some(Json::Null) => None,
                    Some(w) => Some(w.as_u64().ok_or_else(|| {
                        ServeError::invalid("policy.window must be a non-negative integer")
                    })? as usize),
                },
            },
            "psi_support" => PolicySpec::PsiSupport {
                gamma: num("gamma")?,
                psi: num("psi")?,
            },
            other => {
                return Err(ServeError::invalid(format!(
                    "unknown policy kind '{other}' (expected fixed | farsighted | hopeful | \
                     epsilon_hybrid | psi_support)"
                )))
            }
        })
    }
}

/// Wire-level predicate AST.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterSpec {
    True,
    Cmp {
        column: String,
        op: CmpOp,
        value: Value,
    },
    In {
        column: String,
        values: Vec<Value>,
    },
    Between {
        column: String,
        lo: f64,
        hi: f64,
    },
    Not(Box<FilterSpec>),
    And(Vec<FilterSpec>),
    Or(Vec<FilterSpec>),
}

fn cmp_op_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Neq => "neq",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn cmp_op_parse(name: &str) -> Option<CmpOp> {
    Some(match name {
        "eq" => CmpOp::Eq,
        "neq" => CmpOp::Neq,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(i) => Json::Num(*i as f64),
        Value::Float(x) => Json::Num(*x),
        Value::Bool(b) => Json::Bool(*b),
        Value::Str(s) => Json::Str(s.clone()),
    }
}

fn value_from_json(v: &Json) -> Result<Value, ServeError> {
    Ok(match v {
        Json::Bool(b) => Value::Bool(*b),
        Json::Str(s) => Value::Str(s.clone()),
        // Integral JSON numbers become Int (categorical/integer columns
        // compare by exact value); anything fractional stays Float.
        Json::Num(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Value::Int(*n as i64),
        Json::Num(n) => Value::Float(*n),
        _ => return Err(ServeError::invalid("filter value must be a scalar")),
    })
}

impl FilterSpec {
    /// Converts an engine predicate back into the wire AST — the exact
    /// inverse of [`FilterSpec::to_predicate`] (both ASTs mirror each
    /// other node for node). The snapshot codec leans on this so
    /// persisted sessions reuse the hardened wire filter codec instead
    /// of growing a second predicate serializer.
    pub fn from_predicate(p: &Predicate) -> FilterSpec {
        match p {
            Predicate::True => FilterSpec::True,
            Predicate::Cmp { column, op, value } => FilterSpec::Cmp {
                column: column.clone(),
                op: *op,
                value: value.clone(),
            },
            Predicate::In { column, values } => FilterSpec::In {
                column: column.clone(),
                values: values.clone(),
            },
            Predicate::Between { column, lo, hi } => FilterSpec::Between {
                column: column.clone(),
                lo: *lo,
                hi: *hi,
            },
            Predicate::Not(inner) => FilterSpec::Not(Box::new(FilterSpec::from_predicate(inner))),
            Predicate::And(parts) => {
                FilterSpec::And(parts.iter().map(FilterSpec::from_predicate).collect())
            }
            Predicate::Or(parts) => {
                FilterSpec::Or(parts.iter().map(FilterSpec::from_predicate).collect())
            }
        }
    }

    /// Converts to the engine predicate.
    pub fn to_predicate(&self) -> Predicate {
        match self {
            FilterSpec::True => Predicate::True,
            FilterSpec::Cmp { column, op, value } => Predicate::Cmp {
                column: column.clone(),
                op: *op,
                value: value.clone(),
            },
            FilterSpec::In { column, values } => Predicate::In {
                column: column.clone(),
                values: values.clone(),
            },
            FilterSpec::Between { column, lo, hi } => Predicate::Between {
                column: column.clone(),
                lo: *lo,
                hi: *hi,
            },
            FilterSpec::Not(inner) => Predicate::Not(Box::new(inner.to_predicate())),
            FilterSpec::And(parts) => {
                Predicate::And(parts.iter().map(FilterSpec::to_predicate).collect())
            }
            FilterSpec::Or(parts) => {
                Predicate::Or(parts.iter().map(FilterSpec::to_predicate).collect())
            }
        }
    }

    fn to_json(&self) -> Json {
        match self {
            FilterSpec::True => Json::obj(vec![("op", Json::Str("true".into()))]),
            FilterSpec::Cmp { column, op, value } => Json::obj(vec![
                ("op", Json::Str(cmp_op_name(*op).into())),
                ("column", Json::Str(column.clone())),
                ("value", value_to_json(value)),
            ]),
            FilterSpec::In { column, values } => Json::obj(vec![
                ("op", Json::Str("in".into())),
                ("column", Json::Str(column.clone())),
                (
                    "values",
                    Json::Arr(values.iter().map(value_to_json).collect()),
                ),
            ]),
            FilterSpec::Between { column, lo, hi } => Json::obj(vec![
                ("op", Json::Str("between".into())),
                ("column", Json::Str(column.clone())),
                ("lo", Json::Num(*lo)),
                ("hi", Json::Num(*hi)),
            ]),
            FilterSpec::Not(inner) => Json::obj(vec![
                ("op", Json::Str("not".into())),
                ("arg", inner.to_json()),
            ]),
            FilterSpec::And(parts) => Json::obj(vec![
                ("op", Json::Str("and".into())),
                (
                    "args",
                    Json::Arr(parts.iter().map(FilterSpec::to_json).collect()),
                ),
            ]),
            FilterSpec::Or(parts) => Json::obj(vec![
                ("op", Json::Str("or".into())),
                (
                    "args",
                    Json::Arr(parts.iter().map(FilterSpec::to_json).collect()),
                ),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<FilterSpec, ServeError> {
        let op = req_str(v, "op", "filter")?;
        if let Some(cmp) = cmp_op_parse(op) {
            return Ok(FilterSpec::Cmp {
                column: req_str(v, "column", "filter")?.to_string(),
                op: cmp,
                value: value_from_json(
                    v.get("value")
                        .ok_or_else(|| ServeError::invalid("filter missing 'value'"))?,
                )?,
            });
        }
        Ok(match op {
            "true" => FilterSpec::True,
            "in" => FilterSpec::In {
                column: req_str(v, "column", "filter")?.to_string(),
                values: v
                    .get("values")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ServeError::invalid("filter 'in' needs a 'values' array"))?
                    .iter()
                    .map(value_from_json)
                    .collect::<Result<_, _>>()?,
            },
            "between" => FilterSpec::Between {
                column: req_str(v, "column", "filter")?.to_string(),
                lo: req_num(v, "lo", "filter")?,
                hi: req_num(v, "hi", "filter")?,
            },
            "not" => FilterSpec::Not(Box::new(FilterSpec::from_json(
                v.get("arg")
                    .ok_or_else(|| ServeError::invalid("filter 'not' needs 'arg'"))?,
            )?)),
            "and" | "or" => {
                let parts = v
                    .get("args")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ServeError::invalid("filter and/or needs an 'args' array"))?
                    .iter()
                    .map(FilterSpec::from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                if op == "and" {
                    FilterSpec::And(parts)
                } else {
                    FilterSpec::Or(parts)
                }
            }
            other => return Err(ServeError::invalid(format!("unknown filter op '{other}'"))),
        })
    }
}

/// A request to the service.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Opens a session over a registered dataset.
    CreateSession {
        dataset: String,
        alpha: f64,
        policy: PolicySpec,
    },
    /// Opens a session under a caller-chosen id — the cluster router's
    /// create path: the router allocates cluster-wide ids so the
    /// consistent-hash ring can place the session before any shard has
    /// seen it. Refused (`invalid_argument`) when the id is already
    /// live or persisted on the shard.
    CreateSessionAs {
        session: SessionId,
        dataset: String,
        alpha: f64,
        policy: PolicySpec,
    },
    /// Quiesces a session on its pinned worker, removes it from the
    /// shard (memory *and* snapshot store), and returns its complete
    /// `AWRS` snapshot image — the shard-handoff half of a migration.
    /// After a successful export the session answers `unknown_session`
    /// here; the wealth ledger lives in the returned bytes.
    ExportSession { session: SessionId },
    /// Installs an exported `AWRS` image under `session` (which must
    /// equal the id inside the image). Restore runs the full snapshot
    /// validation battery and re-derives selections through the
    /// dataset's shared `EvalCache`; the shard's id allocator is bumped
    /// above the imported id.
    ImportSession { session: SessionId, image: Vec<u8> },
    /// Lists registered datasets (name, rows, content fingerprint) and
    /// the shard's next free session id — the roster a router checks
    /// before admitting a shard to the ring.
    ListDatasets,
    /// Admits a shard to a cluster router's ring, migrating exactly the
    /// remapped sessions onto it. A plain `aware-serve` shard answers
    /// `invalid_argument` — only routers rebalance.
    JoinShard { addr: String },
    /// Removes a shard from a cluster router's ring, migrating its
    /// sessions to the surviving shards first.
    LeaveShard { addr: String },
    /// Ships an `AWRS` snapshot image to a warm replica. The receiving
    /// shard runs the image through the full restore validator (decode,
    /// dataset fingerprint, ledger re-validation) and **refuses** any
    /// image that fails it — a diverged replica is discarded, never
    /// adopted. `epoch` is the monotonic replication epoch: a replica
    /// refuses any epoch older than the one it already holds, and
    /// re-applying the current epoch is an idempotent ack.
    ReplicateSession {
        session: SessionId,
        epoch: u64,
        image: Vec<u8>,
    },
    /// Installs the replica image this shard holds for `session` as the
    /// live session — the failover half of replication. The image is
    /// re-read from its durable home and re-validated at promotion
    /// time; a tampered or diverged image answers `corrupt_snapshot`
    /// and the replica is discarded (never adopted as a ledger).
    PromoteReplica { session: SessionId },
    /// Discards the replica image this shard holds for `session`
    /// (topology moved the replica elsewhere, or the session closed).
    /// Idempotent: dropping an absent replica is still an ack.
    DropReplica { session: SessionId },
    /// Returns the session's complete `AWRS` snapshot image *without*
    /// removing the session — the non-destructive half of
    /// `export_session`, used by the router's replication cadence.
    SnapshotSession { session: SessionId },
    /// Lists every session this shard knows about — live or persisted
    /// primaries plus held replica images with their epochs. A
    /// restarting router scans shards with this to rebuild placement
    /// instead of starting blind.
    ListSessions,
    /// Membership gossip: the sender's roster view (ring generation +
    /// per-shard health). The receiver merges the higher generation and
    /// answers with its own view, so peers converge on the ring.
    Gossip {
        from: String,
        generation: u64,
        members: Vec<MemberInfo>,
    },
    /// Places a visualization; may derive and test a hypothesis.
    AddVisualization {
        session: SessionId,
        attribute: String,
        filter: FilterSpec,
    },
    /// Swaps the session's bidding policy for subsequent tests.
    SetPolicy {
        session: SessionId,
        policy: PolicySpec,
    },
    /// Renders the session's risk gauge.
    Gauge { session: SessionId },
    /// Exports the session transcript.
    Transcript {
        session: SessionId,
        format: TranscriptFormat,
    },
    /// Closes (removes) a session.
    CloseSession { session: SessionId },
    /// Server-wide metrics counters.
    Stats,
}

impl Command {
    /// The session this command addresses, if any — the dispatcher keys
    /// ordering and worker routing on it.
    pub fn session(&self) -> Option<SessionId> {
        match *self {
            Command::CreateSessionAs { session, .. }
            | Command::AddVisualization { session, .. }
            | Command::SetPolicy { session, .. }
            | Command::Gauge { session }
            | Command::Transcript { session, .. }
            | Command::CloseSession { session }
            | Command::ExportSession { session }
            | Command::ImportSession { session, .. }
            | Command::ReplicateSession { session, .. }
            | Command::PromoteReplica { session }
            | Command::DropReplica { session }
            | Command::SnapshotSession { session } => Some(session),
            Command::CreateSession { .. }
            | Command::Stats
            | Command::ListDatasets
            | Command::ListSessions
            | Command::JoinShard { .. }
            | Command::LeaveShard { .. }
            | Command::Gossip { .. } => None,
        }
    }

    /// Wire name of the command.
    pub fn name(&self) -> &'static str {
        COMMAND_KINDS[self.kind_index()]
    }

    /// Index into [`COMMAND_KINDS`] — the key the per-command-kind
    /// latency histograms are bucketed by.
    pub fn kind_index(&self) -> usize {
        match self {
            Command::CreateSession { .. } => 0,
            Command::CreateSessionAs { .. } => 1,
            Command::AddVisualization { .. } => 2,
            Command::SetPolicy { .. } => 3,
            Command::Gauge { .. } => 4,
            Command::Transcript { .. } => 5,
            Command::CloseSession { .. } => 6,
            Command::ExportSession { .. } => 7,
            Command::ImportSession { .. } => 8,
            Command::ListDatasets => 9,
            Command::JoinShard { .. } => 10,
            Command::LeaveShard { .. } => 11,
            Command::Stats => 12,
            Command::ReplicateSession { .. } => 13,
            Command::PromoteReplica { .. } => 14,
            Command::DropReplica { .. } => 15,
            Command::SnapshotSession { .. } => 16,
            Command::ListSessions => 17,
            Command::Gossip { .. } => 18,
        }
    }

    /// Encodes as a request object (without an `id`).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("cmd", Json::Str(self.name().into()))];
        match self {
            Command::CreateSession {
                dataset,
                alpha,
                policy,
            } => {
                pairs.push(("dataset", Json::Str(dataset.clone())));
                pairs.push(("alpha", Json::Num(*alpha)));
                pairs.push(("policy", policy.to_json()));
            }
            Command::CreateSessionAs {
                session,
                dataset,
                alpha,
                policy,
            } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("dataset", Json::Str(dataset.clone())));
                pairs.push(("alpha", Json::Num(*alpha)));
                pairs.push(("policy", policy.to_json()));
            }
            Command::ExportSession { session } => {
                pairs.push(("session", Json::Num(*session as f64)));
            }
            Command::ImportSession { session, image } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("image", Json::Str(hex_encode(image))));
            }
            Command::ListDatasets | Command::ListSessions => {}
            Command::JoinShard { addr } | Command::LeaveShard { addr } => {
                pairs.push(("addr", Json::Str(addr.clone())));
            }
            Command::ReplicateSession {
                session,
                epoch,
                image,
            } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("epoch", Json::Num(*epoch as f64)));
                pairs.push(("image", Json::Str(hex_encode(image))));
            }
            Command::PromoteReplica { session }
            | Command::DropReplica { session }
            | Command::SnapshotSession { session } => {
                pairs.push(("session", Json::Num(*session as f64)));
            }
            Command::Gossip {
                from,
                generation,
                members,
            } => {
                pairs.push(("from", Json::Str(from.clone())));
                pairs.push(("generation", Json::Num(*generation as f64)));
                pairs.push(("members", members_to_json(members)));
            }
            Command::AddVisualization {
                session,
                attribute,
                filter,
            } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("attribute", Json::Str(attribute.clone())));
                pairs.push(("filter", filter.to_json()));
            }
            Command::SetPolicy { session, policy } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("policy", policy.to_json()));
            }
            Command::Gauge { session } | Command::CloseSession { session } => {
                pairs.push(("session", Json::Num(*session as f64)));
            }
            Command::Transcript { session, format } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("format", Json::Str(format.as_str().into())));
            }
            Command::Stats => {}
        }
        Json::obj(pairs)
    }

    /// Encodes as one request line (with optional client id).
    pub fn encode_line(&self, id: Option<u64>) -> String {
        let mut json = self.to_json();
        if let (Some(id), Json::Obj(pairs)) = (id, &mut json) {
            pairs.insert(0, ("id".to_string(), Json::Num(id as f64)));
        }
        json.to_string()
    }

    /// Decodes a parsed request object.
    pub fn from_json(v: &Json) -> Result<Command, ServeError> {
        let cmd = req_str(v, "cmd", "request")?;
        let session = || req_u64(v, "session", "request");
        Ok(match cmd {
            "create_session" => Command::CreateSession {
                dataset: req_str(v, "dataset", "request")?.to_string(),
                alpha: req_num(v, "alpha", "request")?,
                policy: PolicySpec::from_json(
                    v.get("policy")
                        .ok_or_else(|| ServeError::invalid("missing 'policy'"))?,
                )?,
            },
            "create_session_as" => Command::CreateSessionAs {
                session: session()?,
                dataset: req_str(v, "dataset", "request")?.to_string(),
                alpha: req_num(v, "alpha", "request")?,
                policy: PolicySpec::from_json(
                    v.get("policy")
                        .ok_or_else(|| ServeError::invalid("missing 'policy'"))?,
                )?,
            },
            "export_session" => Command::ExportSession {
                session: session()?,
            },
            "import_session" => Command::ImportSession {
                session: session()?,
                image: hex_decode(req_str(v, "image", "request")?)?,
            },
            "list_datasets" => Command::ListDatasets,
            "join_shard" => Command::JoinShard {
                addr: req_str(v, "addr", "request")?.to_string(),
            },
            "leave_shard" => Command::LeaveShard {
                addr: req_str(v, "addr", "request")?.to_string(),
            },
            "replicate_session" => Command::ReplicateSession {
                session: session()?,
                epoch: req_u64(v, "epoch", "request")?,
                image: hex_decode(req_str(v, "image", "request")?)?,
            },
            "promote_replica" => Command::PromoteReplica {
                session: session()?,
            },
            "drop_replica" => Command::DropReplica {
                session: session()?,
            },
            "snapshot_session" => Command::SnapshotSession {
                session: session()?,
            },
            "list_sessions" => Command::ListSessions,
            "gossip" => Command::Gossip {
                from: req_str(v, "from", "request")?.to_string(),
                generation: req_u64(v, "generation", "request")?,
                members: members_from_json(v.get("members"))?,
            },
            "add_visualization" => Command::AddVisualization {
                session: session()?,
                attribute: req_str(v, "attribute", "request")?.to_string(),
                filter: match v.get("filter") {
                    None => FilterSpec::True,
                    Some(f) => FilterSpec::from_json(f)?,
                },
            },
            "set_policy" => Command::SetPolicy {
                session: session()?,
                policy: PolicySpec::from_json(
                    v.get("policy")
                        .ok_or_else(|| ServeError::invalid("missing 'policy'"))?,
                )?,
            },
            "gauge" => Command::Gauge {
                session: session()?,
            },
            "transcript" => Command::Transcript {
                session: session()?,
                format: match v.get("format").and_then(Json::as_str) {
                    None | Some("csv") => TranscriptFormat::Csv,
                    Some("text") => TranscriptFormat::Text,
                    Some(other) => {
                        return Err(ServeError::invalid(format!(
                            "unknown transcript format '{other}' (expected csv | text)"
                        )))
                    }
                },
            },
            "close_session" => Command::CloseSession {
                session: session()?,
            },
            "stats" => Command::Stats,
            other => {
                return Err(ServeError {
                    code: ErrorCode::UnknownCommand,
                    message: format!("unknown command '{other}'"),
                })
            }
        })
    }

    /// Parses one request line; returns the command and the echoed id.
    pub fn decode_line(line: &str) -> Result<(Command, Option<u64>), ServeError> {
        let v = Json::parse(line.trim()).map_err(|e| ServeError {
            code: ErrorCode::BadRequest,
            message: e.to_string(),
        })?;
        let id = v.get("id").and_then(Json::as_u64);
        Ok((Command::from_json(&v)?, id))
    }
}

/// The tested-hypothesis payload inside a [`Response::VizAdded`].
#[derive(Debug, Clone, PartialEq)]
pub struct HypothesisReport {
    pub id: u64,
    pub test: String,
    pub statistic: f64,
    pub p_value: f64,
    pub bid: f64,
    pub rejected: bool,
    pub effect_size: f64,
    pub support_fraction: f64,
    pub wealth_after: f64,
}

impl HypothesisReport {
    /// Builds from a session test record.
    pub fn from_record(id: u64, record: &TestRecord) -> HypothesisReport {
        HypothesisReport {
            id,
            test: record.outcome.kind.to_string(),
            statistic: record.outcome.statistic,
            p_value: record.outcome.p_value,
            bid: record.bid,
            rejected: record.decision.is_rejection(),
            effect_size: record.outcome.effect_size,
            support_fraction: record.support_fraction,
            wealth_after: record.wealth_after,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Num(self.id as f64)),
            ("test", Json::Str(self.test.clone())),
            ("statistic", Json::Num(self.statistic)),
            ("p_value", Json::Num(self.p_value)),
            ("bid", Json::Num(self.bid)),
            ("rejected", Json::Bool(self.rejected)),
            ("effect_size", Json::Num(self.effect_size)),
            ("support_fraction", Json::Num(self.support_fraction)),
            ("wealth_after", Json::Num(self.wealth_after)),
        ])
    }
}

/// Upper edges of the batch-size histogram buckets reported in
/// [`StatsSnapshot::batch_size_hist`]: sizes 1, 2–8, 9–64, 65–256, and
/// everything larger. The edges match the serve bench's batch sizes.
pub const BATCH_SIZE_BUCKETS: [u64; 4] = [1, 8, 64, 256];

/// Wire names of every command, in [`Command::kind_index`] order.
/// Metrics key their per-kind latency histograms by this index, and
/// the exposition endpoint labels the resulting summaries with these
/// names.
pub const COMMAND_KINDS: [&str; 19] = [
    "create_session",
    "create_session_as",
    "add_visualization",
    "set_policy",
    "gauge",
    "transcript",
    "close_session",
    "export_session",
    "import_session",
    "list_datasets",
    "join_shard",
    "leave_shard",
    "stats",
    "replicate_session",
    "promote_replica",
    "drop_replica",
    "snapshot_session",
    "list_sessions",
    "gossip",
];

/// Health of one cluster member as carried by `gossip` — SWIM-style
/// three-state so one missed probe (suspect) doesn't flap the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberStatus {
    Alive,
    Suspect,
    Dead,
}

impl MemberStatus {
    /// Wire byte / JSON number for the status.
    pub fn as_u8(self) -> u8 {
        match self {
            MemberStatus::Alive => 0,
            MemberStatus::Suspect => 1,
            MemberStatus::Dead => 2,
        }
    }

    /// Decodes the wire byte; unknown values are rejected.
    pub fn from_u8(b: u8) -> Result<MemberStatus, ServeError> {
        Ok(match b {
            0 => MemberStatus::Alive,
            1 => MemberStatus::Suspect,
            2 => MemberStatus::Dead,
            other => {
                return Err(ServeError::invalid(format!(
                    "unknown member status {other} (expected 0 | 1 | 2)"
                )))
            }
        })
    }

    /// Human-readable name (log lines, metrics labels).
    pub fn as_str(self) -> &'static str {
        match self {
            MemberStatus::Alive => "alive",
            MemberStatus::Suspect => "suspect",
            MemberStatus::Dead => "dead",
        }
    }
}

/// One cluster member in a `gossip` exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberInfo {
    /// The member's address, as named at `join_shard` time.
    pub addr: String,
    pub status: MemberStatus,
    /// Monotone per-member counter: a higher incarnation wins a merge,
    /// so a refuted suspicion can override a stale `suspect` claim.
    pub incarnation: u64,
}

/// One session in a `list_sessions` reply: a primary copy (live or
/// persisted on the shard) or a held replica image with its
/// replication epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionEntry {
    pub session: SessionId,
    /// True when this shard holds only a replica image of the session.
    pub replica: bool,
    /// Replication epoch of the held image (0 for primaries — the
    /// epoch is the router's bookkeeping, not the shard's).
    pub epoch: u64,
}

fn members_to_json(members: &[MemberInfo]) -> Json {
    Json::Arr(
        members
            .iter()
            .map(|m| {
                Json::obj(vec![
                    ("addr", Json::Str(m.addr.clone())),
                    ("status", Json::Num(f64::from(m.status.as_u8()))),
                    ("incarnation", Json::Num(m.incarnation as f64)),
                ])
            })
            .collect(),
    )
}

fn members_from_json(v: Option<&Json>) -> Result<Vec<MemberInfo>, ServeError> {
    match v.and_then(Json::as_arr) {
        None => Ok(Vec::new()),
        Some(items) => items
            .iter()
            .map(|m| {
                Ok(MemberInfo {
                    addr: req_str(m, "addr", "member")?.to_string(),
                    status: MemberStatus::from_u8(
                        u8::try_from(req_u64(m, "status", "member")?)
                            .map_err(|_| ServeError::invalid("member status out of range"))?,
                    )?,
                    incarnation: m.get("incarnation").and_then(Json::as_u64).unwrap_or(0),
                })
            })
            .collect(),
    }
}

/// One registered dataset as reported by [`Command::ListDatasets`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    pub name: String,
    pub rows: u64,
    /// Content fingerprint ([`aware_data::table::Table::fingerprint`]):
    /// a router admits a shard only when its roster fingerprints match,
    /// and a session import refuses a mismatched table.
    pub fingerprint: u64,
}

/// Health and traffic of one backend shard, as reported in a cluster
/// router's `stats`. Rides the JSON surface only — the binary stats
/// payload stays the count-prefixed scalar list, so pre-cluster peers
/// keep decoding it untouched.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardHealth {
    /// The shard's address, as named at `join_shard` time.
    pub addr: String,
    /// False once the router has observed a connection-level failure
    /// that its health probe has not yet cleared.
    pub healthy: bool,
    /// Live sessions the shard reported on its last successful probe.
    pub sessions_live: u64,
    /// Commands this router forwarded to the shard.
    pub forwarded: u64,
    /// Connection-level failures observed against the shard.
    pub errors: u64,
}

/// Per-session risk telemetry, as reported in `stats` — the
/// information-usage view of PAPERS.md made operational: risk is a
/// gauge to export while the exploration runs, not just a terminal
/// verdict. JSON-surface only, like [`ShardHealth`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionRisk {
    pub session: SessionId,
    pub dataset: String,
    /// Remaining α-wealth.
    pub wealth: f64,
    /// Hypotheses tested so far.
    pub tests_run: u64,
    /// Rejections (discoveries) so far.
    pub discoveries: u64,
    /// Cumulative α spent: the sum of every test's bid — the
    /// information-usage-style readout of how much error budget the
    /// exploration has consumed to date.
    pub risk_spent: f64,
}

/// Server-wide counters, as returned by [`Command::Stats`].
///
/// `PartialEq` only (no `Eq`): [`SessionRisk`] carries `f64` gauges.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    pub sessions_created: u64,
    pub sessions_closed: u64,
    pub sessions_evicted: u64,
    pub sessions_live: u64,
    pub commands: u64,
    pub hypotheses_tested: u64,
    pub discoveries: u64,
    pub rejected_by_budget: u64,
    pub errors: u64,
    /// Dispatch units accepted by `call_batch` (a single `call` counts
    /// as a batch of one).
    pub batches: u64,
    /// Commands carried inside those batches.
    pub batch_commands: u64,
    /// Work refused by backpressure: session capacity or a session's
    /// pending-command cap.
    pub overloaded: u64,
    /// Wire messages received on the NDJSON surface.
    pub ndjson_requests: u64,
    /// Wire frames received on the binary surface.
    pub binary_frames: u64,
    /// Evaluation-cache probes answered from the cache, summed over
    /// every registered dataset's shared cache.
    pub cache_hits: u64,
    /// Evaluation-cache probes that had to evaluate cold.
    pub cache_misses: u64,
    /// Sessions with a durable snapshot on disk — both live sessions
    /// that have been snapshotted and sessions spilled out of memory.
    /// Zero when the server runs without a `--data-dir`.
    pub persisted: u64,
    /// Commands a cluster router forwarded to backend shards (always 0
    /// on a plain `aware-serve`). Rides the count-prefixed binary
    /// scalar list — no protocol-version bump, same as `persisted`.
    pub forwarded: u64,
    /// Sessions a cluster router migrated between shards during
    /// `join_shard`/`leave_shard` rebalancing.
    pub migrations: u64,
    /// Connection-level shard failures a cluster router observed.
    pub shard_errors: u64,
    /// Whole seconds since the process (registry epoch) started.
    /// Binary field 20 on the count-prefixed scalar list.
    pub uptime_seconds: u64,
    /// Command latency quantiles in microseconds, reconstructed from
    /// the server's log-linear histograms (relative error ≤ 1/16).
    /// Queue wait + execute, merged across every command kind. A
    /// router reports the max over itself and its shards — an honest
    /// upper bound, since quantiles don't sum. Binary fields 21–24.
    pub latency_p50_us: u64,
    pub latency_p90_us: u64,
    pub latency_p99_us: u64,
    pub latency_p999_us: u64,
    /// Commands that crossed the `--slow-ms` threshold and emitted a
    /// slow-query record. Binary field 25.
    pub slow_queries: u64,
    /// Replica images this shard holds for sessions whose primary
    /// lives elsewhere (a router sums its shards'). Binary field 26 —
    /// the fifth no-version-bump scalar-list extension starts here.
    pub replicas_live: u64,
    /// Worst replication staleness across sessions, in epochs: 0 means
    /// every session's replicas have acked its latest image. Router
    /// bookkeeping; always 0 on a plain serve. Binary field 27.
    pub replication_lag_max_epochs: u64,
    /// Replicas promoted to primary by automatic failover. Binary
    /// field 28.
    pub promotions: u64,
    /// Read-only commands the router raced against a caught-up replica
    /// (first valid answer won). Binary field 29.
    pub hedged_reads: u64,
    /// Shard round trips abandoned on a blown deadline (connect, read,
    /// or write timeout). Router bookkeeping; always 0 on a plain
    /// serve. Binary field 30 — the sixth no-version-bump scalar-list
    /// extension starts here.
    pub shard_timeouts: u64,
    /// Closed/half-open → open circuit-breaker transitions across the
    /// router's shards. Binary field 31.
    pub breaker_opens: u64,
    /// Calls shed without touching the network while a shard's breaker
    /// was open. Binary field 32.
    pub breaker_shed: u64,
    /// Connections currently open on the reactor front end (a gauge;
    /// 0 under thread-per-connection). Binary field 33 — the seventh
    /// no-version-bump scalar-list extension starts here.
    pub reactor_connections: u64,
    /// Readiness wakeups the event loop has serviced. Binary field 34.
    pub reactor_wakeups: u64,
    /// Unsolicited push frames delivered to subscribed connections.
    /// Binary field 35.
    pub push_frames: u64,
    /// Times deficit-round-robin draining made a saturated session
    /// yield its worker turn to a neighbour. Binary field 36.
    pub drr_deferrals: u64,
    /// Batch sizes by bucket; edges in [`BATCH_SIZE_BUCKETS`].
    pub batch_size_hist: [u64; 5],
    /// Per-shard health breakdown (cluster routers only; empty on a
    /// plain serve). JSON-surface only: the binary stats payload is
    /// the scalar list + histogram, unchanged.
    pub shards: Vec<ShardHealth>,
    /// Per-session risk telemetry (capped at the busiest
    /// [`MAX_RISK_SESSIONS`] by id). JSON-surface only, like `shards`.
    pub sessions: Vec<SessionRisk>,
}

/// Cap on the per-session risk rows a `stats` reply carries: enough
/// for dashboards, bounded so a 65k-session server doesn't ship a
/// megabyte of telemetry per scrape.
pub const MAX_RISK_SESSIONS: usize = 128;

impl StatsSnapshot {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("sessions_created", Json::Num(self.sessions_created as f64)),
            ("sessions_closed", Json::Num(self.sessions_closed as f64)),
            ("sessions_evicted", Json::Num(self.sessions_evicted as f64)),
            ("sessions_live", Json::Num(self.sessions_live as f64)),
            ("commands", Json::Num(self.commands as f64)),
            (
                "hypotheses_tested",
                Json::Num(self.hypotheses_tested as f64),
            ),
            ("discoveries", Json::Num(self.discoveries as f64)),
            (
                "rejected_by_budget",
                Json::Num(self.rejected_by_budget as f64),
            ),
            ("errors", Json::Num(self.errors as f64)),
            ("batches", Json::Num(self.batches as f64)),
            ("batch_commands", Json::Num(self.batch_commands as f64)),
            ("overloaded", Json::Num(self.overloaded as f64)),
            ("ndjson_requests", Json::Num(self.ndjson_requests as f64)),
            ("binary_frames", Json::Num(self.binary_frames as f64)),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("cache_misses", Json::Num(self.cache_misses as f64)),
            ("persisted", Json::Num(self.persisted as f64)),
            ("forwarded", Json::Num(self.forwarded as f64)),
            ("migrations", Json::Num(self.migrations as f64)),
            ("shard_errors", Json::Num(self.shard_errors as f64)),
            ("uptime_seconds", Json::Num(self.uptime_seconds as f64)),
            ("latency_p50_us", Json::Num(self.latency_p50_us as f64)),
            ("latency_p90_us", Json::Num(self.latency_p90_us as f64)),
            ("latency_p99_us", Json::Num(self.latency_p99_us as f64)),
            ("latency_p999_us", Json::Num(self.latency_p999_us as f64)),
            ("slow_queries", Json::Num(self.slow_queries as f64)),
            ("replicas_live", Json::Num(self.replicas_live as f64)),
            (
                "replication_lag_max_epochs",
                Json::Num(self.replication_lag_max_epochs as f64),
            ),
            ("promotions", Json::Num(self.promotions as f64)),
            ("hedged_reads", Json::Num(self.hedged_reads as f64)),
            ("shard_timeouts", Json::Num(self.shard_timeouts as f64)),
            ("breaker_opens", Json::Num(self.breaker_opens as f64)),
            ("breaker_shed", Json::Num(self.breaker_shed as f64)),
            (
                "reactor_connections",
                Json::Num(self.reactor_connections as f64),
            ),
            ("reactor_wakeups", Json::Num(self.reactor_wakeups as f64)),
            ("push_frames", Json::Num(self.push_frames as f64)),
            ("drr_deferrals", Json::Num(self.drr_deferrals as f64)),
            (
                "batch_size_hist",
                Json::Arr(
                    self.batch_size_hist
                        .iter()
                        .map(|&n| Json::Num(n as f64))
                        .collect(),
                ),
            ),
        ];
        if !self.shards.is_empty() {
            pairs.push((
                "shards",
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("addr", Json::Str(s.addr.clone())),
                                ("healthy", Json::Bool(s.healthy)),
                                ("sessions_live", Json::Num(s.sessions_live as f64)),
                                ("forwarded", Json::Num(s.forwarded as f64)),
                                ("errors", Json::Num(s.errors as f64)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if !self.sessions.is_empty() {
            pairs.push((
                "sessions",
                Json::Arr(
                    self.sessions
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("session", Json::Num(s.session as f64)),
                                ("dataset", Json::Str(s.dataset.clone())),
                                ("wealth", Json::Num(s.wealth)),
                                ("tests_run", Json::Num(s.tests_run as f64)),
                                ("discoveries", Json::Num(s.discoveries as f64)),
                                ("risk_spent", Json::Num(s.risk_spent)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::obj(pairs)
    }

    fn from_json(v: &Json) -> Result<StatsSnapshot, ServeError> {
        let field = |name: &str| req_u64(v, name, "stats");
        // The v2 counters decode leniently (missing -> 0) so a snapshot
        // from an older server still parses.
        let lenient = |name: &str| v.get(name).and_then(Json::as_u64).unwrap_or(0);
        let mut batch_size_hist = [0u64; 5];
        if let Some(buckets) = v.get("batch_size_hist").and_then(Json::as_arr) {
            for (slot, bucket) in batch_size_hist.iter_mut().zip(buckets) {
                *slot = bucket.as_u64().unwrap_or(0);
            }
        }
        Ok(StatsSnapshot {
            sessions_created: field("sessions_created")?,
            sessions_closed: field("sessions_closed")?,
            sessions_evicted: field("sessions_evicted")?,
            sessions_live: field("sessions_live")?,
            commands: field("commands")?,
            hypotheses_tested: field("hypotheses_tested")?,
            discoveries: field("discoveries")?,
            rejected_by_budget: field("rejected_by_budget")?,
            errors: field("errors")?,
            batches: lenient("batches"),
            batch_commands: lenient("batch_commands"),
            overloaded: lenient("overloaded"),
            ndjson_requests: lenient("ndjson_requests"),
            binary_frames: lenient("binary_frames"),
            cache_hits: lenient("cache_hits"),
            cache_misses: lenient("cache_misses"),
            persisted: lenient("persisted"),
            forwarded: lenient("forwarded"),
            migrations: lenient("migrations"),
            shard_errors: lenient("shard_errors"),
            uptime_seconds: lenient("uptime_seconds"),
            latency_p50_us: lenient("latency_p50_us"),
            latency_p90_us: lenient("latency_p90_us"),
            latency_p99_us: lenient("latency_p99_us"),
            latency_p999_us: lenient("latency_p999_us"),
            slow_queries: lenient("slow_queries"),
            replicas_live: lenient("replicas_live"),
            replication_lag_max_epochs: lenient("replication_lag_max_epochs"),
            promotions: lenient("promotions"),
            hedged_reads: lenient("hedged_reads"),
            shard_timeouts: lenient("shard_timeouts"),
            breaker_opens: lenient("breaker_opens"),
            breaker_shed: lenient("breaker_shed"),
            reactor_connections: lenient("reactor_connections"),
            reactor_wakeups: lenient("reactor_wakeups"),
            push_frames: lenient("push_frames"),
            drr_deferrals: lenient("drr_deferrals"),
            batch_size_hist,
            shards: match v.get("shards").and_then(Json::as_arr) {
                None => Vec::new(),
                Some(items) => items
                    .iter()
                    .map(|s| {
                        Ok(ShardHealth {
                            addr: req_str(s, "addr", "shard health")?.to_string(),
                            healthy: s.get("healthy").and_then(Json::as_bool).unwrap_or(false),
                            sessions_live: s
                                .get("sessions_live")
                                .and_then(Json::as_u64)
                                .unwrap_or(0),
                            forwarded: s.get("forwarded").and_then(Json::as_u64).unwrap_or(0),
                            errors: s.get("errors").and_then(Json::as_u64).unwrap_or(0),
                        })
                    })
                    .collect::<Result<_, ServeError>>()?,
            },
            sessions: match v.get("sessions").and_then(Json::as_arr) {
                None => Vec::new(),
                Some(items) => items
                    .iter()
                    .map(|s| {
                        Ok(SessionRisk {
                            session: req_u64(s, "session", "session risk")?,
                            dataset: s
                                .get("dataset")
                                .and_then(Json::as_str)
                                .unwrap_or_default()
                                .to_string(),
                            wealth: s.get("wealth").and_then(Json::as_f64).unwrap_or(0.0),
                            tests_run: s.get("tests_run").and_then(Json::as_u64).unwrap_or(0),
                            discoveries: s.get("discoveries").and_then(Json::as_u64).unwrap_or(0),
                            risk_spent: s.get("risk_spent").and_then(Json::as_f64).unwrap_or(0.0),
                        })
                    })
                    .collect::<Result<_, ServeError>>()?,
            },
        })
    }
}

/// A reply from the service.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    SessionCreated {
        session: SessionId,
        wealth: f64,
        policy: String,
    },
    VizAdded {
        session: SessionId,
        viz: u64,
        wealth: f64,
        hypothesis: Option<HypothesisReport>,
    },
    PolicySet {
        session: SessionId,
        policy: String,
    },
    GaugeText {
        session: SessionId,
        text: String,
    },
    TranscriptText {
        session: SessionId,
        format: TranscriptFormat,
        text: String,
    },
    SessionClosed {
        session: SessionId,
        hypotheses: u64,
        discoveries: u64,
    },
    /// The complete `AWRS` snapshot image of a just-exported (and now
    /// removed) session.
    SessionExported {
        session: SessionId,
        image: Vec<u8>,
    },
    /// A successfully imported session, reporting the wealth its
    /// restored ledger carries.
    SessionImported {
        session: SessionId,
        wealth: f64,
    },
    /// The dataset roster plus the shard's next free session id.
    Datasets {
        datasets: Vec<DatasetInfo>,
        next_session: u64,
    },
    /// Outcome of a `join_shard`/`leave_shard` rebalance.
    Rebalanced {
        addr: String,
        joined: bool,
        migrated: u64,
    },
    /// Ack of a `replicate_session`: the shard durably holds the image
    /// for this epoch and the image survived the full restore
    /// validator.
    SessionReplicated {
        session: SessionId,
        epoch: u64,
    },
    /// A replica image installed as the live session by
    /// `promote_replica`, reporting the epoch of the promoted image
    /// and the wealth its re-validated ledger carries.
    ReplicaPromoted {
        session: SessionId,
        epoch: u64,
        wealth: f64,
    },
    /// Ack of a `drop_replica` (idempotent).
    ReplicaDropped {
        session: SessionId,
    },
    /// Every session the shard knows about (`list_sessions`).
    Sessions {
        sessions: Vec<SessionEntry>,
    },
    /// The receiver's membership view after merging a `gossip`.
    GossipView {
        generation: u64,
        members: Vec<MemberInfo>,
    },
    Stats(Box<StatsSnapshot>),
    /// An unsolicited server-push notification, delivered as an id-0
    /// envelope to connections that negotiated the push capability.
    /// Never sent in answer to a command.
    Push(PushEvent),
    Error(ServeError),
}

/// What a push-subscribed connection can be told without asking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushEvent {
    /// A session was evicted from memory (`reason` is `"idle"` or
    /// `"lru"`). With persistence the session spilled to disk and a
    /// later command restores it lazily; without, its budget is gone —
    /// either way the dashboard should know its gauge is stale.
    SessionEvicted { session: SessionId, reason: String },
    /// A dataset was re-registered: its shared evaluation cache was
    /// rebuilt, so any client-side caching keyed on the old dataset
    /// fingerprint is invalid.
    CacheReset { dataset: String },
}

impl Response {
    /// True for non-error responses.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Error(_))
    }

    /// Encodes as a response object (without an `id`).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![("ok", Json::Bool(self.is_ok()))];
        match self {
            Response::SessionCreated {
                session,
                wealth,
                policy,
            } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("wealth", Json::Num(*wealth)));
                pairs.push(("policy", Json::Str(policy.clone())));
            }
            Response::VizAdded {
                session,
                viz,
                wealth,
                hypothesis,
            } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("viz", Json::Num(*viz as f64)));
                pairs.push(("wealth", Json::Num(*wealth)));
                pairs.push((
                    "hypothesis",
                    hypothesis
                        .as_ref()
                        .map(HypothesisReport::to_json)
                        .unwrap_or(Json::Null),
                ));
            }
            Response::PolicySet { session, policy } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("policy", Json::Str(policy.clone())));
            }
            Response::GaugeText { session, text } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("gauge", Json::Str(text.clone())));
            }
            Response::TranscriptText {
                session,
                format,
                text,
            } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("format", Json::Str(format.as_str().into())));
                pairs.push(("transcript", Json::Str(text.clone())));
            }
            Response::SessionClosed {
                session,
                hypotheses,
                discoveries,
            } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("hypotheses", Json::Num(*hypotheses as f64)));
                pairs.push(("discoveries", Json::Num(*discoveries as f64)));
            }
            Response::SessionExported { session, image } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("image", Json::Str(hex_encode(image))));
            }
            Response::SessionImported { session, wealth } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("imported", Json::Bool(true)));
                pairs.push(("wealth", Json::Num(*wealth)));
            }
            Response::Datasets {
                datasets,
                next_session,
            } => {
                pairs.push((
                    "datasets",
                    Json::Arr(
                        datasets
                            .iter()
                            .map(|d| {
                                Json::obj(vec![
                                    ("name", Json::Str(d.name.clone())),
                                    ("rows", Json::Num(d.rows as f64)),
                                    // u64 fingerprints exceed f64's exact
                                    // integer range; hex keeps the bits.
                                    ("fingerprint", Json::Str(format!("{:016x}", d.fingerprint))),
                                ])
                            })
                            .collect(),
                    ),
                ));
                pairs.push(("next_session", Json::Num(*next_session as f64)));
            }
            Response::Rebalanced {
                addr,
                joined,
                migrated,
            } => {
                pairs.push(("addr", Json::Str(addr.clone())));
                pairs.push(("joined", Json::Bool(*joined)));
                pairs.push(("migrated", Json::Num(*migrated as f64)));
            }
            Response::SessionReplicated { session, epoch } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("replicated", Json::Bool(true)));
                pairs.push(("epoch", Json::Num(*epoch as f64)));
            }
            Response::ReplicaPromoted {
                session,
                epoch,
                wealth,
            } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("promoted", Json::Bool(true)));
                pairs.push(("epoch", Json::Num(*epoch as f64)));
                pairs.push(("wealth", Json::Num(*wealth)));
            }
            Response::ReplicaDropped { session } => {
                pairs.push(("session", Json::Num(*session as f64)));
                pairs.push(("dropped", Json::Bool(true)));
            }
            Response::Sessions { sessions } => {
                pairs.push((
                    "sessions",
                    Json::Arr(
                        sessions
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("session", Json::Num(s.session as f64)),
                                    ("replica", Json::Bool(s.replica)),
                                    ("epoch", Json::Num(s.epoch as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Response::GossipView {
                generation,
                members,
            } => {
                pairs.push(("generation", Json::Num(*generation as f64)));
                pairs.push(("members", members_to_json(members)));
            }
            Response::Stats(snapshot) => {
                pairs.push(("stats", snapshot.to_json()));
            }
            Response::Push(event) => {
                let body = match event {
                    PushEvent::SessionEvicted { session, reason } => Json::obj(vec![
                        ("event", Json::Str("session_evicted".into())),
                        ("session", Json::Num(*session as f64)),
                        ("reason", Json::Str(reason.clone())),
                    ]),
                    PushEvent::CacheReset { dataset } => Json::obj(vec![
                        ("event", Json::Str("cache_reset".into())),
                        ("dataset", Json::Str(dataset.clone())),
                    ]),
                };
                pairs.push(("push", body));
            }
            Response::Error(e) => {
                pairs.push((
                    "error",
                    Json::obj(vec![
                        ("code", Json::Str(e.code.as_str().into())),
                        ("message", Json::Str(e.message.clone())),
                    ]),
                ));
            }
        }
        Json::obj(pairs)
    }

    /// Encodes as one response line (echoing the request id, if any).
    pub fn encode_line(&self, id: Option<u64>) -> String {
        let mut json = self.to_json();
        if let (Some(id), Json::Obj(pairs)) = (id, &mut json) {
            pairs.insert(0, ("id".to_string(), Json::Num(id as f64)));
        }
        json.to_string()
    }

    /// Decodes one response line (used by clients and tests); returns the
    /// response and the echoed id.
    pub fn decode_line(line: &str) -> Result<(Response, Option<u64>), ServeError> {
        let v = Json::parse(line.trim()).map_err(|e| ServeError {
            code: ErrorCode::BadRequest,
            message: e.to_string(),
        })?;
        let id = v.get("id").and_then(Json::as_u64);
        Ok((Response::from_json(&v)?, id))
    }

    /// Decodes a parsed response object (the per-item payload of a batch
    /// reply, or one v1 response line minus its id).
    pub fn from_json(v: &Json) -> Result<Response, ServeError> {
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| ServeError::invalid("response missing 'ok'"))?;
        if !ok {
            let err = v
                .get("error")
                .ok_or_else(|| ServeError::invalid("missing 'error'"))?;
            return Ok(Response::Error(ServeError {
                code: ErrorCode::parse(req_str(err, "code", "error")?),
                message: req_str(err, "message", "error")?.to_string(),
            }));
        }
        let session = || req_u64(v, "session", "response");
        let response = if let Some(push) = v.get("push") {
            match push.get("event").and_then(Json::as_str) {
                Some("session_evicted") => Response::Push(PushEvent::SessionEvicted {
                    session: req_u64(push, "session", "push")?,
                    reason: req_str(push, "reason", "push")?.to_string(),
                }),
                Some("cache_reset") => Response::Push(PushEvent::CacheReset {
                    dataset: req_str(push, "dataset", "push")?.to_string(),
                }),
                _ => return Err(ServeError::invalid("unknown push event")),
            }
        } else if let Some(stats) = v.get("stats") {
            Response::Stats(Box::new(StatsSnapshot::from_json(stats)?))
        } else if let Some(image) = v.get("image") {
            Response::SessionExported {
                session: session()?,
                image: hex_decode(
                    image
                        .as_str()
                        .ok_or_else(|| ServeError::invalid("bad 'image'"))?,
                )?,
            }
        } else if v.get("imported").is_some() {
            Response::SessionImported {
                session: session()?,
                wealth: req_num(v, "wealth", "response")?,
            }
        } else if v.get("replicated").is_some() {
            Response::SessionReplicated {
                session: session()?,
                epoch: req_u64(v, "epoch", "response")?,
            }
        } else if v.get("promoted").is_some() {
            Response::ReplicaPromoted {
                session: session()?,
                epoch: req_u64(v, "epoch", "response")?,
                wealth: req_num(v, "wealth", "response")?,
            }
        } else if v.get("dropped").is_some() {
            Response::ReplicaDropped {
                session: session()?,
            }
        } else if let Some(sessions) = v.get("sessions") {
            Response::Sessions {
                sessions: sessions
                    .as_arr()
                    .ok_or_else(|| ServeError::invalid("'sessions' must be an array"))?
                    .iter()
                    .map(|s| {
                        Ok(SessionEntry {
                            session: req_u64(s, "session", "session entry")?,
                            replica: s.get("replica").and_then(Json::as_bool).unwrap_or(false),
                            epoch: s.get("epoch").and_then(Json::as_u64).unwrap_or(0),
                        })
                    })
                    .collect::<Result<_, ServeError>>()?,
            }
        } else if let Some(members) = v.get("members") {
            Response::GossipView {
                generation: req_u64(v, "generation", "response")?,
                members: members_from_json(Some(members))?,
            }
        } else if let Some(datasets) = v.get("datasets") {
            Response::Datasets {
                datasets: datasets
                    .as_arr()
                    .ok_or_else(|| ServeError::invalid("'datasets' must be an array"))?
                    .iter()
                    .map(|d| {
                        Ok(DatasetInfo {
                            name: req_str(d, "name", "dataset")?.to_string(),
                            rows: req_u64(d, "rows", "dataset")?,
                            fingerprint: u64::from_str_radix(
                                req_str(d, "fingerprint", "dataset")?,
                                16,
                            )
                            .map_err(|_| ServeError::invalid("bad dataset fingerprint"))?,
                        })
                    })
                    .collect::<Result<_, ServeError>>()?,
                next_session: req_u64(v, "next_session", "response")?,
            }
        } else if let Some(joined) = v.get("joined") {
            Response::Rebalanced {
                addr: req_str(v, "addr", "response")?.to_string(),
                joined: joined
                    .as_bool()
                    .ok_or_else(|| ServeError::invalid("bad 'joined'"))?,
                migrated: req_u64(v, "migrated", "response")?,
            }
        } else if let Some(gauge) = v.get("gauge") {
            Response::GaugeText {
                session: session()?,
                text: gauge.as_str().unwrap_or("").into(),
            }
        } else if let Some(t) = v.get("transcript") {
            Response::TranscriptText {
                session: session()?,
                format: match v.get("format").and_then(Json::as_str) {
                    Some("text") => TranscriptFormat::Text,
                    _ => TranscriptFormat::Csv,
                },
                text: t.as_str().unwrap_or("").into(),
            }
        } else if let Some(viz) = v.get("viz") {
            Response::VizAdded {
                session: session()?,
                viz: viz
                    .as_u64()
                    .ok_or_else(|| ServeError::invalid("bad 'viz'"))?,
                wealth: req_num(v, "wealth", "response")?,
                hypothesis: match v.get("hypothesis") {
                    None | Some(Json::Null) => None,
                    Some(h) => Some(HypothesisReport {
                        id: req_u64(h, "id", "hypothesis")?,
                        test: req_str(h, "test", "hypothesis")?.to_string(),
                        statistic: req_num(h, "statistic", "hypothesis")?,
                        p_value: req_num(h, "p_value", "hypothesis")?,
                        bid: req_num(h, "bid", "hypothesis")?,
                        rejected: h
                            .get("rejected")
                            .and_then(Json::as_bool)
                            .ok_or_else(|| ServeError::invalid("bad 'rejected'"))?,
                        effect_size: req_num(h, "effect_size", "hypothesis")?,
                        support_fraction: req_num(h, "support_fraction", "hypothesis")?,
                        wealth_after: req_num(h, "wealth_after", "hypothesis")?,
                    }),
                },
            }
        } else if let Some(h) = v.get("hypotheses") {
            Response::SessionClosed {
                session: session()?,
                hypotheses: h
                    .as_u64()
                    .ok_or_else(|| ServeError::invalid("bad 'hypotheses'"))?,
                discoveries: req_u64(v, "discoveries", "response")?,
            }
        } else if v.get("wealth").is_some() && v.get("policy").is_some() {
            Response::SessionCreated {
                session: session()?,
                wealth: req_num(v, "wealth", "response")?,
                policy: req_str(v, "policy", "response")?.to_string(),
            }
        } else if let Some(policy) = v.get("policy") {
            Response::PolicySet {
                session: session()?,
                policy: policy.as_str().unwrap_or("").to_string(),
            }
        } else {
            return Err(ServeError::invalid("unrecognized response shape"));
        };
        Ok(response)
    }
}

// -- byte-string helpers ----------------------------------------------------

/// Lowercase hex of `bytes` — how snapshot images travel on the JSON
/// surface (the binary surface carries them raw, length-prefixed).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).unwrap());
        out.push(char::from_digit(u32::from(b & 0xf), 16).unwrap());
    }
    out
}

/// Inverse of [`hex_encode`]; rejects odd lengths and non-hex digits.
pub fn hex_decode(text: &str) -> Result<Vec<u8>, ServeError> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(ServeError::invalid("hex byte string has odd length"));
    }
    let digit = |b: u8| -> Result<u8, ServeError> {
        (b as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or_else(|| ServeError::invalid(format!("invalid hex digit '{}'", b as char)))
    };
    bytes
        .chunks_exact(2)
        .map(|pair| Ok((digit(pair[0])? << 4) | digit(pair[1])?))
        .collect()
}

// -- field helpers ----------------------------------------------------------

fn req_str<'a>(v: &'a Json, field: &str, ctx: &str) -> Result<&'a str, ServeError> {
    v.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::invalid(format!("{ctx} missing string field '{field}'")))
}

fn req_num(v: &Json, field: &str, ctx: &str) -> Result<f64, ServeError> {
    v.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| ServeError::invalid(format!("{ctx} missing numeric field '{field}'")))
}

fn req_u64(v: &Json, field: &str, ctx: &str) -> Result<u64, ServeError> {
    v.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| ServeError::invalid(format!("{ctx} missing integer field '{field}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_cmd(cmd: Command) {
        let line = cmd.encode_line(Some(7));
        let (decoded, id) = Command::decode_line(&line).unwrap();
        assert_eq!(decoded, cmd, "{line}");
        assert_eq!(id, Some(7));
    }

    #[test]
    fn commands_round_trip() {
        round_trip_cmd(Command::CreateSession {
            dataset: "census".into(),
            alpha: 0.05,
            policy: PolicySpec::Fixed { gamma: 10.0 },
        });
        round_trip_cmd(Command::AddVisualization {
            session: 3,
            attribute: "education".into(),
            filter: FilterSpec::And(vec![
                FilterSpec::Cmp {
                    column: "salary_over_50k".into(),
                    op: CmpOp::Eq,
                    value: Value::Bool(true),
                },
                FilterSpec::Not(Box::new(FilterSpec::Between {
                    column: "age".into(),
                    lo: 18.0,
                    hi: 30.0,
                })),
                FilterSpec::In {
                    column: "race".into(),
                    values: vec![Value::Str("White".into()), Value::Str("Asian".into())],
                },
            ]),
        });
        round_trip_cmd(Command::SetPolicy {
            session: 2,
            policy: PolicySpec::EpsilonHybrid {
                gamma: 10.0,
                delta: 5.0,
                epsilon: 0.5,
                window: Some(8),
            },
        });
        round_trip_cmd(Command::CreateSessionAs {
            session: 123,
            dataset: "census".into(),
            alpha: 0.05,
            policy: PolicySpec::Fixed { gamma: 10.0 },
        });
        round_trip_cmd(Command::ExportSession { session: 5 });
        round_trip_cmd(Command::ImportSession {
            session: 5,
            image: vec![0x00, 0x7f, 0xff, 0x41],
        });
        round_trip_cmd(Command::ListDatasets);
        round_trip_cmd(Command::JoinShard {
            addr: "10.0.0.7:7878".into(),
        });
        round_trip_cmd(Command::LeaveShard {
            addr: "10.0.0.7:7878".into(),
        });
        round_trip_cmd(Command::Gauge { session: 1 });
        round_trip_cmd(Command::Transcript {
            session: 1,
            format: TranscriptFormat::Text,
        });
        round_trip_cmd(Command::CloseSession { session: 9 });
        round_trip_cmd(Command::Stats);
        round_trip_cmd(Command::ReplicateSession {
            session: 5,
            epoch: 12,
            image: vec![0x41, 0x57, 0x52, 0x53, 0x02],
        });
        round_trip_cmd(Command::PromoteReplica { session: 5 });
        round_trip_cmd(Command::DropReplica { session: 5 });
        round_trip_cmd(Command::SnapshotSession { session: 5 });
        round_trip_cmd(Command::ListSessions);
        round_trip_cmd(Command::Gossip {
            from: "127.0.0.1:7878".into(),
            generation: 4,
            members: vec![
                MemberInfo {
                    addr: "127.0.0.1:7001".into(),
                    status: MemberStatus::Alive,
                    incarnation: 3,
                },
                MemberInfo {
                    addr: "127.0.0.1:7002".into(),
                    status: MemberStatus::Suspect,
                    incarnation: 0,
                },
            ],
        });
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::SessionCreated {
                session: 1,
                wealth: 0.0475,
                policy: "γ-fixed(γ=10)".into(),
            },
            Response::VizAdded {
                session: 1,
                viz: 0,
                wealth: 0.0475,
                hypothesis: None,
            },
            Response::VizAdded {
                session: 1,
                viz: 1,
                wealth: 0.09,
                hypothesis: Some(HypothesisReport {
                    id: 0,
                    test: "chi-square-independence".into(),
                    statistic: 223.4,
                    p_value: 1e-9,
                    bid: 0.004,
                    rejected: true,
                    effect_size: 0.21,
                    support_fraction: 1.0,
                    wealth_after: 0.09,
                }),
            },
            Response::PolicySet {
                session: 1,
                policy: "δ-hopeful(δ=5)".into(),
            },
            Response::GaugeText {
                session: 1,
                text: "┌─ AWARE risk gauge ─┐\n│ …".into(),
            },
            Response::TranscriptText {
                session: 1,
                format: TranscriptFormat::Csv,
                text: "hypothesis,status\nH0,tested\n".into(),
            },
            Response::SessionClosed {
                session: 1,
                hypotheses: 4,
                discoveries: 2,
            },
            Response::SessionExported {
                session: 3,
                image: vec![0x41, 0x57, 0x52, 0x53, 0x02],
            },
            Response::SessionImported {
                session: 3,
                wealth: 0.0475,
            },
            Response::Datasets {
                datasets: vec![DatasetInfo {
                    name: "census".into(),
                    rows: 20_000,
                    fingerprint: 0xdead_beef_0bad_cafe,
                }],
                next_session: 17,
            },
            Response::Rebalanced {
                addr: "127.0.0.1:7879".into(),
                joined: false,
                migrated: 2,
            },
            Response::SessionReplicated {
                session: 5,
                epoch: 12,
            },
            Response::ReplicaPromoted {
                session: 5,
                epoch: 12,
                wealth: 0.0375,
            },
            Response::ReplicaDropped { session: 5 },
            Response::Sessions {
                sessions: vec![
                    SessionEntry {
                        session: 3,
                        replica: false,
                        epoch: 0,
                    },
                    SessionEntry {
                        session: 9,
                        replica: true,
                        epoch: 7,
                    },
                ],
            },
            Response::GossipView {
                generation: 4,
                members: vec![MemberInfo {
                    addr: "127.0.0.1:7001".into(),
                    status: MemberStatus::Dead,
                    incarnation: 9,
                }],
            },
            Response::Stats(Box::new(StatsSnapshot {
                sessions_created: 10,
                commands: 55,
                forwarded: 1_000,
                migrations: 7,
                shard_errors: 2,
                replicas_live: 9,
                replication_lag_max_epochs: 1,
                promotions: 2,
                hedged_reads: 140,
                shards: vec![
                    ShardHealth {
                        addr: "127.0.0.1:7001".into(),
                        healthy: true,
                        sessions_live: 12,
                        forwarded: 600,
                        errors: 0,
                    },
                    ShardHealth {
                        addr: "127.0.0.1:7002".into(),
                        healthy: false,
                        sessions_live: 0,
                        forwarded: 400,
                        errors: 2,
                    },
                ],
                ..Default::default()
            })),
            Response::Error(ServeError {
                code: ErrorCode::UnknownSession,
                message: "no session 99".into(),
            }),
        ] {
            let line = resp.encode_line(Some(42));
            let (decoded, id) = Response::decode_line(&line).unwrap();
            assert_eq!(decoded, resp, "{line}");
            assert_eq!(id, Some(42));
        }
    }

    #[test]
    fn replication_stats_fields_decode_leniently() {
        // A stats reply from a pre-replication server omits the four
        // replication scalars entirely; the lenient decode pins them
        // to 0 rather than erroring — the JSON half of the fifth
        // no-version-bump extension.
        let old = Response::Stats(Box::new(StatsSnapshot {
            sessions_created: 3,
            commands: 12,
            ..Default::default()
        }));
        let mut line = old.encode_line(None);
        for field in [
            "\"replicas_live\":0,",
            "\"replication_lag_max_epochs\":0,",
            "\"promotions\":0,",
            "\"hedged_reads\":0,",
        ] {
            assert!(line.contains(field), "{line}");
            line = line.replace(field, "");
        }
        let (decoded, _) = Response::decode_line(&line).unwrap();
        assert_eq!(decoded, old, "missing replication fields decode as 0");

        // And a reply that carries them round-trips bit-for-bit.
        let new = Response::Stats(Box::new(StatsSnapshot {
            replicas_live: 4,
            replication_lag_max_epochs: 2,
            promotions: 1,
            hedged_reads: 77,
            ..Default::default()
        }));
        let (decoded, _) = Response::decode_line(&new.encode_line(None)).unwrap();
        assert_eq!(decoded, new);
    }

    #[test]
    fn resilience_stats_fields_decode_leniently() {
        // The JSON half of the sixth no-version-bump extension: a stats
        // reply from a pre-resilience server omits the deadline/breaker
        // scalars entirely; the lenient decode pins them to 0.
        let old = Response::Stats(Box::new(StatsSnapshot {
            sessions_created: 3,
            commands: 12,
            ..Default::default()
        }));
        let mut line = old.encode_line(None);
        for field in [
            "\"shard_timeouts\":0,",
            "\"breaker_opens\":0,",
            "\"breaker_shed\":0,",
        ] {
            assert!(line.contains(field), "{line}");
            line = line.replace(field, "");
        }
        let (decoded, _) = Response::decode_line(&line).unwrap();
        assert_eq!(decoded, old, "missing resilience fields decode as 0");

        // And a reply that carries them round-trips bit-for-bit.
        let new = Response::Stats(Box::new(StatsSnapshot {
            shard_timeouts: 21,
            breaker_opens: 3,
            breaker_shed: 450,
            ..Default::default()
        }));
        let (decoded, _) = Response::decode_line(&new.encode_line(None)).unwrap();
        assert_eq!(decoded, new);
    }

    #[test]
    fn policy_specs_build_real_policies() {
        assert_eq!(
            PolicySpec::Fixed { gamma: 10.0 }.build().unwrap().name(),
            "γ-fixed(γ=10)"
        );
        assert!(PolicySpec::Farsighted { beta: 0.5 }.build().is_ok());
        assert!(PolicySpec::Farsighted { beta: 1.5 }.build().is_err());
        assert!(PolicySpec::Hopeful { delta: 2.0 }.build().is_ok());
        assert!(PolicySpec::PsiSupport {
            gamma: 10.0,
            psi: 0.5
        }
        .build()
        .is_ok());
        assert!(PolicySpec::PsiSupport {
            gamma: 10.0,
            psi: -0.5
        }
        .build()
        .is_err());
        assert!(PolicySpec::EpsilonHybrid {
            gamma: 10.0,
            delta: 5.0,
            epsilon: 2.0,
            window: None
        }
        .build()
        .is_err());
    }

    #[test]
    fn filters_lower_to_predicates() {
        let f = FilterSpec::Not(Box::new(FilterSpec::Cmp {
            column: "sex".into(),
            op: CmpOp::Eq,
            value: Value::Str("Male".into()),
        }));
        assert_eq!(f.to_predicate(), Predicate::eq("sex", "Male").negate());
        assert_eq!(FilterSpec::True.to_predicate(), Predicate::True);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(Command::decode_line("not json").is_err());
        assert!(Command::decode_line("{\"cmd\":\"warp\"}").is_err());
        assert!(
            Command::decode_line("{\"cmd\":\"gauge\"}").is_err(),
            "missing session"
        );
        assert!(Command::decode_line(
            "{\"cmd\":\"create_session\",\"dataset\":\"x\",\"alpha\":0.05,\
             \"policy\":{\"kind\":\"nope\"}}"
        )
        .is_err());
    }

    #[test]
    fn missing_filter_defaults_to_unfiltered() {
        let (cmd, _) = Command::decode_line(
            "{\"cmd\":\"add_visualization\",\"session\":0,\"attribute\":\"sex\"}",
        )
        .unwrap();
        assert_eq!(
            cmd,
            Command::AddVisualization {
                session: 0,
                attribute: "sex".into(),
                filter: FilterSpec::True
            }
        );
    }
}
