//! The multi-session service: worker pool, dispatch, and eviction.
//!
//! ## Ordering model
//!
//! α-investing is a *sequential* guarantee: within one session, bids and
//! decisions must happen in a single total order, and a decision once
//! announced is final. Across sessions there is no coupling at all. The
//! dispatcher encodes exactly that:
//!
//! * every session-addressed command is routed to the worker
//!   `session_id % workers`, and each worker drains its queue FIFO —
//!   so one session's commands execute in arrival order, one at a time,
//!   no matter how many client threads address it;
//! * distinct sessions land on distinct workers (or interleave on one
//!   worker's queue), so the pool scales across sessions while never
//!   reordering within one.
//!
//! The registry's per-entry mutex is a second line of defense (the
//! eviction sweeper is the only other toucher), not the ordering
//! mechanism.
//!
//! ## Eviction
//!
//! Interactive sessions are abandoned, not closed. The service evicts
//! sessions idle longer than `idle_timeout` (via [`Service::sweep_idle`]
//! or the optional background sweeper) and, when the registry is at
//! `max_sessions`, evicts the least-recently-used session to admit a
//! new one. Eviction is indistinguishable from `close_session` to a
//! late-returning client: both yield `unknown_session`.

use crate::error::{ErrorCode, ServeError};
use crate::metrics::Metrics;
use crate::proto::{Command, HypothesisReport, PolicySpec, Response, SessionId, TranscriptFormat};
use crate::registry::Registry;
use aware_core::session::Session;
use aware_core::{gauge, transcript};
use aware_data::table::Table;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining command queues. Sessions are pinned to
    /// workers by `id % workers`.
    pub workers: usize,
    /// Registry shard count.
    pub shards: usize,
    /// Hard cap on live sessions; beyond it, creation evicts the LRU
    /// session.
    pub max_sessions: u64,
    /// Sessions idle longer than this are evicted by sweeps.
    pub idle_timeout: Duration,
    /// Interval of the background eviction sweeper; `None` (the default)
    /// means sweeps only happen when [`Service::sweep_idle`] is called.
    pub sweep_interval: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            shards: 16,
            max_sessions: 65_536,
            idle_timeout: Duration::from_secs(15 * 60),
            sweep_interval: None,
        }
    }
}

/// State shared by workers, handles, and the sweeper.
struct Inner {
    registry: Registry,
    metrics: Metrics,
    datasets: RwLock<HashMap<String, Arc<Table>>>,
    next_session: AtomicU64,
    config: ServiceConfig,
}

enum Job {
    Run {
        cmd: Command,
        assigned: Option<SessionId>,
        reply: mpsc::Sender<Response>,
    },
    Shutdown,
}

/// A cloneable, thread-safe client of an in-process service — the same
/// code path the TCP front end uses, minus the socket.
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<Inner>,
    senders: Arc<Vec<mpsc::Sender<Job>>>,
}

impl ServiceHandle {
    /// Executes one command to completion and returns its response.
    ///
    /// Blocks until the session's worker has processed every earlier
    /// command addressed to that session (FIFO per session).
    pub fn call(&self, cmd: Command) -> Response {
        self.inner.metrics.command();
        // Stats is session-free and read-only: answer inline rather than
        // serializing it behind some arbitrary worker's queue.
        if matches!(cmd, Command::Stats) {
            return Response::Stats(self.inner.metrics.snapshot(self.inner.registry.len()));
        }
        let (assigned, route) = match cmd.session() {
            Some(sid) => (None, sid),
            None => {
                // CreateSession: allocate the id up front so the command
                // routes to — and the session stays pinned on — its worker.
                let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
                (Some(id), id)
            }
        };
        let worker = (route % self.senders.len() as u64) as usize;
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job::Run {
            cmd,
            assigned,
            reply: reply_tx,
        };
        if self.senders[worker].send(job).is_err() {
            self.inner.metrics.error();
            return Response::Error(ServeError {
                code: ErrorCode::Shutdown,
                message: "service is shut down".into(),
            });
        }
        match reply_rx.recv() {
            Ok(response) => response,
            Err(_) => {
                self.inner.metrics.error();
                Response::Error(ServeError {
                    code: ErrorCode::Shutdown,
                    message: "service is shut down".into(),
                })
            }
        }
    }

    /// Registers (or replaces) a dataset under `name`.
    pub fn register_table(&self, name: impl Into<String>, table: Table) {
        self.register_shared(name, Arc::new(table));
    }

    /// Registers an already-shared dataset — N sessions, one table.
    pub fn register_shared(&self, name: impl Into<String>, table: Arc<Table>) {
        self.inner
            .datasets
            .write()
            .unwrap()
            .insert(name.into(), table);
    }

    /// Registered dataset names, sorted.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .datasets
            .read()
            .unwrap()
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of live sessions.
    pub fn live_sessions(&self) -> u64 {
        self.inner.registry.len()
    }

    /// Evicts every session idle longer than the configured timeout;
    /// returns how many were evicted.
    pub fn sweep_idle(&self) -> usize {
        sweep_idle(&self.inner)
    }

    /// Counts a request that failed before reaching a command (frame too
    /// long, malformed JSON, unknown command) so the `stats` counters see
    /// protocol-level abuse, not only session-level errors.
    pub fn record_protocol_error(&self) {
        self.inner.metrics.command();
        self.inner.metrics.error();
    }
}

/// The running service: worker threads plus the shared state. Dropping
/// (or calling [`Service::shutdown`]) stops the workers; commands sent
/// through surviving handles then answer with a `shutdown` error.
pub struct Service {
    handle: ServiceHandle,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts a service with the given configuration.
    pub fn start(config: ServiceConfig) -> Service {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            registry: Registry::new(config.shards),
            metrics: Metrics::new(),
            datasets: RwLock::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            config,
        });

        let mut senders = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            let inner = inner.clone();
            joins.push(
                std::thread::Builder::new()
                    .name(format!("aware-serve-worker-{i}"))
                    .spawn(move || worker_loop(rx, inner))
                    .expect("spawn worker thread"),
            );
        }

        if let Some(interval) = inner.config.sweep_interval {
            let weak = Arc::downgrade(&inner);
            std::thread::Builder::new()
                .name("aware-serve-sweeper".into())
                .spawn(move || sweeper_loop(weak, interval))
                .expect("spawn sweeper thread");
        }

        Service {
            handle: ServiceHandle {
                inner,
                senders: Arc::new(senders),
            },
            workers: joins,
        }
    }

    /// Starts with defaults.
    pub fn with_defaults() -> Service {
        Service::start(ServiceConfig::default())
    }

    /// A new client handle.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// See [`ServiceHandle::sweep_idle`].
    pub fn sweep_idle(&self) -> usize {
        self.handle.sweep_idle()
    }

    /// Stops the workers and waits for them to finish their queues.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        for tx in self.handle.senders.iter() {
            let _ = tx.send(Job::Shutdown);
        }
        for join in self.workers.drain(..) {
            let _ = join.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn sweeper_loop(inner: Weak<Inner>, interval: Duration) {
    loop {
        std::thread::sleep(interval);
        match inner.upgrade() {
            Some(inner) => {
                sweep_idle(&inner);
            }
            None => return, // service is gone
        }
    }
}

fn sweep_idle(inner: &Inner) -> usize {
    let timeout_ms = inner.config.idle_timeout.as_millis() as u64;
    let Some(cutoff) = inner.registry.now_ms().checked_sub(timeout_ms) else {
        return 0; // the service is younger than the timeout
    };
    let mut evicted = 0;
    for id in inner.registry.idle_ids(cutoff) {
        // Recency is re-checked under the shard write lock: a session
        // touched between the scan and the removal survives the sweep.
        if inner.registry.remove_if_idle(id, cutoff) {
            inner.metrics.session_evicted();
            evicted += 1;
        }
    }
    evicted
}

fn worker_loop(rx: mpsc::Receiver<Job>, inner: Arc<Inner>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Shutdown => return,
            Job::Run {
                cmd,
                assigned,
                reply,
            } => {
                // Panic isolation: a handler panic (poisoned session
                // mutex, engine bug) must cost one error response — at
                // worst one bricked session — never this worker and the
                // 1/W of all sessions pinned to it.
                let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute(&inner, cmd, assigned)
                }))
                .unwrap_or_else(|panic| {
                    let what = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "unknown panic".into());
                    Response::Error(ServeError {
                        code: ErrorCode::SessionError,
                        message: format!("internal error executing command: {what}"),
                    })
                });
                if matches!(response, Response::Error(_)) {
                    inner.metrics.error();
                }
                let _ = reply.send(response);
            }
        }
    }
}

fn execute(inner: &Inner, cmd: Command, assigned: Option<SessionId>) -> Response {
    match cmd {
        Command::CreateSession {
            dataset,
            alpha,
            policy,
        } => create_session(
            inner,
            assigned.expect("create is pre-assigned"),
            dataset,
            alpha,
            policy,
        ),
        Command::AddVisualization {
            session,
            attribute,
            filter,
        } => add_visualization(inner, session, attribute, filter),
        Command::SetPolicy { session, policy } => set_policy(inner, session, policy),
        Command::Gauge { session } => with_session(inner, session, |s| Response::GaugeText {
            session,
            text: gauge::render(s),
        }),
        Command::Transcript { session, format } => with_session(inner, session, |s| {
            let text = match format {
                TranscriptFormat::Csv => transcript::export_csv(s),
                TranscriptFormat::Text => transcript::export_text(s),
            };
            Response::TranscriptText {
                session,
                format,
                text,
            }
        }),
        Command::CloseSession { session } => close_session(inner, session),
        Command::Stats => Response::Stats(inner.metrics.snapshot(inner.registry.len())),
    }
}

fn create_session(
    inner: &Inner,
    id: SessionId,
    dataset: String,
    alpha: f64,
    policy: PolicySpec,
) -> Response {
    let Some(table) = inner.datasets.read().unwrap().get(&dataset).cloned() else {
        return Response::Error(ServeError {
            code: ErrorCode::UnknownDataset,
            message: format!("no dataset '{dataset}' registered"),
        });
    };
    let boxed = match policy.build() {
        Ok(p) => p,
        Err(e) => return Response::Error(e),
    };
    let session = match Session::shared(table, alpha, boxed) {
        Ok(s) => s,
        Err(e) => return Response::Error(ServeError::invalid(format!("cannot open session: {e}"))),
    };

    // Admission control: evict LRU sessions until there is room. The
    // victim's recency is re-checked under its shard write lock, so a
    // session touched after the scan survives and the scan re-runs; a
    // bounded number of attempts turns a registry full of hot sessions
    // into an `overloaded` error instead of a livelock. Under concurrent
    // creates this can momentarily overshoot by a few evictions —
    // harmless, the cap is a resource bound, not an exact count.
    let mut attempts = 0;
    while inner.registry.len() >= inner.config.max_sessions {
        attempts += 1;
        let evicted = match inner.registry.lru_candidate() {
            Some((victim, observed_ms)) => {
                inner.registry.remove_if_unused_since(victim, observed_ms)
            }
            None => false,
        };
        if evicted {
            inner.metrics.session_evicted();
        } else if attempts >= 16 {
            return Response::Error(ServeError {
                code: ErrorCode::Overloaded,
                message: "session capacity exhausted and nothing evictable".into(),
            });
        }
    }

    let wealth = session.wealth();
    let policy_name = session.policy_name();
    inner.registry.insert(id, session);
    inner.metrics.session_created();
    Response::SessionCreated {
        session: id,
        wealth,
        policy: policy_name,
    }
}

fn with_session(
    inner: &Inner,
    id: SessionId,
    f: impl FnOnce(&mut crate::registry::ServedSession) -> Response,
) -> Response {
    match inner.registry.get(id) {
        Some(entry) => f(&mut entry.session.lock().unwrap()),
        None => Response::Error(ServeError::unknown_session(id)),
    }
}

fn add_visualization(
    inner: &Inner,
    id: SessionId,
    attribute: String,
    filter: crate::proto::FilterSpec,
) -> Response {
    with_session(inner, id, |s| {
        match s.add_visualization(attribute, filter.to_predicate()) {
            Ok(outcome) => {
                let hypothesis = outcome.hypothesis.map(|(hid, record)| {
                    inner
                        .metrics
                        .hypothesis_tested(record.decision.is_rejection());
                    HypothesisReport::from_record(hid.0, &record)
                });
                Response::VizAdded {
                    session: id,
                    viz: outcome.viz.0,
                    wealth: s.wealth(),
                    hypothesis,
                }
            }
            Err(e) if e.is_wealth_exhausted() => {
                inner.metrics.rejected_by_budget();
                Response::Error(ServeError::from_session(e))
            }
            Err(e) => Response::Error(ServeError::from_session(e)),
        }
    })
}

fn set_policy(inner: &Inner, id: SessionId, policy: PolicySpec) -> Response {
    let boxed = match policy.build() {
        Ok(p) => p,
        Err(e) => return Response::Error(e),
    };
    with_session(inner, id, |s| {
        s.replace_policy(boxed);
        Response::PolicySet {
            session: id,
            policy: s.policy_name(),
        }
    })
}

fn close_session(inner: &Inner, id: SessionId) -> Response {
    match inner.registry.remove(id) {
        Some(entry) => {
            let s = entry.session.lock().unwrap();
            inner.metrics.session_closed();
            Response::SessionClosed {
                session: id,
                hypotheses: s.hypotheses().len() as u64,
                discoveries: s.discoveries().len() as u64,
            }
        }
        None => Response::Error(ServeError::unknown_session(id)),
    }
}

// Compile-time proof that sessions may cross threads: the whole serving
// design rests on it.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<crate::registry::ServedSession>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::FilterSpec;
    use aware_data::census::CensusGenerator;
    use aware_data::predicate::CmpOp;
    use aware_data::value::Value;

    fn test_service(config: ServiceConfig) -> Service {
        let service = Service::start(config);
        service
            .handle()
            .register_table("census", CensusGenerator::new(7).generate(4_000));
        service
    }

    fn fixed_policy() -> PolicySpec {
        PolicySpec::Fixed { gamma: 10.0 }
    }

    fn create(h: &ServiceHandle) -> SessionId {
        match h.call(Command::CreateSession {
            dataset: "census".into(),
            alpha: 0.05,
            policy: fixed_policy(),
        }) {
            Response::SessionCreated {
                session, wealth, ..
            } => {
                assert!((wealth - 0.0475).abs() < 1e-12);
                session
            }
            other => panic!("create failed: {other:?}"),
        }
    }

    fn salary_filter() -> FilterSpec {
        FilterSpec::Cmp {
            column: "salary_over_50k".into(),
            op: CmpOp::Eq,
            value: Value::Bool(true),
        }
    }

    #[test]
    fn full_session_lifecycle_through_the_handle() {
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        let sid = create(&h);

        // Descriptive view: no hypothesis.
        let r = h.call(Command::AddVisualization {
            session: sid,
            attribute: "sex".into(),
            filter: FilterSpec::True,
        });
        match r {
            Response::VizAdded {
                viz, hypothesis, ..
            } => {
                assert_eq!(viz, 0);
                assert!(hypothesis.is_none());
            }
            other => panic!("{other:?}"),
        }

        // Filtered view on a planted dependency: discovery.
        let r = h.call(Command::AddVisualization {
            session: sid,
            attribute: "education".into(),
            filter: salary_filter(),
        });
        match r {
            Response::VizAdded {
                hypothesis: Some(hyp),
                wealth,
                ..
            } => {
                assert!(hyp.rejected, "planted dependency: p = {}", hyp.p_value);
                assert!(wealth > 0.0475, "payout grows wealth");
            }
            other => panic!("{other:?}"),
        }

        // Gauge and transcripts render.
        match h.call(Command::Gauge { session: sid }) {
            Response::GaugeText { text, .. } => assert!(text.contains("AWARE risk gauge")),
            other => panic!("{other:?}"),
        }
        match h.call(Command::Transcript {
            session: sid,
            format: TranscriptFormat::Csv,
        }) {
            Response::TranscriptText { text, .. } => {
                assert!(text.starts_with(transcript::TRANSCRIPT_HEADER));
            }
            other => panic!("{other:?}"),
        }

        // Policy swap keeps the session but renames the policy.
        match h.call(Command::SetPolicy {
            session: sid,
            policy: PolicySpec::Hopeful { delta: 5.0 },
        }) {
            Response::PolicySet { policy, .. } => assert!(policy.contains("hopeful")),
            other => panic!("{other:?}"),
        }

        // Close reports totals; a second close is unknown.
        match h.call(Command::CloseSession { session: sid }) {
            Response::SessionClosed {
                hypotheses,
                discoveries,
                ..
            } => {
                assert_eq!(hypotheses, 1);
                assert_eq!(discoveries, 1);
            }
            other => panic!("{other:?}"),
        }
        match h.call(Command::CloseSession { session: sid }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession),
            other => panic!("{other:?}"),
        }

        // Metrics saw it all.
        match h.call(Command::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.sessions_created, 1);
                assert_eq!(s.sessions_closed, 1);
                assert_eq!(s.sessions_live, 0);
                assert_eq!(s.hypotheses_tested, 1);
                assert_eq!(s.discoveries, 1);
                assert!(s.commands >= 8);
                assert_eq!(s.errors, 1, "the double-close");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_dataset_and_session_are_clean_errors() {
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        match h.call(Command::CreateSession {
            dataset: "nope".into(),
            alpha: 0.05,
            policy: fixed_policy(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownDataset),
            other => panic!("{other:?}"),
        }
        match h.call(Command::Gauge { session: 123 }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession),
            other => panic!("{other:?}"),
        }
        // Bad alpha surfaces as invalid_argument.
        match h.call(Command::CreateSession {
            dataset: "census".into(),
            alpha: 2.0,
            policy: fixed_policy(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::InvalidArgument),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wealth_exhaustion_maps_to_budget_rejection() {
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        let sid = match h.call(Command::CreateSession {
            dataset: "census".into(),
            alpha: 0.05,
            policy: PolicySpec::Fixed { gamma: 1.0 }, // one acceptance drains it
        }) {
            Response::SessionCreated { session, .. } => session,
            other => panic!("{other:?}"),
        };
        let mut saw_exhaustion = false;
        for wave in ["Wave-1", "Wave-2", "Wave-3", "Wave-4", "Wave-1"] {
            let r = h.call(Command::AddVisualization {
                session: sid,
                attribute: "race".into(),
                filter: FilterSpec::Cmp {
                    column: "survey_wave".into(),
                    op: CmpOp::Eq,
                    value: Value::Str(wave.into()),
                },
            });
            if let Response::Error(e) = r {
                assert_eq!(e.code, ErrorCode::WealthExhausted);
                saw_exhaustion = true;
                break;
            }
        }
        assert!(saw_exhaustion, "γ=1 on null views must exhaust the budget");
        match h.call(Command::Stats) {
            Response::Stats(s) => assert!(s.rejected_by_budget >= 1),
            other => panic!("{other:?}"),
        }
        // The session survives exhaustion: the gauge still renders.
        assert!(h.call(Command::Gauge { session: sid }).is_ok());
    }

    #[test]
    fn lru_cap_evicts_oldest_session() {
        let service = test_service(ServiceConfig {
            max_sessions: 4,
            workers: 2,
            ..ServiceConfig::default()
        });
        let h = service.handle();
        let first = create(&h);
        let rest: Vec<SessionId> = (0..3).map(|_| create(&h)).collect();
        assert_eq!(h.live_sessions(), 4);
        // Touch every session except the first so it is clearly LRU.
        for &sid in &rest {
            assert!(h.call(Command::Gauge { session: sid }).is_ok());
        }
        let fifth = create(&h);
        assert_eq!(h.live_sessions(), 4);
        match h.call(Command::Gauge { session: first }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession),
            other => panic!("evicted session should be gone: {other:?}"),
        }
        assert!(h.call(Command::Gauge { session: fifth }).is_ok());
        match h.call(Command::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.sessions_created, 5);
                assert_eq!(s.sessions_evicted, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idle_sweep_evicts_abandoned_sessions() {
        let service = test_service(ServiceConfig {
            idle_timeout: Duration::from_millis(40),
            ..ServiceConfig::default()
        });
        let h = service.handle();
        let idle = create(&h);
        let busy = create(&h);
        assert_eq!(h.sweep_idle(), 0, "nothing is idle yet");
        std::thread::sleep(Duration::from_millis(60));
        // Keep one session warm across the idle line.
        assert!(h.call(Command::Gauge { session: busy }).is_ok());
        assert_eq!(h.sweep_idle(), 1);
        assert!(matches!(
            h.call(Command::Gauge { session: idle }),
            Response::Error(_)
        ));
        assert!(h.call(Command::Gauge { session: busy }).is_ok());
    }

    #[test]
    fn shutdown_answers_late_callers_with_shutdown_error() {
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        let sid = create(&h);
        service.shutdown();
        match h.call(Command::Gauge { session: sid }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Shutdown),
            other => panic!("{other:?}"),
        }
    }
}
