//! The multi-session service: worker pool, dispatch, and eviction.
//!
//! ## Ordering model
//!
//! α-investing is a *sequential* guarantee: within one session, bids and
//! decisions must happen in a single total order, and a decision once
//! announced is final. Across sessions there is no coupling at all. The
//! dispatcher encodes exactly that:
//!
//! * every session-addressed command is routed to the worker
//!   `session_id % workers`, and each worker drains its queue FIFO —
//!   so one session's commands execute in arrival order, one at a time,
//!   no matter how many client threads address it;
//! * distinct sessions land on distinct workers (or interleave on one
//!   worker's queue), so the pool scales across sessions while never
//!   reordering within one.
//!
//! The registry's per-entry mutex is a second line of defense (the
//! eviction sweeper is the only other toucher), not the ordering
//! mechanism.
//!
//! ## Eviction
//!
//! Interactive sessions are abandoned, not closed. The service evicts
//! sessions idle longer than `idle_timeout` (via [`Service::sweep_idle`]
//! or the optional background sweeper) and, when the registry is at
//! `max_sessions`, evicts the least-recently-used session to admit a
//! new one. Without persistence, eviction is indistinguishable from
//! `close_session` to a late-returning client: both yield
//! `unknown_session`.
//!
//! ## Persistence
//!
//! With a [`ServiceConfig::data_dir`] configured, the service keeps a
//! write-ahead snapshot directory ([`crate::store`]):
//!
//! * **eviction spills** — both LRU admission eviction and the idle
//!   sweep write the victim's snapshot to disk *before* unlinking it,
//!   so eviction parks α-wealth instead of destroying it;
//! * **lazy restore** — a command addressing a session that is not in
//!   memory but has a snapshot on disk restores it transparently
//!   (selections re-derived through the dataset's shared `EvalCache`,
//!   never deserialized);
//! * **periodic snapshots** — a background thread writes every dirty
//!   session each [`ServiceConfig::snapshot_every`]; a `Some(ZERO)`
//!   interval instead makes every mutating command write its snapshot
//!   *before* its response is released (synchronous durability);
//! * **restart** — a new service over the same directory resumes id
//!   allocation above every persisted id and restores sessions on
//!   first touch.

use crate::error::{ErrorCode, ServeError};
use crate::metrics::Metrics;
use crate::proto::{
    BatchMode, Command, HypothesisReport, PolicySpec, Response, SessionId, TranscriptFormat,
};
use crate::registry::{Registry, SessionEntry, SessionMeta};
use crate::snapshot::SessionImage;
use crate::store::SnapshotStore;
use aware_core::session::Session;
use aware_core::{gauge, transcript};
use aware_data::cache::EvalCache;
use aware_data::table::Table;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining command queues. Sessions are pinned to
    /// workers by `id % workers`.
    pub workers: usize,
    /// Registry shard count.
    pub shards: usize,
    /// Hard cap on live sessions; beyond it, creation evicts the LRU
    /// session.
    pub max_sessions: u64,
    /// Sessions idle longer than this are evicted by sweeps.
    pub idle_timeout: Duration,
    /// Interval of the background eviction sweeper; `None` (the default)
    /// means sweeps only happen when [`Service::sweep_idle`] is called.
    pub sweep_interval: Option<Duration>,
    /// Backpressure: commands a single session may have queued (submitted
    /// but not yet executed) before further submissions are refused with
    /// [`ErrorCode::Overloaded`]. A whole batch unit counts at once, so a
    /// same-session batch larger than this cap is always refused — which
    /// is why the default equals [`crate::proto::MAX_BATCH_ITEMS`]: any
    /// protocol-legal batch fits on an idle server. Operators lowering it
    /// constrain the usable same-session batch size too. One chatty
    /// client saturates its own session, never a worker.
    pub max_pending_per_session: usize,
    /// Snapshot directory for durable sessions. `None` (the default)
    /// keeps every session in memory only — the pre-persistence
    /// behaviour. `Some(dir)` enables eviction spill, lazy restore, and
    /// restart recovery.
    pub data_dir: Option<PathBuf>,
    /// Snapshot cadence when `data_dir` is set: `Some(interval)` runs a
    /// background thread writing every dirty session each interval;
    /// `Some(Duration::ZERO)` means *synchronous* — each mutating
    /// command writes its session's snapshot before its response is
    /// released; `None` snapshots only on eviction/spill and shutdown.
    pub snapshot_every: Option<Duration>,
    /// Slow-query threshold in milliseconds: a command whose queue
    /// wait + execute crosses it emits a structured slow-query record
    /// (trace id, session, dataset, predicate fingerprint, cache
    /// hit/miss delta, stage timings) to the process log. `None` (the
    /// default) disables slow-query records entirely.
    pub slow_ms: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            shards: 16,
            max_sessions: 65_536,
            idle_timeout: Duration::from_secs(15 * 60),
            sweep_interval: None,
            max_pending_per_session: crate::proto::MAX_BATCH_ITEMS,
            data_dir: None,
            snapshot_every: None,
            slow_ms: None,
        }
    }
}

/// Dispatch route (and pending-table key) for session-free commands
/// that consume no session id (`list_datasets`, the router admin
/// verbs). Reserved: the allocator counts up from 0 and could never
/// reach it, so these commands share a pending cap and worker queue
/// with each other but never with a real session — a roster poll must
/// not be able to push session `0` into `overloaded`.
const SESSION_FREE_ROUTE: u64 = u64::MAX;

/// Pending-command accounting per session stream, sharded like the
/// registry. Counts are held only while commands sit on worker queues;
/// an entry disappears as soon as its stream drains to zero, so the map
/// stays proportional to *actively loaded* sessions, not live ones.
struct PendingTable {
    shards: Vec<Mutex<HashMap<u64, usize>>>,
}

impl PendingTable {
    fn new(shards: usize) -> PendingTable {
        PendingTable {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, usize>> {
        let h = key.wrapping_mul(0x9E3779B97F4A7C15) >> 32;
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Reserves `n` pending slots for `key`, refusing (without partial
    /// effect) if that would exceed `cap`.
    fn try_acquire(&self, key: u64, n: usize, cap: usize) -> bool {
        let mut shard = self.shard(key).lock().unwrap();
        let count = shard.entry(key).or_insert(0);
        if *count + n > cap {
            if *count == 0 {
                shard.remove(&key);
            }
            return false;
        }
        *count += n;
        true
    }

    /// Releases `n` slots for `key` (after execution or a failed send).
    fn release(&self, key: u64, n: usize) {
        let mut shard = self.shard(key).lock().unwrap();
        if let Some(count) = shard.get_mut(&key) {
            *count = count.saturating_sub(n);
            if *count == 0 {
                shard.remove(&key);
            }
        }
    }
}

/// A registered dataset: the immutable table plus its shared evaluation
/// cache. Every session opened on the dataset gets both, so 1k sessions
/// over one census share one table *and* one warm cache.
struct Dataset {
    table: Arc<Table>,
    cache: Arc<EvalCache>,
    /// Content fingerprint of `table`, computed once at registration —
    /// stamped into snapshot images and checked on restore/import so a
    /// ledger is never replayed against a table that merely shares the
    /// dataset's *name*.
    fingerprint: u64,
}

/// A warm replica image held for a session whose primary lives on
/// another shard. With a store configured the bytes live on disk only
/// (`repl-<id>.e<epoch>.awrs`) and `image` is `None` — promotion
/// re-reads the durable file as the authoritative copy; without one
/// the shipped bytes are kept in memory.
struct ReplicaHeld {
    epoch: u64,
    image: Option<Vec<u8>>,
}

/// State shared by workers, handles, and the sweeper.
struct Inner {
    registry: Registry,
    metrics: Metrics,
    datasets: RwLock<HashMap<String, Dataset>>,
    next_session: AtomicU64,
    pending: PendingTable,
    store: Option<SnapshotStore>,
    /// Warm replica images held for sessions homed elsewhere, by id.
    replicas: Mutex<HashMap<SessionId, ReplicaHeld>>,
    /// Last adopted membership view (`gossip`): ring generation plus
    /// the roster. A restarted router can learn the cluster from any
    /// shard that heard a gossip round.
    gossip: Mutex<(u64, Vec<crate::proto::MemberInfo>)>,
    /// Set by shutdown before the workers drain. Session commands
    /// discover shutdown through their dead worker channels; the
    /// inline `stats` path checks this flag so a drained shard stops
    /// advertising healthy stats — which is what lets a cluster
    /// router's health probe see an in-process shard death.
    shutting_down: std::sync::atomic::AtomicBool,
    /// Server-push sinks registered by push-capable front ends (the
    /// reactor). Each sink delivers one event toward one subscribed
    /// connection and returns `false` when that connection is gone, at
    /// which point the sink is dropped. Emission is best-effort and
    /// out of every hot path: only evictions and dataset replacement
    /// fan out here.
    push_sinks: Mutex<Vec<PushSink>>,
    config: ServiceConfig,
}

/// One registered server-push sink: delivers an event toward one
/// subscribed connection, returning `false` once that connection is
/// gone.
pub type PushSink = Box<dyn Fn(&crate::proto::PushEvent) -> bool + Send + Sync>;

/// Fans one push event out to every registered sink, dropping sinks
/// whose connection has gone away.
fn emit_push(inner: &Inner, event: &crate::proto::PushEvent) {
    let mut sinks = inner.push_sinks.lock().unwrap();
    sinks.retain(|sink| sink(event));
}

impl Inner {
    /// True when every mutating command must hit disk before replying.
    fn sync_snapshots(&self) -> bool {
        self.store.is_some() && self.config.snapshot_every == Some(Duration::ZERO)
    }
}

/// Stats snapshot with the evaluation-cache counters summed over every
/// registered dataset folded in, plus the persisted-session gauge,
/// process uptime, and the capped per-session risk telemetry.
fn snapshot_with_caches(inner: &Inner) -> crate::proto::StatsSnapshot {
    let mut snapshot = inner.metrics.snapshot(inner.registry.len());
    for dataset in inner.datasets.read().unwrap().values() {
        // counters() reads two atomics — a stats poll never touches the
        // cache's stripe locks, so it cannot stall hot-path evaluation.
        let (hits, misses) = dataset.cache.counters();
        snapshot.cache_hits += hits;
        snapshot.cache_misses += misses;
    }
    if let Some(store) = &inner.store {
        snapshot.persisted = store.persisted();
    }
    snapshot.replicas_live = inner.replicas.lock().unwrap().len() as u64;
    snapshot.uptime_seconds = inner.registry.now_ms() / 1000;
    snapshot.sessions = session_risk(inner);
    snapshot
}

/// Per-session risk rows for `stats`: wealth, tests, discoveries, and
/// the cumulative α spent (the sum of every test's bid — an
/// information-usage-style readout of consumed error budget). Sorted
/// by id and capped at [`crate::proto::MAX_RISK_SESSIONS`].
fn session_risk(inner: &Inner) -> Vec<crate::proto::SessionRisk> {
    let mut entries = inner.registry.entries();
    entries.sort_by_key(|e| e.id);
    entries.truncate(crate::proto::MAX_RISK_SESSIONS);
    entries
        .iter()
        .map(|entry| {
            let dataset = entry.meta.lock().unwrap().dataset.clone();
            let session = entry.session.lock().unwrap();
            let risk_spent = session
                .hypotheses()
                .iter()
                .filter_map(|h| h.record().map(|r| r.bid))
                .sum();
            crate::proto::SessionRisk {
                session: entry.id,
                dataset,
                wealth: session.wealth(),
                tests_run: session.tests_run() as u64,
                discoveries: session.discoveries().len() as u64,
                risk_spent,
            }
        })
        .collect()
}

/// Builds the durable image of a session; call with the session mutex
/// held so the image is a consistent cut.
fn image_of(entry: &SessionEntry, session: &crate::registry::ServedSession) -> SessionImage {
    let meta = entry.meta.lock().unwrap();
    SessionImage {
        id: entry.id,
        dataset: meta.dataset.clone(),
        fingerprint: Some(meta.fingerprint),
        policy: meta.policy.clone(),
        policy_since: meta.policy_since,
        session: session.snapshot(),
    }
}

/// Writes `image` to the store (when one is configured), recording the
/// flush duration and reporting failures without tearing the service
/// down.
fn save_image(inner: &Inner, image: &SessionImage) -> bool {
    let Some(store) = &inner.store else {
        return true;
    };
    let start = std::time::Instant::now();
    let result = store.save(image);
    inner
        .metrics
        .observe_snapshot_flush(start.elapsed().as_micros() as u64);
    match result {
        Ok(()) => true,
        Err(e) => {
            aware_obs::logline!(
                aware_obs::log::Level::Error,
                "persist_failed",
                session = image.id,
                error = e,
            );
            false
        }
    }
}

/// Snapshots `id` to disk if a store is configured and the session is
/// live. Returns `false` only when a configured store *failed* the
/// write — the caller must then keep the session in memory rather than
/// drop unspilled α-wealth.
fn spill_to_disk(inner: &Inner, id: SessionId) -> bool {
    let Some(store) = &inner.store else {
        return true;
    };
    let Some(entry) = inner.registry.peek(id) else {
        return true;
    };
    // A clean session that is already on disk has a current snapshot —
    // evicting it must not pay encode + write + two fsyncs for bytes
    // the store already holds.
    if !entry.is_dirty() && store.contains(id) {
        return true;
    }
    let image = {
        let session = entry.session.lock().unwrap();
        entry.clear_dirty();
        image_of(&entry, &session)
    };
    if save_image(inner, &image) {
        true
    } else {
        entry.mark_dirty();
        false
    }
}

/// One command of a dispatch unit, tagged with its position in the
/// submitting batch so responses reassemble in order.
struct UnitItem {
    index: usize,
    cmd: Command,
    /// Pre-allocated session id for `create_session` items.
    assigned: Option<SessionId>,
}

enum Job {
    /// A batch's same-session run: executed back-to-back on the pinned
    /// worker, never interleaved with other queue entries.
    Unit {
        items: Vec<UnitItem>,
        mode: BatchMode,
        /// The pending-table key to release, one slot per item executed.
        pending_key: u64,
        /// When the unit was queued — the worker measures queue wait
        /// (enqueue → pickup) from this.
        enqueued: std::time::Instant,
        /// Trace id attributed to every item (slow-query records carry
        /// it, so one grep follows a command across processes).
        trace: u64,
        reply: mpsc::Sender<(usize, Response)>,
    },
    Shutdown,
}

/// What a protocol front end needs from the thing that executes
/// commands. The TCP front end ([`crate::tcp`]) is generic over this,
/// so the same hardened reader/framing/hello code serves both the
/// in-process [`ServiceHandle`] and a cluster router fanning out to
/// remote shards — the wire surface cannot drift between a shard and
/// the router standing in front of it.
pub trait Dispatch {
    /// Executes one command to completion.
    fn call(&self, cmd: Command) -> Response;
    /// Executes an ordered batch, responses in submission order.
    fn call_batch_mode(&self, cmds: Vec<Command>, mode: BatchMode) -> Vec<Response>;
    /// Counts a request that failed before reaching a command.
    fn record_protocol_error(&self);
    /// Counts one wire message on the given surface.
    fn record_wire_request(&self, encoding: crate::proto::Encoding);
    /// [`Dispatch::call`] attributed to a trace id (stamped by the
    /// wire front end). The default ignores the trace — a dispatcher
    /// without tracing support still works.
    fn call_traced(&self, cmd: Command, trace: u64) -> Response {
        let _ = trace;
        self.call(cmd)
    }
    /// [`Dispatch::call_batch_mode`] attributed to a trace id.
    fn call_batch_traced(&self, cmds: Vec<Command>, mode: BatchMode, trace: u64) -> Vec<Response> {
        let _ = trace;
        self.call_batch_mode(cmds, mode)
    }
    /// Records the microseconds spent encoding + writing one reply to
    /// the wire. Default: not measured.
    fn record_wire_encode(&self, micros: u64) {
        let _ = micros;
    }
    /// Whether this dispatcher can emit server-push events. The hello
    /// `push` capability is only granted when the front end can deliver
    /// frames asynchronously *and* this returns true. Default: no —
    /// a dispatcher (like a cluster router) that never pushes keeps
    /// compiling unchanged.
    fn push_supported(&self) -> bool {
        false
    }
    /// Registers a sink for push events. The sink returns `false` when
    /// its connection is gone and should be dropped. The default drops
    /// the sink immediately, matching `push_supported() == false`.
    fn subscribe_push(&self, sink: Box<dyn Fn(&crate::proto::PushEvent) -> bool + Send + Sync>) {
        drop(sink);
    }
    /// Reactor front-end accounting: one connection accepted. Default:
    /// not counted.
    fn record_conn_open(&self) {}
    /// Reactor front-end accounting: one connection closed.
    fn record_conn_close(&self) {}
    /// Reactor front-end accounting: one readiness wakeup served.
    fn record_reactor_wakeup(&self) {}
    /// Reactor front-end accounting: one push frame delivered.
    fn record_push_frame(&self) {}
}

/// A cloneable, thread-safe client of an in-process service — the same
/// code path the TCP front end uses, minus the socket.
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<Inner>,
    senders: Arc<Vec<mpsc::Sender<Job>>>,
}

impl Dispatch for ServiceHandle {
    fn call(&self, cmd: Command) -> Response {
        ServiceHandle::call(self, cmd)
    }

    fn call_batch_mode(&self, cmds: Vec<Command>, mode: BatchMode) -> Vec<Response> {
        ServiceHandle::call_batch_mode(self, cmds, mode)
    }

    fn record_protocol_error(&self) {
        ServiceHandle::record_protocol_error(self)
    }

    fn record_wire_request(&self, encoding: crate::proto::Encoding) {
        ServiceHandle::record_wire_request(self, encoding)
    }

    fn call_traced(&self, cmd: Command, trace: u64) -> Response {
        ServiceHandle::call_traced(self, cmd, trace)
    }

    fn call_batch_traced(&self, cmds: Vec<Command>, mode: BatchMode, trace: u64) -> Vec<Response> {
        ServiceHandle::call_batch_traced(self, cmds, mode, trace)
    }

    fn record_wire_encode(&self, micros: u64) {
        self.inner.metrics.observe_wire_encode(micros);
    }

    fn push_supported(&self) -> bool {
        true
    }

    fn subscribe_push(&self, sink: Box<dyn Fn(&crate::proto::PushEvent) -> bool + Send + Sync>) {
        self.inner.push_sinks.lock().unwrap().push(sink);
    }

    fn record_conn_open(&self) {
        self.inner.metrics.reactor_conn_opened();
    }

    fn record_conn_close(&self) {
        self.inner.metrics.reactor_conn_closed();
    }

    fn record_reactor_wakeup(&self) {
        self.inner.metrics.reactor_wakeup();
    }

    fn record_push_frame(&self) {
        self.inner.metrics.push_frame();
    }
}

fn shutdown_error() -> Response {
    Response::Error(ServeError {
        code: ErrorCode::Shutdown,
        message: "service is shut down".into(),
    })
}

impl ServiceHandle {
    /// Executes one command to completion and returns its response —
    /// semantically a one-element [`ServiceHandle::call_batch`]
    /// (identical metrics, routing, and backpressure), but on a fast
    /// path that skips the batch partitioning structures: no slot
    /// vector, no route map — the dominant v1 traffic shape should not
    /// pay for machinery a single command cannot use.
    ///
    /// Blocks until the session's worker has processed every earlier
    /// command addressed to that session (FIFO per session).
    pub fn call(&self, cmd: Command) -> Response {
        self.call_traced(cmd, aware_obs::trace::next_trace_id())
    }

    /// [`ServiceHandle::call`] attributed to an explicit trace id (the
    /// TCP front end stamps the one it adopted from — or minted for —
    /// the envelope).
    pub fn call_traced(&self, cmd: Command, trace: u64) -> Response {
        self.inner.metrics.batch(1);
        self.inner.metrics.command();
        if matches!(cmd, Command::Stats) {
            if self
                .inner
                .shutting_down
                .load(std::sync::atomic::Ordering::SeqCst)
            {
                return shutdown_error();
            }
            let start = std::time::Instant::now();
            let response = Response::Stats(Box::new(snapshot_with_caches(&self.inner)));
            self.inner
                .metrics
                .observe_command(cmd.kind_index(), start.elapsed().as_micros() as u64);
            return response;
        }
        let (assigned, route) = match cmd.session() {
            Some(sid) => (None, sid),
            // Only creation consumes an id; other session-free commands
            // (list_datasets, the router admin verbs) route to a fixed
            // worker without touching the allocator — a roster poll
            // must not advance the id space a cluster router seats
            // its cluster-wide allocator above.
            None if matches!(cmd, Command::CreateSession { .. }) => {
                let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
                (Some(id), id)
            }
            None => (None, SESSION_FREE_ROUTE),
        };
        let cap = self.inner.config.max_pending_per_session;
        if !self.inner.pending.try_acquire(route, 1, cap) {
            self.inner.metrics.overloaded();
            self.inner.metrics.error();
            return Response::Error(ServeError {
                code: ErrorCode::Overloaded,
                message: format!(
                    "session stream {route} has reached its pending-command cap ({cap})"
                ),
            });
        }
        let worker = (route % self.senders.len() as u64) as usize;
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job::Unit {
            items: vec![UnitItem {
                index: 0,
                cmd,
                assigned,
            }],
            mode: BatchMode::Continue,
            pending_key: route,
            enqueued: std::time::Instant::now(),
            trace,
            reply: reply_tx,
        };
        if self.senders[worker].send(job).is_err() {
            self.inner.pending.release(route, 1);
            self.inner.metrics.error();
            return shutdown_error();
        }
        match reply_rx.recv() {
            Ok((_, response)) => response,
            Err(_) => {
                self.inner.metrics.error();
                shutdown_error()
            }
        }
    }

    /// Executes an ordered batch of commands and returns their
    /// responses in submission order, errors reported per item.
    ///
    /// Same-session commands execute as one pinned unit on the
    /// session's worker — back-to-back, in batch order, never
    /// interleaved with commands from other clients — so the
    /// α-investing decision sequence a batch observes is exactly the
    /// sequence a v1 client would have produced with N round trips.
    /// Commands for distinct sessions fan out to their workers in
    /// parallel; the call blocks until every response is back.
    pub fn call_batch(&self, cmds: Vec<Command>) -> Vec<Response> {
        self.call_batch_mode(cmds, BatchMode::Continue)
    }

    /// [`ServiceHandle::call_batch`] with an explicit failure mode. In
    /// [`BatchMode::FailFast`], an item error aborts the *rest of its
    /// same-session unit* (those items answer `aborted`); items for
    /// other sessions are untouched — sessions share no statistical
    /// state, so there is nothing coherent to abort across them.
    pub fn call_batch_mode(&self, cmds: Vec<Command>, mode: BatchMode) -> Vec<Response> {
        self.call_batch_traced(cmds, mode, aware_obs::trace::next_trace_id())
    }

    /// [`ServiceHandle::call_batch_mode`] attributed to an explicit
    /// trace id; every unit the batch splits into carries it.
    pub fn call_batch_traced(
        &self,
        cmds: Vec<Command>,
        mode: BatchMode,
        trace: u64,
    ) -> Vec<Response> {
        let n = cmds.len();
        self.inner.metrics.batch(n);
        let mut slots: Vec<Option<Response>> = Vec::new();
        slots.resize_with(n, || None);

        // Partition into per-route units, preserving batch order within
        // each route. `order` keeps unit submission deterministic.
        let mut order: Vec<u64> = Vec::new();
        let mut units: HashMap<u64, Vec<UnitItem>> = HashMap::new();
        for (index, cmd) in cmds.into_iter().enumerate() {
            self.inner.metrics.command();
            // Stats is session-free and read-only: answer inline rather
            // than serializing it behind some arbitrary worker's queue.
            if matches!(cmd, Command::Stats) {
                if self
                    .inner
                    .shutting_down
                    .load(std::sync::atomic::Ordering::SeqCst)
                {
                    slots[index] = Some(shutdown_error());
                    continue;
                }
                let start = std::time::Instant::now();
                slots[index] = Some(Response::Stats(Box::new(snapshot_with_caches(&self.inner))));
                self.inner
                    .metrics
                    .observe_command(cmd.kind_index(), start.elapsed().as_micros() as u64);
                continue;
            }
            let (assigned, route) = match cmd.session() {
                Some(sid) => (None, sid),
                // CreateSession: allocate the id up front so the
                // command routes to — and the session stays pinned
                // on — its worker. Other session-free commands route
                // without consuming an id (see `call`).
                None if matches!(cmd, Command::CreateSession { .. }) => {
                    let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
                    (Some(id), id)
                }
                None => (None, SESSION_FREE_ROUTE),
            };
            units
                .entry(route)
                .or_insert_with(|| {
                    order.push(route);
                    Vec::new()
                })
                .push(UnitItem {
                    index,
                    cmd,
                    assigned,
                });
        }

        // Submit every unit, then collect responses as workers finish —
        // cross-session units run in parallel.
        let (reply_tx, reply_rx) = mpsc::channel();
        let cap = self.inner.config.max_pending_per_session;
        let mut outstanding = 0usize;
        for route in order {
            let items = units.remove(&route).expect("unit recorded in order");
            let count = items.len();
            if !self.inner.pending.try_acquire(route, count, cap) {
                self.inner.metrics.overloaded();
                for item in items {
                    self.inner.metrics.error();
                    slots[item.index] = Some(Response::Error(ServeError {
                        code: ErrorCode::Overloaded,
                        message: format!(
                            "session stream {route} has reached its pending-command cap ({cap})"
                        ),
                    }));
                }
                continue;
            }
            let worker = (route % self.senders.len() as u64) as usize;
            let job = Job::Unit {
                items,
                mode,
                pending_key: route,
                enqueued: std::time::Instant::now(),
                trace,
                reply: reply_tx.clone(),
            };
            if let Err(mpsc::SendError(job)) = self.senders[worker].send(job) {
                self.inner.pending.release(route, count);
                if let Job::Unit { items, .. } = job {
                    for item in items {
                        self.inner.metrics.error();
                        slots[item.index] = Some(shutdown_error());
                    }
                }
                continue;
            }
            outstanding += count;
        }
        drop(reply_tx);
        for _ in 0..outstanding {
            match reply_rx.recv() {
                Ok((index, response)) => slots[index] = Some(response),
                Err(_) => break, // workers died mid-batch; fill below
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    self.inner.metrics.error();
                    shutdown_error()
                })
            })
            .collect()
    }

    /// Registers (or replaces) a dataset under `name`.
    pub fn register_table(&self, name: impl Into<String>, table: Table) {
        self.register_shared(name, Arc::new(table));
    }

    /// Registers an already-shared dataset — N sessions, one table, one
    /// fresh evaluation cache, one content fingerprint (computed here,
    /// once, so restores and imports can verify table identity without
    /// ever re-scanning the data).
    pub fn register_shared(&self, name: impl Into<String>, table: Arc<Table>) {
        let fingerprint = table.fingerprint();
        let name = name.into();
        let replaced = self
            .inner
            .datasets
            .write()
            .unwrap()
            .insert(
                name.clone(),
                Dataset {
                    table,
                    cache: Arc::new(EvalCache::new()),
                    fingerprint,
                },
            )
            .is_some();
        // Replacing a dataset resets its evaluation cache; subscribed
        // clients holding warm assumptions about it get told.
        if replaced {
            emit_push(
                &self.inner,
                &crate::proto::PushEvent::CacheReset { dataset: name },
            );
        }
    }

    /// Registered dataset names, sorted.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .datasets
            .read()
            .unwrap()
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of live sessions.
    pub fn live_sessions(&self) -> u64 {
        self.inner.registry.len()
    }

    /// Evicts every session idle longer than the configured timeout;
    /// returns how many were evicted.
    pub fn sweep_idle(&self) -> usize {
        sweep_idle(&self.inner)
    }

    /// Counts a request that failed before reaching a command (frame too
    /// long, malformed JSON, unknown command) so the `stats` counters see
    /// protocol-level abuse, not only session-level errors.
    pub fn record_protocol_error(&self) {
        self.inner.metrics.command();
        self.inner.metrics.error();
    }

    /// Counts one wire message on the given surface (called by the TCP
    /// front end; the in-process handle has no wire).
    pub fn record_wire_request(&self, encoding: crate::proto::Encoding) {
        self.inner.metrics.wire_request(encoding);
    }

    /// Renders every counter, gauge, and histogram as Prometheus text
    /// exposition — the body the `--metrics-addr` endpoint serves.
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.inner)
    }
}

/// Prometheus text exposition of the whole service: scalar counters
/// and gauges from the stats snapshot, per-command-kind and per-stage
/// latency summaries, per-dataset evaluation-cache occupancy, snapshot
/// store health, and per-session risk telemetry.
fn render_metrics(inner: &Inner) -> String {
    use aware_obs::expose::TextRender;
    let snapshot = snapshot_with_caches(inner);
    let mut r = TextRender::new();

    r.family("aware_up", "gauge", "1 while the process serves.");
    r.sample("aware_up", &[], 1);
    r.family("aware_uptime_seconds", "gauge", "Seconds since start.");
    r.sample("aware_uptime_seconds", &[], snapshot.uptime_seconds);

    r.family("aware_sessions_live", "gauge", "Live sessions.");
    r.sample("aware_sessions_live", &[], snapshot.sessions_live);
    for (name, help, value) in [
        (
            "aware_sessions_created_total",
            "Sessions created.",
            snapshot.sessions_created,
        ),
        (
            "aware_sessions_closed_total",
            "Sessions closed.",
            snapshot.sessions_closed,
        ),
        (
            "aware_sessions_evicted_total",
            "Sessions evicted.",
            snapshot.sessions_evicted,
        ),
        (
            "aware_commands_total",
            "Commands accepted.",
            snapshot.commands,
        ),
        (
            "aware_hypotheses_tested_total",
            "Hypotheses tested.",
            snapshot.hypotheses_tested,
        ),
        (
            "aware_discoveries_total",
            "Hypotheses rejected (discoveries).",
            snapshot.discoveries,
        ),
        (
            "aware_rejected_by_budget_total",
            "Tests refused for exhausted wealth.",
            snapshot.rejected_by_budget,
        ),
        ("aware_errors_total", "Error responses.", snapshot.errors),
        (
            "aware_batches_total",
            "Dispatch units accepted.",
            snapshot.batches,
        ),
        (
            "aware_batch_commands_total",
            "Commands inside batches.",
            snapshot.batch_commands,
        ),
        (
            "aware_overloaded_total",
            "Work refused by backpressure.",
            snapshot.overloaded,
        ),
        (
            "aware_ndjson_requests_total",
            "NDJSON wire messages.",
            snapshot.ndjson_requests,
        ),
        (
            "aware_binary_frames_total",
            "Binary wire frames.",
            snapshot.binary_frames,
        ),
        (
            "aware_slow_queries_total",
            "Commands past --slow-ms.",
            snapshot.slow_queries,
        ),
        (
            "aware_promotions_total",
            "Replica images promoted to live sessions.",
            snapshot.promotions,
        ),
        (
            "aware_hedged_reads_total",
            "Read-only commands answered from a replica image.",
            snapshot.hedged_reads,
        ),
        (
            "aware_reactor_wakeups_total",
            "Readiness wakeups served by the reactor front end.",
            snapshot.reactor_wakeups,
        ),
        (
            "aware_push_frames_total",
            "Server-push frames delivered to subscribed connections.",
            snapshot.push_frames,
        ),
        (
            "aware_drr_deferrals_total",
            "Worker rounds where a route exhausted its DRR quantum with work left.",
            snapshot.drr_deferrals,
        ),
    ] {
        r.family(name, "counter", help);
        r.sample(name, &[], value);
    }

    r.family(
        "aware_reactor_connections",
        "gauge",
        "Connections currently open on the reactor front end.",
    );
    r.sample(
        "aware_reactor_connections",
        &[],
        snapshot.reactor_connections,
    );

    r.family(
        "aware_replicas_live",
        "gauge",
        "Replica images held for sessions whose primary is elsewhere.",
    );
    r.sample("aware_replicas_live", &[], snapshot.replicas_live);

    r.family(
        "aware_batch_size",
        "counter",
        "Batches by size bucket (upper edge; +Inf for the overflow bucket).",
    );
    for (i, &n) in snapshot.batch_size_hist.iter().enumerate() {
        let edge = crate::proto::BATCH_SIZE_BUCKETS
            .get(i)
            .map(|e| e.to_string())
            .unwrap_or_else(|| "+Inf".into());
        r.sample("aware_batch_size", &[("le", &edge)], n);
    }

    r.family(
        "aware_command_latency_us",
        "summary",
        "End-to-end command latency (queue wait + execute) by kind, microseconds.",
    );
    for (kind, name) in crate::proto::COMMAND_KINDS.iter().enumerate() {
        let snap = inner.metrics.latency_of_kind(kind);
        if snap.count() > 0 {
            r.summary("aware_command_latency_us", &[("kind", name)], &snap);
        }
    }
    r.family(
        "aware_stage_latency_us",
        "summary",
        "Stage breakdown: queue_wait, execute, snapshot_flush, wire_encode; microseconds.",
    );
    for (stage, snap) in inner.metrics.stages() {
        r.summary("aware_stage_latency_us", &[("stage", stage)], &snap);
    }

    r.family(
        "aware_cache_hits_total",
        "counter",
        "Evaluation-cache probes answered from the cache, by dataset.",
    );
    r.family(
        "aware_cache_misses_total",
        "counter",
        "Evaluation-cache probes evaluated cold, by dataset.",
    );
    r.family(
        "aware_cache_selections",
        "gauge",
        "Selection bitmaps currently resident, by dataset.",
    );
    r.family(
        "aware_cache_invariants",
        "gauge",
        "Attribute invariant sets currently resident, by dataset.",
    );
    let datasets = inner.datasets.read().unwrap();
    let mut names: Vec<&String> = datasets.keys().collect();
    names.sort();
    for name in names {
        let stats = datasets[name].cache.stats();
        let labels = [("dataset", name.as_str())];
        r.sample("aware_cache_hits_total", &labels, stats.hits);
        r.sample("aware_cache_misses_total", &labels, stats.misses);
        r.sample("aware_cache_selections", &labels, stats.selections);
        r.sample("aware_cache_invariants", &labels, stats.invariants);
    }
    drop(datasets);

    if let Some(store) = &inner.store {
        r.family(
            "aware_persisted_sessions",
            "gauge",
            "Sessions with a durable snapshot on disk.",
        );
        r.sample("aware_persisted_sessions", &[], store.persisted());
        r.family(
            "aware_corrupt_snapshots_total",
            "counter",
            "Snapshot files that failed to decode since open.",
        );
        r.sample("aware_corrupt_snapshots_total", &[], store.corrupt_count());
    }

    r.family(
        "aware_session_wealth",
        "gauge",
        "Remaining α-wealth, by session.",
    );
    r.family(
        "aware_session_tests_run",
        "gauge",
        "Hypotheses tested, by session.",
    );
    r.family(
        "aware_session_discoveries",
        "gauge",
        "Discoveries, by session.",
    );
    r.family(
        "aware_session_risk_spent",
        "gauge",
        "Cumulative α bid across all tests, by session (information-usage readout).",
    );
    for row in &snapshot.sessions {
        let id = row.session.to_string();
        let labels = [("session", id.as_str()), ("dataset", row.dataset.as_str())];
        r.sample_f64("aware_session_wealth", &labels, row.wealth);
        r.sample("aware_session_tests_run", &labels, row.tests_run);
        r.sample("aware_session_discoveries", &labels, row.discoveries);
        r.sample_f64("aware_session_risk_spent", &labels, row.risk_spent);
    }

    r.finish()
}

/// The running service: worker threads plus the shared state. Dropping
/// (or calling [`Service::shutdown`]) stops the workers; commands sent
/// through surviving handles then answer with a `shutdown` error.
pub struct Service {
    handle: ServiceHandle,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts a service with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when [`ServiceConfig::data_dir`] is set but the snapshot
    /// directory cannot be created or scanned — running "durable" with
    /// a broken store would be a silent lie.
    pub fn start(config: ServiceConfig) -> Service {
        let workers = config.workers.max(1);
        let store = config.data_dir.as_ref().map(|dir| {
            SnapshotStore::open(dir).unwrap_or_else(|e| {
                panic!(
                    "aware-serve: cannot open snapshot directory {}: {e}",
                    dir.display()
                )
            })
        });
        // Resume id allocation above every persisted session, so a
        // restored session and a newly created one can never collide —
        // handing a returning client someone else's fresh wealth would
        // be exactly the reset persistence exists to prevent.
        let first_free_id = store
            .as_ref()
            .and_then(SnapshotStore::max_session_id)
            .map_or(0, |max| max + 1);
        // Replica images survive a shard restart: re-seed the held map
        // from the store's replica namespace so a restarted shard still
        // answers `list_sessions`/`promote_replica` for them.
        let replicas: HashMap<SessionId, ReplicaHeld> = store
            .as_ref()
            .map(|s| {
                s.replica_entries()
                    .into_iter()
                    .map(|(id, epoch)| (id, ReplicaHeld { epoch, image: None }))
                    .collect()
            })
            .unwrap_or_default();
        let inner = Arc::new(Inner {
            registry: Registry::new(config.shards),
            metrics: Metrics::new(),
            datasets: RwLock::new(HashMap::new()),
            next_session: AtomicU64::new(first_free_id),
            pending: PendingTable::new(config.shards),
            store,
            replicas: Mutex::new(replicas),
            gossip: Mutex::new((0, Vec::new())),
            shutting_down: std::sync::atomic::AtomicBool::new(false),
            push_sinks: Mutex::new(Vec::new()),
            config,
        });

        let mut senders = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            let inner = inner.clone();
            joins.push(
                std::thread::Builder::new()
                    .name(format!("aware-serve-worker-{i}"))
                    .spawn(move || worker_loop(rx, inner))
                    .expect("spawn worker thread"),
            );
        }

        if let Some(interval) = inner.config.sweep_interval {
            let weak = Arc::downgrade(&inner);
            std::thread::Builder::new()
                .name("aware-serve-sweeper".into())
                .spawn(move || sweeper_loop(weak, interval))
                .expect("spawn sweeper thread");
        }

        if inner.store.is_some() {
            if let Some(interval) = inner.config.snapshot_every {
                if !interval.is_zero() {
                    let weak = Arc::downgrade(&inner);
                    std::thread::Builder::new()
                        .name("aware-serve-snapshotter".into())
                        .spawn(move || snapshotter_loop(weak, interval))
                        .expect("spawn snapshotter thread");
                }
            }
        }

        Service {
            handle: ServiceHandle {
                inner,
                senders: Arc::new(senders),
            },
            workers: joins,
        }
    }

    /// Starts with defaults.
    pub fn with_defaults() -> Service {
        Service::start(ServiceConfig::default())
    }

    /// A new client handle.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// See [`ServiceHandle::sweep_idle`].
    pub fn sweep_idle(&self) -> usize {
        self.handle.sweep_idle()
    }

    /// Stops the workers and waits for them to finish their queues.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.handle
            .inner
            .shutting_down
            .store(true, std::sync::atomic::Ordering::SeqCst);
        for tx in self.handle.senders.iter() {
            let _ = tx.send(Job::Shutdown);
        }
        for join in self.workers.drain(..) {
            let _ = join.join();
        }
        // Workers are quiet now: flush every dirty session so a graceful
        // restart loses nothing even in periodic-snapshot mode.
        let inner = &self.handle.inner;
        if inner.store.is_some() {
            for entry in inner.registry.entries() {
                if entry.is_dirty() {
                    spill_to_disk(inner, entry.id);
                }
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn sweeper_loop(inner: Weak<Inner>, interval: Duration) {
    loop {
        std::thread::sleep(interval);
        match inner.upgrade() {
            Some(inner) => {
                sweep_idle(&inner);
            }
            None => return, // service is gone
        }
    }
}

fn sweep_idle(inner: &Inner) -> usize {
    let timeout_ms = inner.config.idle_timeout.as_millis() as u64;
    let Some(cutoff) = inner.registry.now_ms().checked_sub(timeout_ms) else {
        return 0; // the service is younger than the timeout
    };
    let mut evicted = 0;
    for id in inner.registry.idle_ids(cutoff) {
        // With a store, spill before unlinking: idle eviction parks
        // wealth on disk instead of destroying it. A failed spill keeps
        // the session in memory. Recency is re-checked under the shard
        // write lock: a session touched between the scan and the
        // removal survives the sweep (its just-written snapshot is then
        // merely stale, and overwritten on its next spill).
        if spill_to_disk(inner, id) && inner.registry.remove_if_idle(id, cutoff) {
            inner.metrics.session_evicted();
            emit_push(
                inner,
                &crate::proto::PushEvent::SessionEvicted {
                    session: id,
                    reason: "idle".into(),
                },
            );
            evicted += 1;
        }
    }
    evicted
}

fn snapshotter_loop(inner: Weak<Inner>, interval: Duration) {
    loop {
        std::thread::sleep(interval);
        match inner.upgrade() {
            Some(inner) => {
                for entry in inner.registry.entries() {
                    if entry.is_dirty() {
                        spill_to_disk(&inner, entry.id);
                    }
                }
            }
            None => return, // service is gone
        }
    }
}

/// Commands one route may execute per deficit-round-robin visit before
/// the worker moves on to its other routes. A unit larger than the
/// quantum is never split (units are the atomicity guarantee) — its
/// route just accrues deficit across visits until the unit fits.
const DRR_QUANTUM: u64 = 64;

/// A worker's local backlog for one route (session stream): units in
/// FIFO order plus the route's accumulated deficit.
struct RouteQueue {
    jobs: std::collections::VecDeque<Job>,
    deficit: u64,
}

/// The worker loop drains its channel through a deficit-round-robin
/// scheduler: jobs are parked in per-route FIFO queues, and each
/// active route gets [`DRR_QUANTUM`] commands' worth of service per
/// round. One session flooding the worker with huge batches can no
/// longer starve the other sessions pinned to the same worker — they
/// interleave at quantum granularity while each route's own order (the
/// FIFO-per-session guarantee) is untouched, because units only ever
/// run from their own route's queue, in arrival order.
fn worker_loop(rx: mpsc::Receiver<Job>, inner: Arc<Inner>) {
    let mut routes: HashMap<u64, RouteQueue> = HashMap::new();
    let mut ring: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    let mut draining = false;

    loop {
        // Fill: block when idle; otherwise soak up whatever has
        // arrived without blocking, so newly active routes join the
        // ring before the next visit.
        if ring.is_empty() && !draining {
            match rx.recv() {
                Ok(Job::Shutdown) => draining = true,
                Ok(job) => enqueue_route(&mut routes, &mut ring, job),
                Err(_) => return,
            }
        }
        if !draining {
            loop {
                match rx.try_recv() {
                    Ok(Job::Shutdown) => {
                        // Stop pulling new work, but run everything
                        // already parked locally: jobs accepted before
                        // shutdown still answer (same contract as the
                        // old strict-FIFO loop).
                        draining = true;
                        break;
                    }
                    Ok(job) => enqueue_route(&mut routes, &mut ring, job),
                    Err(_) => break,
                }
            }
        }
        let Some(route) = ring.pop_front() else {
            if draining {
                return;
            }
            continue;
        };
        let Some(queue) = routes.get_mut(&route) else {
            continue;
        };
        queue.deficit = queue.deficit.saturating_add(DRR_QUANTUM);
        while let Some(front) = queue.jobs.front() {
            let cost = match front {
                Job::Unit { items, .. } => (items.len() as u64).max(1),
                Job::Shutdown => unreachable!("shutdown markers are not enqueued"),
            };
            if cost > queue.deficit {
                break;
            }
            queue.deficit -= cost;
            let job = queue.jobs.pop_front().expect("front observed above");
            run_unit(&inner, job);
        }
        if queue.jobs.is_empty() {
            // An idle route keeps no deficit: credit must not be
            // bankable across idle periods.
            routes.remove(&route);
        } else {
            // The route still has work but spent its round: yield to
            // the ring's other routes.
            inner.metrics.drr_deferral();
            ring.push_back(route);
        }
    }
}

/// Parks `job` on its route's local queue, activating the route in the
/// round-robin ring if it was idle.
fn enqueue_route(
    routes: &mut HashMap<u64, RouteQueue>,
    ring: &mut std::collections::VecDeque<u64>,
    job: Job,
) {
    let route = match &job {
        Job::Unit { pending_key, .. } => *pending_key,
        Job::Shutdown => unreachable!("shutdown markers are not enqueued"),
    };
    let queue = routes.entry(route).or_insert_with(|| {
        ring.push_back(route);
        RouteQueue {
            jobs: std::collections::VecDeque::new(),
            deficit: 0,
        }
    });
    queue.jobs.push_back(job);
}

/// Executes one dispatch unit to completion — the unit runs
/// back-to-back, never interleaved with other units, which is what
/// makes a batched stream's decision order identical to N sequential
/// round trips.
fn run_unit(inner: &Inner, job: Job) {
    let Job::Unit {
        items,
        mode,
        pending_key,
        enqueued,
        trace,
        reply,
    } = job
    else {
        return;
    };
    // Queue wait: one span per unit (the unit sat on the
    // queue as a whole). Each command's end-to-end latency
    // is that wait plus its own execute time.
    let queue_us = std::time::Instant::now()
        .saturating_duration_since(enqueued)
        .as_micros() as u64;
    inner.metrics.observe_queue_wait(queue_us);
    let slow_us = inner.config.slow_ms.map(|ms| ms.saturating_mul(1000));
    // The unit runs back-to-back: nothing else dequeues on
    // this worker until the whole same-session run is done,
    // which is what makes a batched stream's decision order
    // identical to N sequential round trips.
    let mut aborted = false;
    for item in items {
        let UnitItem {
            index,
            cmd,
            assigned,
        } = item;
        let response = if aborted {
            Response::Error(ServeError {
                code: ErrorCode::Aborted,
                message: "skipped: an earlier command of this session stream \
                                      failed in a fail_fast batch"
                    .into(),
            })
        } else {
            let kind = cmd.kind_index();
            // Slow-query context is extracted up front (the
            // command moves into the closure below) and only
            // when a threshold is configured.
            let slow_ctx = slow_us
                .is_some()
                .then(|| SlowContext::capture(inner, &cmd, assigned));
            let exec_start = std::time::Instant::now();
            // Panic isolation: a handler panic (poisoned
            // session mutex, engine bug) must cost one error
            // response — at worst one bricked session —
            // never this worker and the 1/W of all sessions
            // pinned to it. The command moves into the
            // closure — no per-command clone on the hot path.
            let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                execute(inner, cmd, assigned)
            }))
            .unwrap_or_else(|panic| {
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                Response::Error(ServeError {
                    code: ErrorCode::SessionError,
                    message: format!("internal error executing command: {what}"),
                })
            });
            let exec_us = exec_start.elapsed().as_micros() as u64;
            inner.metrics.observe_execute(exec_us);
            inner.metrics.observe_command(kind, queue_us + exec_us);
            if let (Some(threshold), Some(ctx)) = (slow_us, slow_ctx) {
                if queue_us + exec_us >= threshold {
                    ctx.emit(inner, trace, kind, queue_us, exec_us);
                }
            }
            response
        };
        inner.pending.release(pending_key, 1);
        if matches!(response, Response::Error(_)) {
            inner.metrics.error();
            if mode == BatchMode::FailFast {
                aborted = true;
            }
        }
        let _ = reply.send((index, response));
    }
}

/// Context for a potential slow-query record, captured before the
/// command moves into the execute closure. Cache hit/miss figures are
/// counter deltas summed over every dataset — approximate under
/// concurrency (other workers' probes land in the same window), but
/// free of per-probe bookkeeping on the hot path.
struct SlowContext {
    session: Option<SessionId>,
    fingerprint: Option<u64>,
    cache_before: (u64, u64),
}

impl SlowContext {
    fn capture(inner: &Inner, cmd: &Command, assigned: Option<SessionId>) -> SlowContext {
        let fingerprint = match cmd {
            Command::AddVisualization { filter, .. } => {
                Some(aware_data::cache::Fingerprint::of(&filter.to_predicate()).hash())
            }
            _ => None,
        };
        SlowContext {
            session: assigned.or_else(|| cmd.session()),
            fingerprint,
            cache_before: cache_totals(inner),
        }
    }

    /// Emits the structured slow-query record. The trace id is the
    /// grep key that follows the command across processes (a router's
    /// record for the same command carries the same id).
    fn emit(&self, inner: &Inner, trace: u64, kind: usize, queue_us: u64, exec_us: u64) {
        inner.metrics.slow_query();
        let (hits_after, misses_after) = cache_totals(inner);
        let dataset = self
            .session
            .and_then(|id| inner.registry.peek(id))
            .map(|e| e.meta.lock().unwrap().dataset.clone())
            .unwrap_or_else(|| "-".into());
        let kinds = crate::proto::COMMAND_KINDS;
        aware_obs::logline!(
            aware_obs::log::Level::Warn,
            "slow_query",
            trace = aware_obs::trace::fmt_trace(trace),
            kind = kinds[kind.min(kinds.len() - 1)],
            session = self
                .session
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            dataset = dataset,
            fingerprint = self
                .fingerprint
                .map(|f| format!("{f:016x}"))
                .unwrap_or_else(|| "-".into()),
            cache_hits = hits_after.saturating_sub(self.cache_before.0),
            cache_misses = misses_after.saturating_sub(self.cache_before.1),
            queue_us = queue_us,
            exec_us = exec_us,
            total_us = queue_us + exec_us,
        );
    }
}

/// Evaluation-cache hit/miss totals summed over every dataset
/// (atomics only; never touches the stripe locks).
fn cache_totals(inner: &Inner) -> (u64, u64) {
    let mut totals = (0u64, 0u64);
    for dataset in inner.datasets.read().unwrap().values() {
        let (hits, misses) = dataset.cache.counters();
        totals.0 += hits;
        totals.1 += misses;
    }
    totals
}

fn execute(inner: &Inner, cmd: Command, assigned: Option<SessionId>) -> Response {
    match cmd {
        Command::CreateSession {
            dataset,
            alpha,
            policy,
        } => create_session(
            inner,
            assigned.expect("create is pre-assigned"),
            dataset,
            alpha,
            policy,
            false,
        ),
        Command::CreateSessionAs {
            session,
            dataset,
            alpha,
            policy,
        } => create_session(inner, session, dataset, alpha, policy, true),
        Command::ExportSession { session } => export_session(inner, session),
        Command::ImportSession { session, image } => import_session(inner, session, image),
        Command::ListDatasets => list_datasets(inner),
        Command::JoinShard { .. } | Command::LeaveShard { .. } => {
            Response::Error(ServeError::invalid(
                "this server is a shard, not a cluster router — \
                 join_shard/leave_shard are router admin commands",
            ))
        }
        Command::AddVisualization {
            session,
            attribute,
            filter,
        } => add_visualization(inner, session, attribute, filter),
        Command::SetPolicy { session, policy } => set_policy(inner, session, policy),
        Command::Gauge { session } => with_session(inner, session, |s| Response::GaugeText {
            session,
            text: gauge::render(s),
        }),
        Command::Transcript { session, format } => with_session(inner, session, |s| {
            let text = match format {
                TranscriptFormat::Csv => transcript::export_csv(s),
                TranscriptFormat::Text => transcript::export_text(s),
            };
            Response::TranscriptText {
                session,
                format,
                text,
            }
        }),
        Command::CloseSession { session } => close_session(inner, session),
        Command::Stats => Response::Stats(Box::new(snapshot_with_caches(inner))),
        Command::ReplicateSession {
            session,
            epoch,
            image,
        } => replicate_session(inner, session, epoch, image),
        Command::PromoteReplica { session } => promote_replica(inner, session),
        Command::DropReplica { session } => drop_replica(inner, session),
        Command::SnapshotSession { session } => snapshot_session(inner, session),
        Command::ListSessions => list_sessions(inner),
        Command::Gossip {
            from,
            generation,
            members,
        } => gossip(inner, from, generation, members),
    }
}

fn create_session(
    inner: &Inner,
    id: SessionId,
    dataset: String,
    alpha: f64,
    policy: PolicySpec,
    preassigned: bool,
) -> Response {
    let Some((table, cache, fingerprint)) = inner
        .datasets
        .read()
        .unwrap()
        .get(&dataset)
        .map(|d| (d.table.clone(), d.cache.clone(), d.fingerprint))
    else {
        return Response::Error(ServeError {
            code: ErrorCode::UnknownDataset,
            message: format!("no dataset '{dataset}' registered"),
        });
    };
    let boxed = match policy.build() {
        Ok(p) => p,
        Err(e) => return Response::Error(e),
    };
    // A preassigned id comes from outside this shard's allocator (a
    // cluster router); refuse collisions with anything this shard
    // already knows — live or spilled — and keep the local allocator
    // above it so locally created sessions can never collide either.
    if preassigned {
        if inner.store.as_ref().is_some_and(|s| s.contains(id)) {
            return Response::Error(ServeError::invalid(format!(
                "session id {id} is already in use (persisted on this shard)"
            )));
        }
        inner.next_session.fetch_max(id + 1, Ordering::Relaxed);
    }
    // All sessions on one dataset share its evaluation cache: filter
    // chains and global histograms warmed by any session serve them all.
    let session = match Session::shared_with_cache(table, alpha, boxed, cache) {
        Ok(s) => s,
        Err(e) => return Response::Error(ServeError::invalid(format!("cannot open session: {e}"))),
    };

    if let Err(refusal) = ensure_capacity(inner) {
        return refusal;
    }

    let wealth = session.wealth();
    let policy_name = session.policy_name();
    let meta = SessionMeta {
        dataset,
        fingerprint,
        policy,
        policy_since: 0,
    };
    let entry = if preassigned {
        match inner.registry.try_insert(id, session, meta) {
            Some(entry) => entry,
            None => {
                return Response::Error(ServeError::invalid(format!(
                    "session id {id} is already in use (live on this shard)"
                )))
            }
        }
    } else {
        inner.registry.insert(id, session, meta)
    };
    inner.metrics.session_created();
    // A created session is durable the moment the client learns its id:
    // in synchronous mode the initial snapshot is on disk before this
    // response is released; otherwise the dirty flag queues it for the
    // next periodic pass.
    entry.mark_dirty();
    if inner.sync_snapshots() {
        let image = {
            let session = entry.session.lock().unwrap();
            entry.clear_dirty();
            image_of(&entry, &session)
        };
        if !save_image(inner, &image) {
            // The write-before-reply promise broke; leave the session
            // dirty so the shutdown flush (and any later spill) retries.
            entry.mark_dirty();
        }
    }
    Response::SessionCreated {
        session: id,
        wealth,
        policy: policy_name,
    }
}

/// Makes room for one more session, spilling (with a store) or dropping
/// (without) LRU victims. The victim's recency is re-checked under its
/// shard write lock, so a session touched after the scan survives and
/// the scan re-runs; a bounded number of attempts turns a registry full
/// of hot sessions into an `overloaded` error instead of a livelock.
/// Under concurrent creates this can momentarily overshoot by a few
/// evictions — harmless, the cap is a resource bound, not an exact
/// count.
// An `Err` here is one `Response` about to hit the wire — cold path,
// not worth boxing.
#[allow(clippy::result_large_err)]
fn ensure_capacity(inner: &Inner) -> Result<(), Response> {
    let mut attempts = 0;
    while inner.registry.len() >= inner.config.max_sessions {
        attempts += 1;
        let victim_info = inner.registry.lru_candidate();
        let evicted = match victim_info {
            Some((victim, observed_seq)) => {
                // Spill before unlinking: LRU eviction parks the
                // victim's wealth on disk. A session touched (and
                // possibly mutated) after the scan is not removed; its
                // just-written snapshot is then merely stale and will
                // be overwritten by its next spill.
                spill_to_disk(inner, victim)
                    && inner.registry.remove_if_unused_since(victim, observed_seq)
            }
            None => false,
        };
        if evicted {
            inner.metrics.session_evicted();
            if let Some((victim, _)) = victim_info {
                emit_push(
                    inner,
                    &crate::proto::PushEvent::SessionEvicted {
                        session: victim,
                        reason: "lru".into(),
                    },
                );
            }
        } else if attempts >= 16 {
            inner.metrics.overloaded();
            return Err(Response::Error(ServeError {
                code: ErrorCode::Overloaded,
                message: "session capacity exhausted and nothing evictable".into(),
            }));
        }
    }
    Ok(())
}

/// Finds a live session, transparently restoring it from the snapshot
/// store when it was spilled (or the server restarted). Restore
/// re-derives every selection from the stored predicates through the
/// dataset's shared evaluation cache — snapshots carry no bitmaps.
#[allow(clippy::result_large_err)] // cold path, the Err is the reply
fn lookup_or_restore(inner: &Inner, id: SessionId) -> Result<Arc<SessionEntry>, Response> {
    if let Some(entry) = inner.registry.get(id) {
        return Ok(entry);
    }
    let Some(store) = &inner.store else {
        return Err(Response::Error(ServeError::unknown_session(id)));
    };
    if !store.contains(id) {
        return Err(Response::Error(ServeError::unknown_session(id)));
    }
    let image = store.load(id).map_err(Response::Error)?;
    let Some((table, cache, fingerprint)) = inner
        .datasets
        .read()
        .unwrap()
        .get(&image.dataset)
        .map(|d| (d.table.clone(), d.cache.clone(), d.fingerprint))
    else {
        return Err(Response::Error(ServeError {
            code: ErrorCode::UnknownDataset,
            message: format!(
                "session {id} was persisted over dataset '{}', which is not registered",
                image.dataset
            ),
        }));
    };
    // The image names the table it was snapshotted over by *content*,
    // not just by name: a registered table whose fingerprint differs is
    // different data, and a ledger replayed against different data is a
    // corrupt ledger (version-1 images predate fingerprints and keep
    // the trust they always had).
    if let Some(stamped) = image.fingerprint {
        if stamped != fingerprint {
            return Err(Response::Error(ServeError {
                code: ErrorCode::CorruptSnapshot,
                message: format!(
                    "session {id} was snapshotted over dataset '{}' with content \
                     fingerprint {stamped:016x}, but the registered table fingerprints \
                     {fingerprint:016x} — refusing to replay the ledger against \
                     different data",
                    image.dataset
                ),
            }));
        }
    }
    let boxed = image.policy.build().map_err(Response::Error)?;
    let meta = SessionMeta {
        dataset: image.dataset,
        fingerprint,
        policy: image.policy,
        policy_since: image.policy_since,
    };
    let session = Session::restore(
        table,
        Some(cache),
        image.session,
        boxed,
        image.policy_since as usize,
    )
    .map_err(|e| {
        Response::Error(ServeError {
            code: ErrorCode::CorruptSnapshot,
            message: format!("session {id} failed restore validation: {e}"),
        })
    })?;
    ensure_capacity(inner)?;
    Ok(inner.registry.insert(id, session, meta))
}

/// Serves the read-only commands (`gauge`, `transcript`). A session
/// this shard only holds a *replica* of is served from the replica
/// image — materialized per request through the full restore validator
/// and never installed in the registry, so a hedged read off a replica
/// can never fork the ledger into a second serveable copy.
fn with_session(
    inner: &Inner,
    id: SessionId,
    f: impl FnOnce(&mut crate::registry::ServedSession) -> Response,
) -> Response {
    match lookup_or_restore(inner, id) {
        Ok(entry) => f(&mut entry.session.lock().unwrap()),
        Err(refusal) => match read_from_replica(inner, id, f) {
            Some(response) => response,
            None => refusal,
        },
    }
}

/// The replica half of [`with_session`]: `None` when no replica image
/// of `id` is held here (the caller's primary-path refusal stands).
fn read_from_replica(
    inner: &Inner,
    id: SessionId,
    f: impl FnOnce(&mut crate::registry::ServedSession) -> Response,
) -> Option<Response> {
    let mem_bytes = {
        let replicas = inner.replicas.lock().unwrap();
        replicas.get(&id)?.image.clone()
    };
    let bytes = match mem_bytes {
        Some(bytes) => bytes,
        None => inner.store.as_ref()?.load_replica(id)?.1,
    };
    match validate_image(inner, id, &bytes) {
        Ok((mut session, _meta)) => {
            inner.metrics.hedged_read();
            Some(f(&mut session))
        }
        Err(e) => Some(Response::Error(ServeError {
            code: ErrorCode::CorruptSnapshot,
            message: format!(
                "replica image of session {id} failed validation on read: {}",
                e.message
            ),
        })),
    }
}

/// [`with_session`] for state-mutating commands: marks the entry dirty
/// and, in synchronous-snapshot mode, writes the session's snapshot to
/// disk before the response escapes (the write happens outside the
/// session mutex; the image was cut under it).
fn with_session_mut(
    inner: &Inner,
    id: SessionId,
    f: impl FnOnce(&mut crate::registry::ServedSession, &SessionEntry) -> Response,
) -> Response {
    let entry = match lookup_or_restore(inner, id) {
        Ok(entry) => entry,
        Err(refusal) => return refusal,
    };
    let (response, image) = {
        let mut session = entry.session.lock().unwrap();
        let response = f(&mut session, &entry);
        entry.mark_dirty();
        let image = if inner.sync_snapshots() {
            entry.clear_dirty();
            Some(image_of(&entry, &session))
        } else {
            None
        };
        (response, image)
    };
    if let Some(image) = image {
        if !save_image(inner, &image) {
            // Synchronous durability failed: re-mark dirty so the
            // shutdown flush and eviction spill keep trying.
            entry.mark_dirty();
        }
    }
    response
}

fn add_visualization(
    inner: &Inner,
    id: SessionId,
    attribute: String,
    filter: crate::proto::FilterSpec,
) -> Response {
    with_session_mut(inner, id, |s, _entry| {
        match s.add_visualization(attribute, filter.to_predicate()) {
            Ok(outcome) => {
                let hypothesis = outcome.hypothesis.map(|(hid, record)| {
                    inner
                        .metrics
                        .hypothesis_tested(record.decision.is_rejection());
                    HypothesisReport::from_record(hid.0, &record)
                });
                Response::VizAdded {
                    session: id,
                    viz: outcome.viz.0,
                    wealth: s.wealth(),
                    hypothesis,
                }
            }
            Err(e) if e.is_wealth_exhausted() => {
                inner.metrics.rejected_by_budget();
                Response::Error(ServeError::from_session(e))
            }
            Err(e) => Response::Error(ServeError::from_session(e)),
        }
    })
}

fn set_policy(inner: &Inner, id: SessionId, policy: PolicySpec) -> Response {
    let boxed = match policy.build() {
        Ok(p) => p,
        Err(e) => return Response::Error(e),
    };
    with_session_mut(inner, id, |s, entry| {
        s.replace_policy(boxed);
        // Record where the new policy's observation history begins, so
        // a restore replays `observe` only for tests it actually saw.
        let mut meta = entry.meta.lock().unwrap();
        meta.policy = policy;
        meta.policy_since = s.tests_run() as u64;
        Response::PolicySet {
            session: id,
            policy: s.policy_name(),
        }
    })
}

fn close_session(inner: &Inner, id: SessionId) -> Response {
    match inner.registry.remove(id) {
        Some(entry) => {
            let s = entry.session.lock().unwrap();
            if let Some(store) = &inner.store {
                store.remove(id);
            }
            inner.metrics.session_closed();
            Response::SessionClosed {
                session: id,
                hypotheses: s.hypotheses().len() as u64,
                discoveries: s.discoveries().len() as u64,
            }
        }
        // A spilled session can be closed without resurrecting it: the
        // farewell totals are read from the snapshot, then the files go.
        None => match &inner.store {
            Some(store) if store.contains(id) => match store.load(id) {
                Ok(image) => {
                    store.remove(id);
                    inner.metrics.session_closed();
                    Response::SessionClosed {
                        session: id,
                        hypotheses: image.session.hypotheses.len() as u64,
                        discoveries: image
                            .session
                            .hypotheses
                            .iter()
                            .filter(|h| h.is_discovery())
                            .count() as u64,
                    }
                }
                // Corrupt snapshots are NOT deleted on close: the bytes
                // are the only remaining evidence an operator could
                // still recover.
                Err(e) => Response::Error(e),
            },
            _ => Response::Error(ServeError::unknown_session(id)),
        },
    }
}

/// Exports a session for migration: quiesce (this runs on the session's
/// pinned worker, after every earlier command), snapshot, remove from
/// memory *and* disk, and hand the complete `AWRS` image to the caller.
/// After the response leaves, the wealth ledger exists only in those
/// bytes — which is the point: a migrated session must never be
/// serveable from two shards at once (that would double its α-budget).
fn export_session(inner: &Inner, id: SessionId) -> Response {
    let entry = match lookup_or_restore(inner, id) {
        Ok(entry) => entry,
        Err(refusal) => return refusal,
    };
    let image = {
        let session = entry.session.lock().unwrap();
        image_of(&entry, &session)
    };
    let bytes = crate::snapshot::encode(&image);
    // Decode-validate our own bytes before destroying the live session:
    // shipping an image the far side must refuse would strand the
    // wealth in transit.
    if let Err(e) = crate::snapshot::decode(&bytes) {
        return Response::Error(ServeError {
            code: ErrorCode::CorruptSnapshot,
            message: format!("session {id} produced an unreadable export image: {e}"),
        });
    }
    inner.registry.remove(id);
    if let Some(store) = &inner.store {
        store.remove(id);
    }
    Response::SessionExported {
        session: id,
        image: bytes,
    }
}

/// Imports an exported `AWRS` image: full snapshot validation, dataset
/// fingerprint check, selections re-derived through this shard's shared
/// `EvalCache`, id allocator bumped above the imported id.
fn import_session(inner: &Inner, id: SessionId, bytes: Vec<u8>) -> Response {
    let image = match crate::snapshot::decode(&bytes) {
        Ok(image) => image,
        Err(e) => return Response::Error(e),
    };
    if image.id != id {
        return Response::Error(ServeError::invalid(format!(
            "import addressed session {id} but the image contains session {}",
            image.id
        )));
    }
    let Some((table, cache, fingerprint)) = inner
        .datasets
        .read()
        .unwrap()
        .get(&image.dataset)
        .map(|d| (d.table.clone(), d.cache.clone(), d.fingerprint))
    else {
        return Response::Error(ServeError {
            code: ErrorCode::UnknownDataset,
            message: format!(
                "image is over dataset '{}', which is not registered on this shard",
                image.dataset
            ),
        });
    };
    // Cross-shard handoff is exactly where name-aliasing bites: both
    // shards say "census", only the fingerprint says whether it is the
    // same census. A mismatch is a corrupt-snapshot refusal, never a
    // ledger replayed against different data.
    if let Some(stamped) = image.fingerprint {
        if stamped != fingerprint {
            return Response::Error(ServeError {
                code: ErrorCode::CorruptSnapshot,
                message: format!(
                    "image fingerprints dataset '{}' as {stamped:016x}, but this \
                     shard's table fingerprints {fingerprint:016x} — not the same data",
                    image.dataset
                ),
            });
        }
    }
    if let Some(store) = &inner.store {
        if store.contains(id) {
            return Response::Error(ServeError::invalid(format!(
                "session id {id} is already in use (persisted on this shard)"
            )));
        }
        // The id may carry a tombstone from an earlier export off this
        // shard (or a close); an imported session must be able to
        // persist here again.
        store.revive(id);
    }
    let boxed = match image.policy.build() {
        Ok(p) => p,
        Err(e) => return Response::Error(e),
    };
    let meta = SessionMeta {
        dataset: image.dataset,
        fingerprint,
        policy: image.policy,
        policy_since: image.policy_since,
    };
    let session = match Session::restore(
        table,
        Some(cache),
        image.session,
        boxed,
        image.policy_since as usize,
    ) {
        Ok(s) => s,
        Err(e) => {
            return Response::Error(ServeError {
                code: ErrorCode::CorruptSnapshot,
                message: format!("import of session {id} failed restore validation: {e}"),
            })
        }
    };
    if let Err(refusal) = ensure_capacity(inner) {
        return refusal;
    }
    let wealth = session.wealth();
    let Some(entry) = inner.registry.try_insert(id, session, meta) else {
        return Response::Error(ServeError::invalid(format!(
            "session id {id} is already in use (live on this shard)"
        )));
    };
    // Imported ids come from another allocator; never hand them out
    // locally again.
    inner.next_session.fetch_max(id + 1, Ordering::Relaxed);
    // The import is durable under the same contract a create is.
    entry.mark_dirty();
    if inner.sync_snapshots() {
        let image = {
            let session = entry.session.lock().unwrap();
            entry.clear_dirty();
            image_of(&entry, &session)
        };
        if !save_image(inner, &image) {
            entry.mark_dirty();
        }
    }
    Response::SessionImported {
        session: id,
        wealth,
    }
}

/// The dataset roster: what a router checks (by content fingerprint)
/// before admitting this shard to a ring, plus the shard's next free
/// session id so a router can seat its cluster-wide allocator above
/// every id any shard has ever handed out.
fn list_datasets(inner: &Inner) -> Response {
    let mut datasets: Vec<crate::proto::DatasetInfo> = inner
        .datasets
        .read()
        .unwrap()
        .iter()
        .map(|(name, d)| crate::proto::DatasetInfo {
            name: name.clone(),
            rows: d.table.rows() as u64,
            fingerprint: d.fingerprint,
        })
        .collect();
    datasets.sort_by(|a, b| a.name.cmp(&b.name));
    Response::Datasets {
        datasets,
        next_session: inner.next_session.load(Ordering::Relaxed),
    }
}

/// Runs the full restore validation battery over a shipped image
/// without installing anything: decode, id match, dataset lookup by
/// name, content-fingerprint check, policy build, and bit-for-bit
/// ledger re-validation via `Session::restore`. Returns the restored
/// session and its meta so promotion can install the result;
/// replication validates and drops.
fn validate_image(
    inner: &Inner,
    id: SessionId,
    bytes: &[u8],
) -> Result<(crate::registry::ServedSession, SessionMeta), ServeError> {
    let image = crate::snapshot::decode(bytes)?;
    if image.id != id {
        return Err(ServeError::invalid(format!(
            "image addressed session {id} but contains session {}",
            image.id
        )));
    }
    let Some((table, cache, fingerprint)) = inner
        .datasets
        .read()
        .unwrap()
        .get(&image.dataset)
        .map(|d| (d.table.clone(), d.cache.clone(), d.fingerprint))
    else {
        return Err(ServeError {
            code: ErrorCode::UnknownDataset,
            message: format!(
                "image is over dataset '{}', which is not registered on this shard",
                image.dataset
            ),
        });
    };
    if let Some(stamped) = image.fingerprint {
        if stamped != fingerprint {
            return Err(ServeError {
                code: ErrorCode::CorruptSnapshot,
                message: format!(
                    "image fingerprints dataset '{}' as {stamped:016x}, but this \
                     shard's table fingerprints {fingerprint:016x} — not the same data",
                    image.dataset
                ),
            });
        }
    }
    let boxed = image.policy.build()?;
    let meta = SessionMeta {
        dataset: image.dataset,
        fingerprint,
        policy: image.policy,
        policy_since: image.policy_since,
    };
    let session = Session::restore(
        table,
        Some(cache),
        image.session,
        boxed,
        image.policy_since as usize,
    )
    .map_err(|e| ServeError {
        code: ErrorCode::CorruptSnapshot,
        message: format!("session {id} failed restore validation: {e}"),
    })?;
    Ok((session, meta))
}

/// Forgets the held replica image of `id` (map entry and durable file).
fn discard_replica(inner: &Inner, id: SessionId) {
    inner.replicas.lock().unwrap().remove(&id);
    if let Some(store) = &inner.store {
        store.remove_replica(id);
    }
}

/// Applies one `replicate_session`: full restore validation (a diverged
/// or tampered image is refused and nothing is stored), monotone epoch
/// check, then durable (or in-memory) retention of the image bytes.
fn replicate_session(inner: &Inner, id: SessionId, epoch: u64, bytes: Vec<u8>) -> Response {
    // This shard is the session's *primary* — replication here would
    // leave two serveable copies of one wealth ledger. Placement is
    // wrong; refuse loudly.
    if inner.registry.peek(id).is_some() || inner.store.as_ref().is_some_and(|s| s.contains(id)) {
        return Response::Error(ServeError::invalid(format!(
            "session {id} is primary on this shard — a shard never replicates to itself"
        )));
    }
    if let Err(e) = validate_image(inner, id, &bytes) {
        return Response::Error(ServeError {
            code: ErrorCode::CorruptSnapshot,
            message: format!("replica image of session {id} refused: {}", e.message),
        });
    }
    // The dispatcher serializes commands per session, so no concurrent
    // replicate/promote/drop races this epoch check.
    if let Some(held) = inner.replicas.lock().unwrap().get(&id) {
        if epoch < held.epoch {
            return Response::Error(ServeError::invalid(format!(
                "stale replication epoch {epoch} for session {id} (holding epoch {})",
                held.epoch
            )));
        }
        if epoch == held.epoch {
            // Idempotent re-ship of the current epoch: ack, don't rewrite.
            return Response::SessionReplicated { session: id, epoch };
        }
    }
    let image = if let Some(store) = &inner.store {
        if let Err(e) = store.save_replica(id, epoch, &bytes) {
            return Response::Error(ServeError {
                code: ErrorCode::Unavailable,
                message: format!("cannot persist replica image of session {id}: {e}"),
            });
        }
        None
    } else {
        Some(bytes)
    };
    inner
        .replicas
        .lock()
        .unwrap()
        .insert(id, ReplicaHeld { epoch, image });
    Response::SessionReplicated { session: id, epoch }
}

/// Installs the held replica image as the live session. The bytes are
/// re-read from their durable home and re-validated from scratch — a
/// tampered or diverged image answers `corrupt_snapshot` and the
/// replica is discarded, never adopted as a ledger.
fn promote_replica(inner: &Inner, id: SessionId) -> Response {
    let held = inner
        .replicas
        .lock()
        .unwrap()
        .get(&id)
        .map(|h| (h.epoch, h.image.clone()));
    let Some((epoch, mem_bytes)) = held else {
        return Response::Error(ServeError {
            code: ErrorCode::UnknownSession,
            message: format!("no replica image held for session {id}"),
        });
    };
    let bytes = match &inner.store {
        Some(store) => match store.load_replica(id) {
            Some((_, bytes)) => bytes,
            None => {
                discard_replica(inner, id);
                return Response::Error(ServeError {
                    code: ErrorCode::CorruptSnapshot,
                    message: format!("replica image of session {id} is missing from disk"),
                });
            }
        },
        None => match mem_bytes {
            Some(bytes) => bytes,
            None => {
                discard_replica(inner, id);
                return Response::Error(ServeError {
                    code: ErrorCode::CorruptSnapshot,
                    message: format!("replica image of session {id} has no bytes"),
                });
            }
        },
    };
    let (session, meta) = match validate_image(inner, id, &bytes) {
        Ok(v) => v,
        Err(e) => {
            // The Hardt–Ullman rule: a ledger that fails validation is
            // not a stale ledger, it is no ledger. Discard, never adopt.
            discard_replica(inner, id);
            aware_obs::logline!(
                aware_obs::log::Level::Warn,
                "replica_refused",
                session = id,
                epoch = epoch,
                error = e.message,
            );
            return Response::Error(ServeError {
                code: ErrorCode::CorruptSnapshot,
                message: format!(
                    "replica image of session {id} (epoch {epoch}) refused at promotion: {}",
                    e.message
                ),
            });
        }
    };
    if let Err(refusal) = ensure_capacity(inner) {
        return refusal;
    }
    if let Some(store) = &inner.store {
        // The id may carry a tombstone from an earlier export/close.
        store.revive(id);
    }
    let wealth = session.wealth();
    let Some(entry) = inner.registry.try_insert(id, session, meta) else {
        return Response::Error(ServeError::invalid(format!(
            "session id {id} is already in use (live on this shard)"
        )));
    };
    inner.next_session.fetch_max(id + 1, Ordering::Relaxed);
    // The promoted session is durable under the same contract an
    // import is; the replica file goes — this shard is the primary now.
    entry.mark_dirty();
    if inner.sync_snapshots() {
        let image = {
            let session = entry.session.lock().unwrap();
            entry.clear_dirty();
            image_of(&entry, &session)
        };
        if !save_image(inner, &image) {
            entry.mark_dirty();
        }
    }
    discard_replica(inner, id);
    inner.metrics.promotion();
    aware_obs::logline!(
        aware_obs::log::Level::Info,
        "replica_promoted",
        session = id,
        epoch = epoch,
        wealth = wealth,
    );
    Response::ReplicaPromoted {
        session: id,
        epoch,
        wealth,
    }
}

fn drop_replica(inner: &Inner, id: SessionId) -> Response {
    discard_replica(inner, id);
    Response::ReplicaDropped { session: id }
}

/// The non-destructive half of `export_session`: snapshot the session
/// (quiesced on its pinned worker) and return the image, leaving the
/// session serving. The router's replication cadence lives on this.
fn snapshot_session(inner: &Inner, id: SessionId) -> Response {
    let entry = match lookup_or_restore(inner, id) {
        Ok(entry) => entry,
        Err(refusal) => return refusal,
    };
    let image = {
        let session = entry.session.lock().unwrap();
        image_of(&entry, &session)
    };
    let bytes = crate::snapshot::encode(&image);
    // Decode-validate our own bytes: shipping an image the replica must
    // refuse would waste the round trip and mask encoder bugs.
    if let Err(e) = crate::snapshot::decode(&bytes) {
        return Response::Error(ServeError {
            code: ErrorCode::CorruptSnapshot,
            message: format!("session {id} produced an unreadable snapshot image: {e}"),
        });
    }
    Response::SessionExported {
        session: id,
        image: bytes,
    }
}

/// Everything this shard knows about: live and persisted primaries,
/// plus held replica images with their epochs. Sorted by id for
/// deterministic replies.
fn list_sessions(inner: &Inner) -> Response {
    let mut seen = std::collections::HashSet::new();
    let mut sessions: Vec<crate::proto::SessionEntry> = Vec::new();
    for entry in inner.registry.entries() {
        if seen.insert(entry.id) {
            sessions.push(crate::proto::SessionEntry {
                session: entry.id,
                replica: false,
                epoch: 0,
            });
        }
    }
    if let Some(store) = &inner.store {
        for id in store.session_ids() {
            if seen.insert(id) {
                sessions.push(crate::proto::SessionEntry {
                    session: id,
                    replica: false,
                    epoch: 0,
                });
            }
        }
    }
    for (&id, held) in inner.replicas.lock().unwrap().iter() {
        sessions.push(crate::proto::SessionEntry {
            session: id,
            replica: true,
            epoch: held.epoch,
        });
    }
    sessions.sort_by_key(|s| (s.session, s.replica));
    Response::Sessions { sessions }
}

/// Merges a membership view: a higher ring generation replaces the
/// held one (SWIM-style last-writer-wins on the generation), and the
/// reply always carries the merged view so the sender learns what this
/// shard knows.
fn gossip(
    inner: &Inner,
    from: String,
    generation: u64,
    members: Vec<crate::proto::MemberInfo>,
) -> Response {
    let mut view = inner.gossip.lock().unwrap();
    if generation > view.0 {
        aware_obs::logline!(
            aware_obs::log::Level::Debug,
            "gossip_adopted",
            from = from,
            generation = generation,
            members = members.len(),
        );
        *view = (generation, members);
    }
    Response::GossipView {
        generation: view.0,
        members: view.1.clone(),
    }
}

// Compile-time proof that sessions may cross threads: the whole serving
// design rests on it.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<crate::registry::ServedSession>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::FilterSpec;
    use aware_data::census::CensusGenerator;
    use aware_data::predicate::CmpOp;
    use aware_data::value::Value;

    fn test_service(config: ServiceConfig) -> Service {
        let service = Service::start(config);
        service
            .handle()
            .register_table("census", CensusGenerator::new(7).generate(4_000));
        service
    }

    fn fixed_policy() -> PolicySpec {
        PolicySpec::Fixed { gamma: 10.0 }
    }

    fn create(h: &ServiceHandle) -> SessionId {
        match h.call(Command::CreateSession {
            dataset: "census".into(),
            alpha: 0.05,
            policy: fixed_policy(),
        }) {
            Response::SessionCreated {
                session, wealth, ..
            } => {
                assert!((wealth - 0.0475).abs() < 1e-12);
                session
            }
            other => panic!("create failed: {other:?}"),
        }
    }

    fn salary_filter() -> FilterSpec {
        FilterSpec::Cmp {
            column: "salary_over_50k".into(),
            op: CmpOp::Eq,
            value: Value::Bool(true),
        }
    }

    #[test]
    fn full_session_lifecycle_through_the_handle() {
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        let sid = create(&h);

        // Descriptive view: no hypothesis.
        let r = h.call(Command::AddVisualization {
            session: sid,
            attribute: "sex".into(),
            filter: FilterSpec::True,
        });
        match r {
            Response::VizAdded {
                viz, hypothesis, ..
            } => {
                assert_eq!(viz, 0);
                assert!(hypothesis.is_none());
            }
            other => panic!("{other:?}"),
        }

        // Filtered view on a planted dependency: discovery.
        let r = h.call(Command::AddVisualization {
            session: sid,
            attribute: "education".into(),
            filter: salary_filter(),
        });
        match r {
            Response::VizAdded {
                hypothesis: Some(hyp),
                wealth,
                ..
            } => {
                assert!(hyp.rejected, "planted dependency: p = {}", hyp.p_value);
                assert!(wealth > 0.0475, "payout grows wealth");
            }
            other => panic!("{other:?}"),
        }

        // Gauge and transcripts render.
        match h.call(Command::Gauge { session: sid }) {
            Response::GaugeText { text, .. } => assert!(text.contains("AWARE risk gauge")),
            other => panic!("{other:?}"),
        }
        match h.call(Command::Transcript {
            session: sid,
            format: TranscriptFormat::Csv,
        }) {
            Response::TranscriptText { text, .. } => {
                assert!(text.starts_with(transcript::TRANSCRIPT_HEADER));
            }
            other => panic!("{other:?}"),
        }

        // Policy swap keeps the session but renames the policy.
        match h.call(Command::SetPolicy {
            session: sid,
            policy: PolicySpec::Hopeful { delta: 5.0 },
        }) {
            Response::PolicySet { policy, .. } => assert!(policy.contains("hopeful")),
            other => panic!("{other:?}"),
        }

        // Close reports totals; a second close is unknown.
        match h.call(Command::CloseSession { session: sid }) {
            Response::SessionClosed {
                hypotheses,
                discoveries,
                ..
            } => {
                assert_eq!(hypotheses, 1);
                assert_eq!(discoveries, 1);
            }
            other => panic!("{other:?}"),
        }
        match h.call(Command::CloseSession { session: sid }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession),
            other => panic!("{other:?}"),
        }

        // Metrics saw it all.
        match h.call(Command::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.sessions_created, 1);
                assert_eq!(s.sessions_closed, 1);
                assert_eq!(s.sessions_live, 0);
                assert_eq!(s.hypotheses_tested, 1);
                assert_eq!(s.discoveries, 1);
                assert!(s.commands >= 8);
                assert_eq!(s.errors, 1, "the double-close");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batches_mix_sessions_and_preserve_submission_order() {
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        // Two creates in one batch: both pre-assigned, distinct ids.
        let make = Command::CreateSession {
            dataset: "census".into(),
            alpha: 0.05,
            policy: fixed_policy(),
        };
        let created = h.call_batch(vec![make.clone(), make]);
        let sids: Vec<SessionId> = created
            .iter()
            .map(|r| match r {
                Response::SessionCreated { session, .. } => *session,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_ne!(sids[0], sids[1]);

        // A mixed batch: per-session streams interleaved, plus an
        // inline stats item in the middle.
        let batch = vec![
            Command::AddVisualization {
                session: sids[0],
                attribute: "education".into(),
                filter: salary_filter(),
            },
            Command::Gauge { session: sids[1] },
            Command::Stats,
            Command::Gauge { session: sids[0] },
            Command::AddVisualization {
                session: sids[1],
                attribute: "race".into(),
                filter: FilterSpec::True,
            },
        ];
        let responses = h.call_batch(batch);
        assert_eq!(responses.len(), 5);
        // Responses come back in submission order, each for the session
        // that its command addressed.
        match &responses[0] {
            Response::VizAdded { session, .. } => assert_eq!(*session, sids[0]),
            other => panic!("{other:?}"),
        }
        match &responses[1] {
            Response::GaugeText { session, .. } => assert_eq!(*session, sids[1]),
            other => panic!("{other:?}"),
        }
        assert!(matches!(&responses[2], Response::Stats(_)));
        match &responses[3] {
            Response::GaugeText { session, .. } => assert_eq!(*session, sids[0]),
            other => panic!("{other:?}"),
        }
        match &responses[4] {
            Response::VizAdded { session, .. } => assert_eq!(*session, sids[1]),
            other => panic!("{other:?}"),
        }
        match h.call(Command::Stats) {
            Response::Stats(s) => {
                assert!(s.batches >= 2);
                assert!(s.batch_commands >= 7);
                assert!(s.batch_size_hist[1] >= 2, "{:?}", s.batch_size_hist);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fail_fast_aborts_only_the_failing_session_stream() {
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        let healthy = create(&h);
        let failing = create(&h);
        let responses = h.call_batch_mode(
            vec![
                Command::Gauge { session: failing },
                Command::AddVisualization {
                    session: failing,
                    attribute: "no_such_column".into(),
                    filter: FilterSpec::True,
                },
                Command::Gauge { session: failing },
                Command::Gauge { session: healthy },
            ],
            BatchMode::FailFast,
        );
        assert!(responses[0].is_ok(), "{:?}", responses[0]);
        match &responses[1] {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::SessionError),
            other => panic!("{other:?}"),
        }
        // The rest of the failing stream is skipped…
        match &responses[2] {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Aborted),
            other => panic!("{other:?}"),
        }
        // …but the healthy session's stream is untouched.
        assert!(responses[3].is_ok(), "{:?}", responses[3]);
        // The aborted session itself survives (nothing was applied).
        assert!(h.call(Command::Gauge { session: failing }).is_ok());
        // Same shape in continue mode: the post-error gauge executes.
        let responses = h.call_batch(vec![
            Command::AddVisualization {
                session: failing,
                attribute: "no_such_column".into(),
                filter: FilterSpec::True,
            },
            Command::Gauge { session: failing },
        ]);
        assert!(matches!(&responses[0], Response::Error(_)));
        assert!(responses[1].is_ok(), "{:?}", responses[1]);
    }

    #[test]
    fn pending_cap_refuses_oversized_session_streams() {
        let service = test_service(ServiceConfig {
            max_pending_per_session: 4,
            ..ServiceConfig::default()
        });
        let h = service.handle();
        let sid = create(&h);
        // A same-session unit larger than the cap is refused whole…
        let responses = h.call_batch(vec![Command::Gauge { session: sid }; 5]);
        for r in &responses {
            match r {
                Response::Error(e) => assert_eq!(e.code, ErrorCode::Overloaded),
                other => panic!("{other:?}"),
            }
        }
        // …while one at the cap sails through, and the cap releases as
        // commands execute (the stream is reusable afterwards).
        for _ in 0..3 {
            let responses = h.call_batch(vec![Command::Gauge { session: sid }; 4]);
            assert!(responses.iter().all(Response::is_ok));
        }
        match h.call(Command::Stats) {
            Response::Stats(s) => assert!(s.overloaded >= 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_dataset_and_session_are_clean_errors() {
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        match h.call(Command::CreateSession {
            dataset: "nope".into(),
            alpha: 0.05,
            policy: fixed_policy(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownDataset),
            other => panic!("{other:?}"),
        }
        match h.call(Command::Gauge { session: 123 }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession),
            other => panic!("{other:?}"),
        }
        // Bad alpha surfaces as invalid_argument.
        match h.call(Command::CreateSession {
            dataset: "census".into(),
            alpha: 2.0,
            policy: fixed_policy(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::InvalidArgument),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wealth_exhaustion_maps_to_budget_rejection() {
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        let sid = match h.call(Command::CreateSession {
            dataset: "census".into(),
            alpha: 0.05,
            policy: PolicySpec::Fixed { gamma: 1.0 }, // one acceptance drains it
        }) {
            Response::SessionCreated { session, .. } => session,
            other => panic!("{other:?}"),
        };
        let mut saw_exhaustion = false;
        for wave in ["Wave-1", "Wave-2", "Wave-3", "Wave-4", "Wave-1"] {
            let r = h.call(Command::AddVisualization {
                session: sid,
                attribute: "race".into(),
                filter: FilterSpec::Cmp {
                    column: "survey_wave".into(),
                    op: CmpOp::Eq,
                    value: Value::Str(wave.into()),
                },
            });
            if let Response::Error(e) = r {
                assert_eq!(e.code, ErrorCode::WealthExhausted);
                saw_exhaustion = true;
                break;
            }
        }
        assert!(saw_exhaustion, "γ=1 on null views must exhaust the budget");
        match h.call(Command::Stats) {
            Response::Stats(s) => assert!(s.rejected_by_budget >= 1),
            other => panic!("{other:?}"),
        }
        // The session survives exhaustion: the gauge still renders.
        assert!(h.call(Command::Gauge { session: sid }).is_ok());
    }

    #[test]
    fn lru_cap_evicts_oldest_session() {
        let service = test_service(ServiceConfig {
            max_sessions: 4,
            workers: 2,
            ..ServiceConfig::default()
        });
        let h = service.handle();
        let first = create(&h);
        let rest: Vec<SessionId> = (0..3).map(|_| create(&h)).collect();
        assert_eq!(h.live_sessions(), 4);
        // Touch every session except the first so it is clearly LRU.
        for &sid in &rest {
            assert!(h.call(Command::Gauge { session: sid }).is_ok());
        }
        let fifth = create(&h);
        assert_eq!(h.live_sessions(), 4);
        match h.call(Command::Gauge { session: first }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession),
            other => panic!("evicted session should be gone: {other:?}"),
        }
        assert!(h.call(Command::Gauge { session: fifth }).is_ok());
        match h.call(Command::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.sessions_created, 5);
                assert_eq!(s.sessions_evicted, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idle_sweep_evicts_abandoned_sessions() {
        let service = test_service(ServiceConfig {
            idle_timeout: Duration::from_millis(40),
            ..ServiceConfig::default()
        });
        let h = service.handle();
        let idle = create(&h);
        let busy = create(&h);
        assert_eq!(h.sweep_idle(), 0, "nothing is idle yet");
        std::thread::sleep(Duration::from_millis(60));
        // Keep one session warm across the idle line.
        assert!(h.call(Command::Gauge { session: busy }).is_ok());
        assert_eq!(h.sweep_idle(), 1);
        assert!(matches!(
            h.call(Command::Gauge { session: idle }),
            Response::Error(_)
        ));
        assert!(h.call(Command::Gauge { session: busy }).is_ok());
    }

    fn temp_data_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aware-service-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn gauge_of(h: &ServiceHandle, sid: SessionId) -> String {
        match h.call(Command::Gauge { session: sid }) {
            Response::GaugeText { text, .. } => text,
            other => panic!("{other:?}"),
        }
    }

    fn csv_of(h: &ServiceHandle, sid: SessionId) -> String {
        match h.call(Command::Transcript {
            session: sid,
            format: TranscriptFormat::Csv,
        }) {
            Response::TranscriptText { text, .. } => text,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lru_eviction_spills_to_disk_and_restores_on_touch() {
        let dir = temp_data_dir("spill");
        let service = test_service(ServiceConfig {
            max_sessions: 2,
            workers: 2,
            data_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        let h = service.handle();
        let first = create(&h);
        assert!(h
            .call(Command::AddVisualization {
                session: first,
                attribute: "education".into(),
                filter: salary_filter(),
            })
            .is_ok());
        let reference = (gauge_of(&h, first), csv_of(&h, first));
        let _second = create(&h);
        let _third = create(&h); // evicts `first` — to disk, not oblivion
        assert_eq!(h.live_sessions(), 2);
        match h.call(Command::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.sessions_evicted, 1);
                assert!(s.persisted >= 1, "evicted session must be on disk");
            }
            other => panic!("{other:?}"),
        }
        // Touching the evicted session restores it transparently with
        // byte-identical observables (evicting another to make room).
        assert_eq!((gauge_of(&h, first), csv_of(&h, first)), reference);
        // And its wealth keeps evolving from where it left off.
        assert!(h
            .call(Command::AddVisualization {
                session: first,
                attribute: "race".into(),
                filter: FilterSpec::True,
            })
            .is_ok());
        drop(h);
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sessions_survive_a_service_restart() {
        let dir = temp_data_dir("restart");
        let config = || ServiceConfig {
            workers: 2,
            data_dir: Some(dir.clone()),
            snapshot_every: Some(Duration::ZERO), // synchronous durability
            ..ServiceConfig::default()
        };
        let service = test_service(config());
        let h = service.handle();
        let sid = create(&h);
        assert!(h
            .call(Command::AddVisualization {
                session: sid,
                attribute: "education".into(),
                filter: salary_filter(),
            })
            .is_ok());
        match h.call(Command::SetPolicy {
            session: sid,
            policy: PolicySpec::Hopeful { delta: 5.0 },
        }) {
            Response::PolicySet { .. } => {}
            other => panic!("{other:?}"),
        }
        let reference = (gauge_of(&h, sid), csv_of(&h, sid));
        drop(h);
        service.shutdown();

        // A new service over the same directory: the session is back,
        // byte for byte, and new ids never collide with restored ones.
        let service = test_service(config());
        let h = service.handle();
        assert_eq!((gauge_of(&h, sid), csv_of(&h, sid)), reference);
        let fresh = create(&h);
        assert!(fresh > sid, "id allocation must resume above {sid}");
        // Closing the restored session deletes its snapshot files.
        assert!(h.call(Command::CloseSession { session: sid }).is_ok());
        match h.call(Command::Stats) {
            Response::Stats(s) => assert_eq!(s.persisted, 1, "only `fresh` remains"),
            other => panic!("{other:?}"),
        }
        drop(h);
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshots_surface_as_corrupt_snapshot_not_fresh_wealth() {
        let dir = temp_data_dir("corrupt");
        let config = || ServiceConfig {
            workers: 2,
            data_dir: Some(dir.clone()),
            snapshot_every: Some(Duration::ZERO),
            ..ServiceConfig::default()
        };
        let service = test_service(config());
        let h = service.handle();
        let sid = create(&h);
        assert!(h
            .call(Command::AddVisualization {
                session: sid,
                attribute: "education".into(),
                filter: salary_filter(),
            })
            .is_ok());
        drop(h);
        service.shutdown();
        // Mangle every on-disk generation of the session.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        }
        let service = test_service(config());
        let h = service.handle();
        match h.call(Command::Gauge { session: sid }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::CorruptSnapshot),
            other => panic!("corrupt ledger must never answer with state: {other:?}"),
        }
        // close_session refuses too (and keeps the evidence on disk).
        match h.call(Command::CloseSession { session: sid }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::CorruptSnapshot),
            other => panic!("{other:?}"),
        }
        assert!(std::fs::read_dir(&dir).unwrap().next().is_some());
        drop(h);
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Cuts a snapshot image of `sid` off the primary without
    /// disturbing it — the router's replication primitive.
    fn image_of_session(h: &ServiceHandle, sid: SessionId) -> Vec<u8> {
        match h.call(Command::SnapshotSession { session: sid }) {
            Response::SessionExported { image, .. } => image,
            other => panic!("{other:?}"),
        }
    }

    fn stats_of(h: &ServiceHandle) -> crate::proto::StatsSnapshot {
        match h.call(Command::Stats) {
            Response::Stats(s) => *s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn replicate_then_promote_restores_the_exact_ledger() {
        let primary = test_service(ServiceConfig::default());
        let replica = test_service(ServiceConfig::default());
        let hp = primary.handle();
        let hr = replica.handle();
        let sid = create(&hp);
        assert!(hp
            .call(Command::AddVisualization {
                session: sid,
                attribute: "education".into(),
                filter: salary_filter(),
            })
            .is_ok());
        let reference = (gauge_of(&hp, sid), csv_of(&hp, sid));

        // `snapshot_session` is non-destructive: the primary keeps serving.
        let image = image_of_session(&hp, sid);
        assert!(hp.call(Command::Gauge { session: sid }).is_ok());

        match hr.call(Command::ReplicateSession {
            session: sid,
            epoch: 1,
            image: image.clone(),
        }) {
            Response::SessionReplicated { session, epoch } => {
                assert_eq!((session, epoch), (sid, 1));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(stats_of(&hr).replicas_live, 1);

        // A held replica answers reads byte-identically — without ever
        // becoming a live session.
        assert_eq!((gauge_of(&hr, sid), csv_of(&hr, sid)), reference);
        assert_eq!(hr.live_sessions(), 0);
        assert!(stats_of(&hr).hedged_reads >= 2);

        // Epochs are monotone: a stale ship is refused, the current one
        // is an idempotent ack.
        match hr.call(Command::ReplicateSession {
            session: sid,
            epoch: 0,
            image: image.clone(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::InvalidArgument),
            other => panic!("{other:?}"),
        }
        match hr.call(Command::ReplicateSession {
            session: sid,
            epoch: 1,
            image,
        }) {
            Response::SessionReplicated { epoch: 1, .. } => {}
            other => panic!("{other:?}"),
        }

        // The shard inventory names the replica with its epoch.
        match hr.call(Command::ListSessions) {
            Response::Sessions { sessions } => {
                assert_eq!(
                    sessions,
                    vec![crate::proto::SessionEntry {
                        session: sid,
                        replica: true,
                        epoch: 1,
                    }]
                );
            }
            other => panic!("{other:?}"),
        }

        // Promotion installs the exact acked ledger and retires the
        // replica image.
        match hr.call(Command::PromoteReplica { session: sid }) {
            Response::ReplicaPromoted {
                session,
                epoch,
                wealth,
            } => {
                assert_eq!((session, epoch), (sid, 1));
                assert!(wealth > 0.0, "promoted ledger carries real wealth");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!((gauge_of(&hr, sid), csv_of(&hr, sid)), reference);
        let s = stats_of(&hr);
        assert_eq!(s.replicas_live, 0);
        assert_eq!(s.promotions, 1);
        assert_eq!(hr.live_sessions(), 1);
        // The promoted session is live: wealth keeps evolving from the
        // acked state, and a fresh local id never collides with it.
        assert!(hr
            .call(Command::AddVisualization {
                session: sid,
                attribute: "race".into(),
                filter: FilterSpec::True,
            })
            .is_ok());
        assert!(create(&hr) > sid);
        // A second promotion has nothing to promote.
        match hr.call(Command::PromoteReplica { session: sid }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn replication_refuses_corrupt_images_and_self_replication() {
        let primary = test_service(ServiceConfig::default());
        let hp = primary.handle();
        let sid = create(&hp);
        let image = image_of_session(&hp, sid);

        // A shard never replicates a session it is primary for.
        match hp.call(Command::ReplicateSession {
            session: sid,
            epoch: 1,
            image: image.clone(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::InvalidArgument),
            other => panic!("{other:?}"),
        }

        let replica = test_service(ServiceConfig::default());
        let hr = replica.handle();
        // A truncated image fails the restore validator at apply time:
        // nothing is stored, so there is nothing to promote.
        match hr.call(Command::ReplicateSession {
            session: sid,
            epoch: 1,
            image: image[..image.len() / 2].to_vec(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::CorruptSnapshot),
            other => panic!("{other:?}"),
        }
        assert_eq!(stats_of(&hr).replicas_live, 0);
        match hr.call(Command::PromoteReplica { session: sid }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession),
            other => panic!("{other:?}"),
        }
        // An image whose payload names a different session is refused
        // even though the bytes themselves decode.
        match hr.call(Command::ReplicateSession {
            session: sid + 1,
            epoch: 1,
            image,
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::CorruptSnapshot),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tampered_replica_file_is_refused_at_promotion_never_adopted() {
        let dir = temp_data_dir("replica-tamper");
        let primary = test_service(ServiceConfig::default());
        let hp = primary.handle();
        let sid = create(&hp);
        assert!(hp
            .call(Command::AddVisualization {
                session: sid,
                attribute: "education".into(),
                filter: salary_filter(),
            })
            .is_ok());
        let image = image_of_session(&hp, sid);

        let config = || ServiceConfig {
            workers: 2,
            data_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let replica = test_service(config());
        let hr = replica.handle();
        match hr.call(Command::ReplicateSession {
            session: sid,
            epoch: 3,
            image,
        }) {
            Response::SessionReplicated { epoch: 3, .. } => {}
            other => panic!("{other:?}"),
        }
        drop(hr);
        replica.shutdown();

        // Flip bytes in the durable replica image.
        let mut tampered = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path
                .file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("repl-"))
            {
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xff;
                std::fs::write(&path, &bytes).unwrap();
                tampered += 1;
            }
        }
        assert_eq!(tampered, 1, "exactly one replica image on disk");

        // A restart re-seeds the replica index from disk; promotion
        // re-validates the bytes, refuses them, and discards the
        // replica — the answer is corrupt_snapshot, never a ledger.
        let replica = test_service(config());
        let hr = replica.handle();
        assert_eq!(stats_of(&hr).replicas_live, 1);
        match hr.call(Command::PromoteReplica { session: sid }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::CorruptSnapshot),
            other => panic!("tampered ledger must never serve: {other:?}"),
        }
        let s = stats_of(&hr);
        assert_eq!((s.replicas_live, s.promotions), (0, 0));
        match hr.call(Command::PromoteReplica { session: sid }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession),
            other => panic!("{other:?}"),
        }
        drop(hr);
        replica.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gossip_merges_by_generation_and_echoes_the_merged_view() {
        use crate::proto::{MemberInfo, MemberStatus};
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        let members = vec![
            MemberInfo {
                addr: "a:1".into(),
                status: MemberStatus::Alive,
                incarnation: 1,
            },
            MemberInfo {
                addr: "b:2".into(),
                status: MemberStatus::Suspect,
                incarnation: 4,
            },
        ];
        match h.call(Command::Gossip {
            from: "router".into(),
            generation: 7,
            members: members.clone(),
        }) {
            Response::GossipView {
                generation,
                members: got,
            } => {
                assert_eq!(generation, 7);
                assert_eq!(got, members);
            }
            other => panic!("{other:?}"),
        }
        // An older view does not regress the held one.
        match h.call(Command::Gossip {
            from: "router".into(),
            generation: 3,
            members: Vec::new(),
        }) {
            Response::GossipView {
                generation,
                members: got,
            } => {
                assert_eq!(generation, 7);
                assert_eq!(got.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn preassigned_creation_honours_the_id_and_refuses_collisions() {
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        match h.call(Command::CreateSessionAs {
            session: 1_000,
            dataset: "census".into(),
            alpha: 0.05,
            policy: fixed_policy(),
        }) {
            Response::SessionCreated { session, .. } => assert_eq!(session, 1_000),
            other => panic!("{other:?}"),
        }
        // The same id again is a refusal, not a silent second session.
        match h.call(Command::CreateSessionAs {
            session: 1_000,
            dataset: "census".into(),
            alpha: 0.05,
            policy: fixed_policy(),
        }) {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::InvalidArgument);
                assert!(e.message.contains("already in use"), "{e}");
            }
            other => panic!("{other:?}"),
        }
        // The local allocator was bumped past the preassigned id.
        let fresh = create(&h);
        assert!(fresh > 1_000, "local allocation must resume above: {fresh}");
    }

    #[test]
    fn export_import_moves_a_session_between_services_byte_identically() {
        let source = test_service(ServiceConfig::default());
        let hs = source.handle();
        let sid = create(&hs);
        assert!(hs
            .call(Command::AddVisualization {
                session: sid,
                attribute: "education".into(),
                filter: salary_filter(),
            })
            .is_ok());
        let reference = (gauge_of(&hs, sid), csv_of(&hs, sid));

        let image = match hs.call(Command::ExportSession { session: sid }) {
            Response::SessionExported { session, image } => {
                assert_eq!(session, sid);
                image
            }
            other => panic!("{other:?}"),
        };
        // Export removed the session: it is gone here, wealth and all.
        match hs.call(Command::Gauge { session: sid }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession),
            other => panic!("exported session must be gone: {other:?}"),
        }

        // Same dataset content (same generator seed) on the target: the
        // fingerprint check passes and the session continues exactly.
        let target = test_service(ServiceConfig::default());
        let ht = target.handle();
        match ht.call(Command::ImportSession {
            session: sid,
            image: image.clone(),
        }) {
            Response::SessionImported { session, .. } => assert_eq!(session, sid),
            other => panic!("{other:?}"),
        }
        assert_eq!((gauge_of(&ht, sid), csv_of(&ht, sid)), reference);
        // Imported ids are reserved on the target's allocator.
        let fresh = create(&ht);
        assert!(fresh > sid);
        // A second import of the same id is refused.
        match ht.call(Command::ImportSession {
            session: sid,
            image: image.clone(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::InvalidArgument),
            other => panic!("{other:?}"),
        }

        // A shard holding *different* census data under the same name
        // refuses the image as corrupt — never replays the ledger.
        let other = Service::start(ServiceConfig::default());
        other
            .handle()
            .register_table("census", CensusGenerator::new(999).generate(4_000));
        match other.handle().call(Command::ImportSession {
            session: sid,
            image,
        }) {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::CorruptSnapshot);
                assert!(e.message.contains("fingerprint"), "{e}");
            }
            other => panic!("mismatched table must refuse the import: {other:?}"),
        }
    }

    #[test]
    fn restore_refuses_a_fingerprint_mismatched_snapshot() {
        let dir = temp_data_dir("fp-mismatch");
        let config = |rows: usize, seed: u64| {
            let service = Service::start(ServiceConfig {
                workers: 2,
                data_dir: Some(dir.clone()),
                snapshot_every: Some(Duration::ZERO),
                ..ServiceConfig::default()
            });
            service
                .handle()
                .register_table("census", CensusGenerator::new(seed).generate(rows));
            service
        };
        let service = config(4_000, 7);
        let h = service.handle();
        let sid = create(&h);
        assert!(h
            .call(Command::AddVisualization {
                session: sid,
                attribute: "education".into(),
                filter: salary_filter(),
            })
            .is_ok());
        drop(h);
        service.shutdown();

        // Restart over the same directory but with *different* data
        // registered under the same dataset name: lazy restore must
        // answer corrupt_snapshot, never serve the ledger over the
        // wrong table.
        let service = config(4_000, 8);
        let h = service.handle();
        match h.call(Command::Gauge { session: sid }) {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::CorruptSnapshot);
                assert!(e.message.contains("fingerprint"), "{e}");
            }
            other => panic!("{other:?}"),
        }
        drop(h);
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn list_datasets_reports_roster_and_allocator() {
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        let _ = create(&h);
        match h.call(Command::ListDatasets) {
            Response::Datasets {
                datasets,
                next_session,
            } => {
                assert_eq!(datasets.len(), 1);
                assert_eq!(datasets[0].name, "census");
                assert_eq!(datasets[0].rows, 4_000);
                assert_eq!(
                    datasets[0].fingerprint,
                    CensusGenerator::new(7).generate(4_000).fingerprint(),
                    "roster fingerprint must be the registered table's"
                );
                assert!(next_session >= 1);
            }
            other => panic!("{other:?}"),
        }
        // A shard is not a router: rebalance admin commands bounce.
        match h.call(Command::JoinShard {
            addr: "127.0.0.1:1".into(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::InvalidArgument),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shutdown_answers_late_callers_with_shutdown_error() {
        let service = test_service(ServiceConfig::default());
        let h = service.handle();
        let sid = create(&h);
        service.shutdown();
        match h.call(Command::Gauge { session: sid }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Shutdown),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn drr_defers_a_batch_larger_than_the_quantum_without_reordering() {
        // One worker, one session, one unit of quantum+1 commands: the
        // unit costs more than one round's deficit, so the worker must
        // defer it once (accruing credit) before running it whole. The
        // responses still come back complete and in submission order —
        // DRR changes *when* a unit runs, never what or in what order.
        let service = test_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let h = service.handle();
        let sid = create(&h);
        let n = (DRR_QUANTUM + 1) as usize;
        let cmds: Vec<Command> = (0..n).map(|_| Command::Gauge { session: sid }).collect();
        let responses = h.call_batch(cmds);
        assert_eq!(responses.len(), n);
        for r in &responses {
            assert!(
                matches!(r, Response::GaugeText { session, .. } if *session == sid),
                "{r:?}"
            );
        }
        let stats = stats_of(&h);
        assert!(
            stats.drr_deferrals >= 1,
            "a {n}-command unit must overdraw the {DRR_QUANTUM}-command quantum at least once: \
             {stats:?}"
        );
    }

    #[test]
    fn two_sessions_on_one_worker_both_finish_under_drr() {
        // Two session streams pinned to the same (only) worker, each
        // submitting several units: DRR interleaves the routes at
        // quantum granularity, and both streams' per-session FIFO
        // guarantees hold (every gauge answers for its own session).
        let service = test_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let h = service.handle();
        let a = create(&h);
        let b = create(&h);
        let mut joins = Vec::new();
        for sid in [a, b] {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    match h.call(Command::Gauge { session: sid }) {
                        Response::GaugeText { session, .. } => assert_eq!(session, sid),
                        other => panic!("{other:?}"),
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn push_sinks_see_idle_evictions_and_are_dropped_when_dead() {
        let service = test_service(ServiceConfig {
            idle_timeout: Duration::from_millis(1),
            sweep_interval: None,
            ..ServiceConfig::default()
        });
        let h = service.handle();
        let sid = create(&h);

        let events = Arc::new(Mutex::new(Vec::new()));
        let sink_events = events.clone();
        h.subscribe_push(Box::new(move |e| {
            sink_events.lock().unwrap().push(e.clone());
            true
        }));
        // A second sink that reports itself dead on first delivery.
        let dead_calls = Arc::new(AtomicU64::new(0));
        let dead_count = dead_calls.clone();
        h.subscribe_push(Box::new(move |_| {
            dead_count.fetch_add(1, Ordering::SeqCst);
            false
        }));
        assert_eq!(h.inner.push_sinks.lock().unwrap().len(), 2);

        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(h.sweep_idle(), 1);
        let seen = events.lock().unwrap().clone();
        assert!(
            seen.iter().any(|e| matches!(
                e,
                crate::proto::PushEvent::SessionEvicted { session, reason }
                    if *session == sid && reason == "idle"
            )),
            "{seen:?}"
        );
        // The dead sink was called once and dropped.
        assert_eq!(dead_calls.load(Ordering::SeqCst), 1);
        assert_eq!(h.inner.push_sinks.lock().unwrap().len(), 1);

        // Replacing a dataset announces a cache reset to the survivor.
        h.register_table("census", CensusGenerator::new(7).generate(100));
        let seen = events.lock().unwrap().clone();
        assert!(
            seen.iter().any(|e| matches!(
                e,
                crate::proto::PushEvent::CacheReset { dataset } if dataset == "census"
            )),
            "{seen:?}"
        );
        assert_eq!(
            dead_calls.load(Ordering::SeqCst),
            1,
            "dead sink stays dropped"
        );
    }

    #[test]
    fn lru_eviction_pushes_a_session_evicted_event() {
        let service = test_service(ServiceConfig {
            max_sessions: 2,
            ..ServiceConfig::default()
        });
        let h = service.handle();
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink_events = events.clone();
        h.subscribe_push(Box::new(move |e| {
            sink_events.lock().unwrap().push(e.clone());
            true
        }));
        let first = create(&h);
        let _second = create(&h);
        // Capacity is full: the third creation evicts the LRU (first).
        let _third = create(&h);
        let seen = events.lock().unwrap().clone();
        assert!(
            seen.iter().any(|e| matches!(
                e,
                crate::proto::PushEvent::SessionEvicted { session, reason }
                    if *session == first && reason == "lru"
            )),
            "{seen:?}"
        );
    }
}
