//! TCP front end: the NDJSON protocol over a socket.
//!
//! One thread per connection (the worker pool behind the
//! [`ServiceHandle`] is what bounds statistical work, so connection
//! threads are thin readers/writers). Each request line is answered
//! with exactly one response line carrying the request's `id`, in
//! request order per connection.

use crate::error::{ErrorCode, ServeError};
use crate::proto::{Command, Response};
use crate::service::ServiceHandle;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Request lines longer than this are answered with `bad_request` and
/// discarded (the reader resynchronizes at the next newline) — a client
/// cannot make the server buffer unbounded input.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// A listening TCP server bound to an address.
///
/// Dropping the server stops the accept loop and joins its thread;
/// already-open connections drain on their own threads.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// starts accepting connections, each served on its own thread.
    pub fn bind(addr: &str, handle: ServiceHandle) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("aware-serve-accept".into())
            .spawn(move || accept_loop(listener, handle, stop_flag))?;
        Ok(TcpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks on the accept loop forever (the `serve` binary's main).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, handle: ServiceHandle, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream {
            Ok(stream) => {
                let handle = handle.clone();
                let _ = std::thread::Builder::new()
                    .name("aware-serve-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, handle);
                    });
            }
            Err(_) => continue,
        }
    }
}

/// One capped request line, or how reading it ended.
enum RequestLine {
    Eof,
    TooLong,
    Text(String),
}

/// Reads up to the next newline, buffering at most `max` bytes. An
/// over-long line is consumed through its newline (the protocol stream
/// stays synchronized) but reported as [`RequestLine::TooLong`].
fn read_request_line(reader: &mut impl BufRead, max: usize) -> std::io::Result<RequestLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if overflow {
                RequestLine::TooLong
            } else if buf.is_empty() {
                RequestLine::Eof
            } else {
                RequestLine::Text(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if !overflow {
                if buf.len() + pos > max {
                    overflow = true;
                    buf.clear();
                } else {
                    buf.extend_from_slice(&chunk[..pos]);
                }
            }
            reader.consume(pos + 1);
            return Ok(if overflow {
                RequestLine::TooLong
            } else {
                RequestLine::Text(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let len = chunk.len();
        if !overflow {
            if buf.len() + len > max {
                overflow = true;
                buf.clear();
            } else {
                buf.extend_from_slice(chunk);
            }
        }
        reader.consume(len);
    }
}

/// Serves one connection until EOF or I/O error.
fn serve_connection(stream: TcpStream, handle: ServiceHandle) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let reply_line = match read_request_line(&mut reader, MAX_REQUEST_BYTES)? {
            RequestLine::Eof => return Ok(()),
            RequestLine::TooLong => {
                handle.record_protocol_error();
                Response::Error(ServeError {
                    code: ErrorCode::BadRequest,
                    message: format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
                })
                .encode_line(None)
            }
            RequestLine::Text(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match Command::decode_line(&line) {
                    Ok((cmd, id)) => handle.call(cmd).encode_line(id),
                    Err(e) => {
                        handle.record_protocol_error();
                        Response::Error(e).encode_line(None)
                    }
                }
            }
        };
        writer.write_all(reply_line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// A minimal blocking client for the NDJSON protocol — used by tests,
/// benches, and as reference client code.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a serve endpoint.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 0,
        })
    }

    /// Sends one command and waits for its response, verifying the id
    /// echo.
    pub fn call(&mut self, cmd: &Command) -> Result<Response, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let io_err = |e: std::io::Error| ServeError {
            code: ErrorCode::Shutdown,
            message: format!("connection lost: {e}"),
        };
        self.writer
            .write_all(cmd.encode_line(Some(id)).as_bytes())
            .map_err(io_err)?;
        self.writer.write_all(b"\n").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut line = String::new();
        use std::io::BufRead as _;
        let n = self.reader.read_line(&mut line).map_err(io_err)?;
        if n == 0 {
            return Err(ServeError {
                code: ErrorCode::Shutdown,
                message: "server closed the connection".into(),
            });
        }
        let (response, echoed) = Response::decode_line(&line)?;
        if echoed != Some(id) {
            return Err(ServeError {
                code: ErrorCode::BadRequest,
                message: format!("response id {echoed:?} does not match request id {id}"),
            });
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{FilterSpec, PolicySpec, TranscriptFormat};
    use crate::service::{Service, ServiceConfig};
    use aware_data::census::CensusGenerator;
    use aware_data::predicate::CmpOp;
    use aware_data::value::Value;

    fn served() -> (Service, TcpServer) {
        let service = Service::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        service
            .handle()
            .register_table("census", CensusGenerator::new(11).generate(3_000));
        let server = TcpServer::bind("127.0.0.1:0", service.handle()).unwrap();
        (service, server)
    }

    #[test]
    fn end_to_end_over_a_socket() {
        let (_service, server) = served();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let sid = match client
            .call(&Command::CreateSession {
                dataset: "census".into(),
                alpha: 0.05,
                policy: PolicySpec::Fixed { gamma: 10.0 },
            })
            .unwrap()
        {
            Response::SessionCreated { session, .. } => session,
            other => panic!("{other:?}"),
        };

        match client
            .call(&Command::AddVisualization {
                session: sid,
                attribute: "education".into(),
                filter: FilterSpec::Cmp {
                    column: "salary_over_50k".into(),
                    op: CmpOp::Eq,
                    value: Value::Bool(true),
                },
            })
            .unwrap()
        {
            Response::VizAdded {
                hypothesis: Some(h),
                ..
            } => assert!(h.rejected),
            other => panic!("{other:?}"),
        }

        match client
            .call(&Command::Transcript {
                session: sid,
                format: TranscriptFormat::Text,
            })
            .unwrap()
        {
            Response::TranscriptText { text, .. } => {
                assert!(text.contains("AWARE session transcript"))
            }
            other => panic!("{other:?}"),
        }

        match client.call(&Command::Stats).unwrap() {
            Response::Stats(s) => assert_eq!(s.sessions_created, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_lines_get_error_responses_not_disconnects() {
        let (_service, server) = served();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        writer
            .write_all(b"this is not json\n{\"cmd\":\"warp\"}\n\n{\"cmd\":\"stats\"}\n")
            .unwrap();
        writer.flush().unwrap();

        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let (r, _) = Response::decode_line(&line).unwrap();
        assert!(
            matches!(r, Response::Error(ref e) if e.code == ErrorCode::BadRequest),
            "{r:?}"
        );

        line.clear();
        reader.read_line(&mut line).unwrap();
        let (r, _) = Response::decode_line(&line).unwrap();
        assert!(
            matches!(r, Response::Error(ref e) if e.code == ErrorCode::UnknownCommand),
            "{r:?}"
        );

        // The empty line was skipped; the stats request still answers.
        line.clear();
        reader.read_line(&mut line).unwrap();
        let (r, _) = Response::decode_line(&line).unwrap();
        assert!(matches!(r, Response::Stats(_)), "{r:?}");
    }

    #[test]
    fn request_line_cap_is_exact_at_the_newline_chunk() {
        // A line one byte over the cap whose newline arrives in the same
        // buffered chunk must still be rejected (regression: the cap was
        // once only enforced on newline-free chunks).
        let mut input = std::io::Cursor::new({
            let mut v = vec![b'x'; 10 + 1];
            v.push(b'\n');
            v.extend_from_slice(b"ok\n");
            v
        });
        match read_request_line(&mut input, 10).unwrap() {
            RequestLine::TooLong => {}
            RequestLine::Text(t) => panic!("accepted over-cap line of {} bytes", t.len()),
            RequestLine::Eof => panic!("eof"),
        }
        // The stream resynchronized at the newline.
        match read_request_line(&mut input, 10).unwrap() {
            RequestLine::Text(t) => assert_eq!(t, "ok"),
            other => panic!("{:?}", std::mem::discriminant(&other)),
        }
        // Exactly at the cap is accepted.
        let mut input = std::io::Cursor::new(
            vec![b'y'; 10]
                .into_iter()
                .chain(*b"\n")
                .collect::<Vec<u8>>(),
        );
        match read_request_line(&mut input, 10).unwrap() {
            RequestLine::Text(t) => assert_eq!(t.len(), 10),
            _ => panic!("at-cap line must pass"),
        }
        assert!(matches!(
            read_request_line(&mut input, 10).unwrap(),
            RequestLine::Eof
        ));
    }

    #[test]
    fn oversized_request_line_is_rejected_and_stream_resyncs() {
        let (_service, server) = served();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        // A 2 MiB line (deeply-nested-bomb shaped) followed by a valid
        // request on the same connection.
        let bomb = "[".repeat(2 * MAX_REQUEST_BYTES);
        writer.write_all(bomb.as_bytes()).unwrap();
        writer.write_all(b"\n{\"cmd\":\"stats\"}\n").unwrap();
        writer.flush().unwrap();

        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let (r, _) = Response::decode_line(&line).unwrap();
        assert!(
            matches!(r, Response::Error(ref e) if e.code == ErrorCode::BadRequest),
            "{r:?}"
        );
        line.clear();
        reader.read_line(&mut line).unwrap();
        let (r, _) = Response::decode_line(&line).unwrap();
        match r {
            // Protocol errors are visible to the stats counters.
            Response::Stats(s) => assert!(s.errors >= 1, "{s:?}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dropping_the_server_stops_accepting() {
        let (_service, server) = served();
        let addr = server.local_addr();
        drop(server);
        // The listener is gone: new connections are refused (or accepted
        // by nothing and immediately closed — read returns EOF).
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(stream) => {
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                let n = reader.read_line(&mut line).unwrap_or(0);
                assert_eq!(n, 0, "no server should answer: {line}");
            }
        }
    }

    #[test]
    fn two_clients_drive_independent_sessions() {
        let (_service, server) = served();
        let mut a = Client::connect(server.local_addr()).unwrap();
        let mut b = Client::connect(server.local_addr()).unwrap();
        let make = |c: &mut Client| match c
            .call(&Command::CreateSession {
                dataset: "census".into(),
                alpha: 0.05,
                policy: PolicySpec::Fixed { gamma: 10.0 },
            })
            .unwrap()
        {
            Response::SessionCreated { session, .. } => session,
            other => panic!("{other:?}"),
        };
        let sa = make(&mut a);
        let sb = make(&mut b);
        assert_ne!(sa, sb);
        // Interleave commands; each session only sees its own.
        for (c, sid) in [(&mut a, sa), (&mut b, sb)] {
            match c.call(&Command::Gauge { session: sid }).unwrap() {
                Response::GaugeText { session, text } => {
                    assert_eq!(session, sid);
                    assert!(text.contains("no hypotheses tracked yet"));
                }
                other => panic!("{other:?}"),
            }
        }
    }
}
