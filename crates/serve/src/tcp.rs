//! TCP front end: both protocol surfaces over a socket.
//!
//! One thread per connection (the worker pool behind the
//! [`ServiceHandle`] is what bounds statistical work, so connection
//! threads are thin readers/writers). The surface is auto-detected by
//! the connection's first byte:
//!
//! * `{` (or whitespace) — the NDJSON surface: v1 single commands and
//!   v2 JSON envelopes (`hello`, batches), one line per message,
//!   answered in order.
//! * `A` (the first byte of the `AWR2` frame magic) — the binary
//!   surface: length-prefixed frames carrying the compact tag codec.
//!   The first frame must be a `hello` naming the protocol version.
//!
//! A JSON `hello` requesting `"encoding":"binary"` upgrades the
//! connection in place: the ack is the last JSON line, everything after
//! it is frames — both directions.

use crate::error::{ErrorCode, ServeError};
use crate::frame::{self, FrameRead, MAX_FRAME_BYTES};
use crate::proto::{
    Batch, BatchMode, Command, Encoding, Envelope, PushEvent, Reply, Response, PROTOCOL_VERSION,
};
use crate::service::Dispatch;
use crate::wire;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Request lines longer than this are answered with `bad_request` and
/// discarded (the reader resynchronizes at the next newline) — a client
/// cannot make the server buffer unbounded input.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// A listening TCP server bound to an address.
///
/// Dropping the server stops the accept loop and joins its thread;
/// already-open connections drain on their own threads.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// starts accepting connections, each served on its own thread.
    ///
    /// Generic over [`Dispatch`]: the same front end serves an
    /// in-process [`ServiceHandle`] and a cluster router.
    pub fn bind<H>(addr: &str, handle: H) -> std::io::Result<TcpServer>
    where
        H: Dispatch + Clone + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("aware-serve-accept".into())
            .spawn(move || accept_loop(listener, handle, stop_flag))?;
        Ok(TcpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks on the accept loop forever (the `serve` binary's main).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = t.join();
        }
    }
}

fn accept_loop<H>(listener: TcpListener, handle: H, stop: Arc<AtomicBool>)
where
    H: Dispatch + Clone + Send + 'static,
{
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream {
            Ok(stream) => {
                // Replies are written once per request envelope and then
                // awaited — Nagle buys nothing here and its interaction
                // with delayed ACKs costs tens of ms on multi-segment
                // batch replies.
                let _ = stream.set_nodelay(true);
                let handle = handle.clone();
                let _ = std::thread::Builder::new()
                    .name("aware-serve-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, handle);
                    });
            }
            Err(_) => continue,
        }
    }
}

/// One capped request line, or how reading it ended.
enum RequestLine {
    Eof,
    TooLong,
    Text(String),
}

/// Reads up to the next newline, buffering at most `max` bytes. An
/// over-long line is consumed through its newline (the protocol stream
/// stays synchronized) but reported as [`RequestLine::TooLong`].
fn read_request_line(reader: &mut impl BufRead, max: usize) -> std::io::Result<RequestLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if overflow {
                RequestLine::TooLong
            } else if buf.is_empty() {
                RequestLine::Eof
            } else {
                RequestLine::Text(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if !overflow {
                if buf.len() + pos > max {
                    overflow = true;
                    buf.clear();
                } else {
                    buf.extend_from_slice(&chunk[..pos]);
                }
            }
            reader.consume(pos + 1);
            return Ok(if overflow {
                RequestLine::TooLong
            } else {
                RequestLine::Text(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let len = chunk.len();
        if !overflow {
            if buf.len() + len > max {
                overflow = true;
                buf.clear();
            } else {
                buf.extend_from_slice(chunk);
            }
        }
        reader.consume(len);
    }
}

/// Validates a hello against what this server speaks on the given
/// surface; `Ok` is the ack to send back.
pub(crate) fn negotiate(
    version: u32,
    encoding: Encoding,
    surface: Encoding,
) -> Result<Reply, ServeError> {
    if version != PROTOCOL_VERSION {
        return Err(ServeError::invalid(format!(
            "unsupported protocol version {version} (this server speaks {PROTOCOL_VERSION}; \
             v1 needs no hello)"
        )));
    }
    if surface == Encoding::Binary && encoding != Encoding::Binary {
        return Err(ServeError::invalid(
            "a binary-framed connection cannot negotiate the json encoding",
        ));
    }
    Ok(Reply::HelloAck {
        id: None, // caller fills the echoed id
        version: PROTOCOL_VERSION,
        encoding,
        max_frame: MAX_FRAME_BYTES as u64,
        push: false, // granted (or not) by the front end, not here
    })
}

/// Executes a batch envelope under one trace id and pairs the
/// responses with their item ids for the reply.
pub(crate) fn run_batch<H: Dispatch>(
    handle: &H,
    batch: Batch,
    trace: u64,
) -> Vec<(Option<u64>, Response)> {
    let mut ids = Vec::with_capacity(batch.items.len());
    let mut cmds = Vec::with_capacity(batch.items.len());
    let mode = batch.mode;
    for item in batch.items {
        ids.push(item.id);
        cmds.push(item.cmd);
    }
    ids.into_iter()
        .zip(handle.call_batch_traced(cmds, mode, trace))
        .collect()
}

/// Peeks the first byte of a connection for surface auto-detection.
/// `Ok(None)` is a clean zero-byte close. A stray signal used to kill
/// the connection here: `fill_buf` surfaces `EINTR` as an error, and
/// the old code propagated it before a single byte was ever
/// classified — so a connection that raced a `SIGTERM`-adjacent signal
/// died silently instead of being served. Retry on `Interrupted`, the
/// same discipline every other read loop in this file already follows
/// via `read_line`/`read_exact`.
fn first_byte(reader: &mut impl BufRead) -> std::io::Result<Option<u8>> {
    loop {
        match reader.fill_buf() {
            Ok([]) => return Ok(None), // closed before a single byte
            Ok(bytes) => return Ok(Some(bytes[0])),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Serves one connection until EOF or I/O error, auto-detecting the
/// surface from the first byte.
fn serve_connection<H: Dispatch>(stream: TcpStream, handle: H) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = BufWriter::new(stream);
    let first = match first_byte(&mut reader)? {
        None => return Ok(()),
        Some(b) => b,
    };
    if first == frame::MAGIC[0] {
        return serve_binary(reader, writer, handle, false);
    }
    serve_ndjson(reader, writer, handle)
}

/// The NDJSON surface: v1 commands plus v2 JSON envelopes. Returns by
/// tail-calling into [`serve_binary`] if a hello upgrades the encoding.
fn serve_ndjson<H: Dispatch>(
    mut reader: BufReader<TcpStream>,
    mut writer: BufWriter<TcpStream>,
    handle: H,
) -> std::io::Result<()> {
    loop {
        let reply_line = match read_request_line(&mut reader, MAX_REQUEST_BYTES)? {
            RequestLine::Eof => return Ok(()),
            RequestLine::TooLong => {
                handle.record_protocol_error();
                Response::Error(ServeError {
                    code: ErrorCode::BadRequest,
                    message: format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
                })
                .encode_line(None)
            }
            RequestLine::Text(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle.record_wire_request(Encoding::Json);
                match Envelope::decode_line(&line) {
                    Ok(Envelope::Hello {
                        id,
                        version,
                        encoding,
                        ..
                    }) => match negotiate(version, encoding, Encoding::Json) {
                        Ok(Reply::HelloAck {
                            version,
                            encoding,
                            max_frame,
                            ..
                        }) => {
                            // This front end parks a thread in a blocking
                            // read between requests, so it has nowhere to
                            // deliver asynchronous frames from: the push
                            // capability is honestly declined (the reactor
                            // front end is the one that grants it).
                            let ack = Reply::HelloAck {
                                id,
                                version,
                                encoding,
                                max_frame,
                                push: false,
                            };
                            writer.write_all(ack.encode_line().as_bytes())?;
                            writer.write_all(b"\n")?;
                            writer.flush()?;
                            if encoding == Encoding::Binary {
                                // The ack was the last JSON line; frames
                                // from here on, both directions.
                                return serve_binary(reader, writer, handle, true);
                            }
                            continue;
                        }
                        Ok(_) => unreachable!("negotiate acks with HelloAck"),
                        Err(e) => {
                            handle.record_protocol_error();
                            Response::Error(e).encode_line(id)
                        }
                    },
                    Ok(Envelope::Batch { id, batch }) => Reply::Batch {
                        id,
                        items: run_batch(&handle, batch, aware_obs::trace::adopt_or_new(id)),
                    }
                    .encode_line(),
                    Ok(Envelope::Single { id, cmd }) => handle
                        .call_traced(cmd, aware_obs::trace::adopt_or_new(id))
                        .encode_line(id),
                    Err(e) => {
                        handle.record_protocol_error();
                        Response::Error(e).encode_line(None)
                    }
                }
            }
        };
        let encode_start = std::time::Instant::now();
        writer.write_all(reply_line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        handle.record_wire_encode(encode_start.elapsed().as_micros() as u64);
    }
}

/// Encodes and writes one reply frame, honouring the frame ceiling the
/// server advertises in its hello ack: a reply whose payload would
/// exceed it (a batch of thousands of transcript exports can get there
/// legitimately) is downgraded to an error reply instead of being
/// written — an oversized frame would leave the client unable to trust
/// the stream, and a > 4 GiB one would poison the u32 length field.
/// The error is explicit that the commands *did* execute and only
/// their responses were discarded.
pub(crate) fn write_reply_frame(writer: &mut impl Write, reply: &Reply) -> std::io::Result<()> {
    let payload = wire::encode_reply(reply);
    if payload.len() <= MAX_FRAME_BYTES {
        return frame::write_frame(writer, &payload);
    }
    let id = match reply {
        Reply::HelloAck { id, .. } | Reply::Batch { id, .. } | Reply::Single { id, .. } => *id,
    };
    let fallback = Reply::Single {
        id,
        response: Response::Error(ServeError {
            code: ErrorCode::BadRequest,
            message: format!(
                "reply of {} bytes exceeds the {MAX_FRAME_BYTES}-byte frame ceiling; the \
                 commands executed, but their responses were discarded — split the batch",
                payload.len()
            ),
        }),
    };
    frame::write_frame(writer, &wire::encode_reply(&fallback))
}

/// The binary surface. `greeted` is true when the connection already
/// negotiated through a JSON hello; a cold binary connection must greet
/// in its first frame so the server knows the client really speaks v2
/// (and not, say, a stray HTTP request that happens to start with 'A').
fn serve_binary<H: Dispatch>(
    mut reader: BufReader<TcpStream>,
    mut writer: BufWriter<TcpStream>,
    handle: H,
    mut greeted: bool,
) -> std::io::Result<()> {
    loop {
        let payload = match frame::read_frame(&mut reader, MAX_FRAME_BYTES)? {
            FrameRead::Eof => return Ok(()),
            FrameRead::TooLarge { declared } => {
                // The length prefix tells us exactly how much to discard;
                // the stream stays synchronized, the connection lives.
                handle.record_protocol_error();
                frame::skip_payload(&mut reader, declared as u64)?;
                let reply = Reply::Single {
                    id: None,
                    response: Response::Error(ServeError {
                        code: ErrorCode::BadRequest,
                        message: format!(
                            "frame payload of {declared} bytes exceeds {MAX_FRAME_BYTES}"
                        ),
                    }),
                };
                frame::write_frame(&mut writer, &wire::encode_reply(&reply))?;
                writer.flush()?;
                continue;
            }
            FrameRead::Corrupt(message) => {
                // Framing is lost — answer once and hang up.
                handle.record_protocol_error();
                let reply = Reply::Single {
                    id: None,
                    response: Response::Error(ServeError {
                        code: ErrorCode::BadRequest,
                        message,
                    }),
                };
                let _ = frame::write_frame(&mut writer, &wire::encode_reply(&reply));
                let _ = writer.flush();
                return Ok(());
            }
            FrameRead::Frame(payload) => payload,
        };
        handle.record_wire_request(Encoding::Binary);
        let reply = match wire::decode_envelope(&payload) {
            Ok(Envelope::Hello {
                id,
                version,
                encoding,
                ..
            }) => match negotiate(version, encoding, Encoding::Binary) {
                Ok(Reply::HelloAck {
                    version,
                    encoding,
                    max_frame,
                    ..
                }) => {
                    greeted = true;
                    // Push is declined on this front end — see the JSON
                    // hello arm for why.
                    Reply::HelloAck {
                        id,
                        version,
                        encoding,
                        max_frame,
                        push: false,
                    }
                }
                Ok(_) => unreachable!("negotiate acks with HelloAck"),
                Err(e) => {
                    handle.record_protocol_error();
                    Reply::Single {
                        id,
                        response: Response::Error(e),
                    }
                }
            },
            Ok(envelope) if !greeted => {
                // First frame was well-formed v2 but not a hello.
                handle.record_protocol_error();
                let id = match envelope {
                    Envelope::Batch { id, .. } | Envelope::Single { id, .. } => id,
                    Envelope::Hello { id, .. } => id,
                };
                let reply = Reply::Single {
                    id,
                    response: Response::Error(ServeError {
                        code: ErrorCode::BadRequest,
                        message: "a binary connection must open with a hello frame".into(),
                    }),
                };
                frame::write_frame(&mut writer, &wire::encode_reply(&reply))?;
                writer.flush()?;
                return Ok(());
            }
            Ok(Envelope::Batch { id, batch }) => Reply::Batch {
                id,
                items: run_batch(&handle, batch, aware_obs::trace::adopt_or_new(id)),
            },
            Ok(Envelope::Single { id, cmd }) => Reply::Single {
                id,
                response: handle.call_traced(cmd, aware_obs::trace::adopt_or_new(id)),
            },
            Err(e) => {
                handle.record_protocol_error();
                let reply = Reply::Single {
                    id: None,
                    response: Response::Error(e),
                };
                if !greeted {
                    // An un-greeted binary connection sending garbage is
                    // held to the same hello-first contract as one
                    // sending well-formed non-hello envelopes: one
                    // error, then hang up.
                    write_reply_frame(&mut writer, &reply)?;
                    writer.flush()?;
                    return Ok(());
                }
                reply
            }
        };
        let encode_start = std::time::Instant::now();
        write_reply_frame(&mut writer, &reply)?;
        writer.flush()?;
        handle.record_wire_encode(encode_start.elapsed().as_micros() as u64);
    }
}

/// A minimal blocking client for both protocol surfaces — used by
/// tests, benches, and as reference client code.
///
/// [`Client::connect`] speaks plain v1 NDJSON (no handshake);
/// [`Client::connect_with`] performs the v2 hello and can upgrade the
/// connection to binary framing. Batches go out pipelined: the whole
/// envelope is written and flushed once, then the single reply envelope
/// is read back — one wire round trip for N commands.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    encoding: Encoding,
    push_granted: bool,
    pushes: std::collections::VecDeque<PushEvent>,
}

fn io_err(e: std::io::Error) -> ServeError {
    // A socket with a read/write timeout reports a blown deadline as
    // `WouldBlock` (unix) or `TimedOut` (windows); keep the distinction
    // in the message so callers can count timeouts separately from
    // peer-closed connections.
    let verb = match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => "deadline exceeded",
        _ => "connection lost",
    };
    ServeError {
        code: ErrorCode::Shutdown,
        message: format!("{verb}: {e}"),
    }
}

/// True when a client-side [`ServeError`] came from a blown socket
/// deadline (connect, read, or write timeout) rather than a peer that
/// closed or refused the connection.
pub fn is_deadline_error(e: &ServeError) -> bool {
    e.code == ErrorCode::Shutdown && e.message.starts_with("deadline exceeded")
}

impl Client {
    /// Connects to a serve endpoint on the v1 NDJSON surface.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?; // request→response, never coalesced
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 0,
            encoding: Encoding::Json,
            push_granted: false,
            pushes: std::collections::VecDeque::new(),
        })
    }

    /// Connects on the v1 surface under a deadline: the TCP handshake
    /// uses `connect_timeout`, and the socket carries read/write
    /// timeouts for the connection's whole life, so no later call on
    /// this client can block past `timeout` per socket operation. A
    /// blown deadline surfaces as an I/O error (`WouldBlock`/`TimedOut`
    /// per platform), which [`Client`] maps to a lost connection.
    pub fn connect_deadline(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 0,
            encoding: Encoding::Json,
            push_granted: false,
            pushes: std::collections::VecDeque::new(),
        })
    }

    /// Connects and performs the v2 hello, upgrading to binary framing
    /// when asked.
    pub fn connect_with(addr: SocketAddr, encoding: Encoding) -> Result<Client, ServeError> {
        let mut client = Client::connect(addr).map_err(io_err)?;
        client.hello(encoding)?;
        Ok(client)
    }

    /// [`Client::connect_with`] under a deadline — see
    /// [`Client::connect_deadline`] for the timeout semantics. The
    /// hello round trip itself is covered by the deadline too.
    pub fn connect_with_deadline(
        addr: SocketAddr,
        encoding: Encoding,
        timeout: Duration,
    ) -> Result<Client, ServeError> {
        let mut client = Client::connect_deadline(addr, timeout).map_err(io_err)?;
        client.hello(encoding)?;
        Ok(client)
    }

    /// The encoding this client currently speaks.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Negotiates protocol v2 with the given encoding. The hello goes
    /// out on the connection's current surface.
    pub fn hello(&mut self, encoding: Encoding) -> Result<(), ServeError> {
        self.hello_opts(encoding, false).map(|_| ())
    }

    /// [`Client::hello`] that also requests the server-push capability.
    /// Returns whether the server granted it (the thread-per-connection
    /// front end declines; the reactor front end grants). A declined
    /// request is not an error — the connection works normally, it just
    /// won't receive unsolicited id-0 frames.
    pub fn hello_push(&mut self, encoding: Encoding) -> Result<bool, ServeError> {
        self.hello_opts(encoding, true)
    }

    fn hello_opts(&mut self, encoding: Encoding, push: bool) -> Result<bool, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let hello = Envelope::Hello {
            id: Some(id),
            version: PROTOCOL_VERSION,
            encoding,
            push,
        };
        self.send_envelope(&hello)?;
        match self.read_reply()? {
            Reply::HelloAck {
                id: echoed,
                version,
                encoding: granted,
                push: push_granted,
                ..
            } => {
                if echoed != Some(id) || version != PROTOCOL_VERSION || granted != encoding {
                    return Err(ServeError {
                        code: ErrorCode::BadRequest,
                        message: "hello ack does not match the hello".into(),
                    });
                }
                self.encoding = encoding;
                self.push_granted = push_granted;
                Ok(push_granted)
            }
            Reply::Single {
                response: Response::Error(e),
                ..
            } => Err(e),
            other => Err(ServeError {
                code: ErrorCode::BadRequest,
                message: format!("unexpected hello reply: {other:?}"),
            }),
        }
    }

    /// Whether the server granted the push capability on this
    /// connection's hello.
    pub fn push_granted(&self) -> bool {
        self.push_granted
    }

    /// Push events received so far, drained in arrival order. Pushes
    /// are interleaved with replies on the wire; [`Client::read_reply`]
    /// stashes any id-0 push frame it encounters while waiting for a
    /// response, so this is where they surface.
    pub fn take_pushes(&mut self) -> Vec<PushEvent> {
        self.pushes.drain(..).collect()
    }

    /// Blocks until a push event arrives (or the socket's read timeout
    /// fires, for clients built with `connect_deadline`). Any stashed
    /// event is returned immediately.
    pub fn recv_push(&mut self) -> Result<PushEvent, ServeError> {
        if let Some(event) = self.pushes.pop_front() {
            return Ok(event);
        }
        match self.read_reply_raw()? {
            Reply::Single {
                id: Some(0),
                response: Response::Push(event),
            } => Ok(event),
            // A non-push reply here means the server answered a request
            // we never sent.
            other => Err(ServeError {
                code: ErrorCode::BadRequest,
                message: format!("unsolicited non-push reply while waiting for a push: {other:?}"),
            }),
        }
    }

    /// Sends one command and waits for its response, verifying the id
    /// echo.
    pub fn call(&mut self, cmd: &Command) -> Result<Response, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.call_with_id(cmd, id)
    }

    /// Sends one command under a caller-chosen envelope id. Envelope
    /// ids double as trace ids: an id at or above
    /// `aware_obs::trace::TRACE_MIN` is adopted by the server (and
    /// propagated by a router to its shards) as the command's trace
    /// id, so a client that stamps its own trace can grep it out of
    /// every process's slow-query log. The sequential ids `call`
    /// allocates sit far below that range and never collide.
    pub fn call_with_id(&mut self, cmd: &Command, id: u64) -> Result<Response, ServeError> {
        self.send_envelope(&Envelope::Single {
            id: Some(id),
            cmd: cmd.clone(),
        })?;
        match self.read_reply()? {
            Reply::Single {
                id: echoed,
                response,
            } => {
                if echoed != Some(id) {
                    return Err(ServeError {
                        code: ErrorCode::BadRequest,
                        message: format!("response id {echoed:?} does not match request id {id}"),
                    });
                }
                Ok(response)
            }
            other => Err(ServeError {
                code: ErrorCode::BadRequest,
                message: format!("unexpected reply shape: {other:?}"),
            }),
        }
    }

    /// Submits `cmds` as one pipelined batch — a single envelope, a
    /// single flush, a single reply — and returns the responses in
    /// submission order, verifying every id echo.
    pub fn call_batch(
        &mut self,
        cmds: &[Command],
        mode: BatchMode,
    ) -> Result<Vec<Response>, ServeError> {
        let batch_id = self.next_id;
        self.next_id += 1;
        self.call_batch_with_id(cmds, mode, batch_id)
    }

    /// Submits a pipelined batch under a caller-chosen envelope id (see
    /// [`Client::call_with_id`] for how envelope ids double as trace
    /// ids). Item ids are still allocated from the client's sequence —
    /// only the envelope id carries the trace.
    pub fn call_batch_with_id(
        &mut self,
        cmds: &[Command],
        mode: BatchMode,
        batch_id: u64,
    ) -> Result<Vec<Response>, ServeError> {
        let first_item = self.next_id;
        self.next_id += cmds.len() as u64;
        let envelope = Envelope::Batch {
            id: Some(batch_id),
            batch: Batch {
                mode,
                items: cmds
                    .iter()
                    .enumerate()
                    .map(|(i, cmd)| crate::proto::BatchItem {
                        id: Some(first_item + i as u64),
                        cmd: cmd.clone(),
                    })
                    .collect(),
            },
        };
        self.send_envelope(&envelope)?;
        match self.read_reply()? {
            Reply::Batch { id, items } => {
                if id != Some(batch_id) {
                    return Err(ServeError {
                        code: ErrorCode::BadRequest,
                        message: format!("batch reply id {id:?} does not match {batch_id}"),
                    });
                }
                if items.len() != cmds.len() {
                    return Err(ServeError {
                        code: ErrorCode::BadRequest,
                        message: format!(
                            "batch reply carries {} responses for {} commands",
                            items.len(),
                            cmds.len()
                        ),
                    });
                }
                items
                    .into_iter()
                    .enumerate()
                    .map(|(i, (item_id, response))| {
                        if item_id != Some(first_item + i as u64) {
                            return Err(ServeError {
                                code: ErrorCode::BadRequest,
                                message: format!("item {i} echoed the wrong id {item_id:?}"),
                            });
                        }
                        Ok(response)
                    })
                    .collect()
            }
            other => Err(ServeError {
                code: ErrorCode::BadRequest,
                message: format!("unexpected reply shape: {other:?}"),
            }),
        }
    }

    fn send_envelope(&mut self, envelope: &Envelope) -> Result<(), ServeError> {
        match self.encoding {
            Encoding::Json => {
                self.writer
                    .write_all(envelope.encode_line().as_bytes())
                    .map_err(io_err)?;
                self.writer.write_all(b"\n").map_err(io_err)?;
            }
            Encoding::Binary => {
                frame::write_frame(&mut self.writer, &wire::encode_envelope(envelope))
                    .map_err(io_err)?;
            }
        }
        self.writer.flush().map_err(io_err)
    }

    /// Reads the next reply to a request, stashing any server-push
    /// frames that arrive in between. Push frames always carry envelope
    /// id 0 and a `Push` response — a shape no request reply can take
    /// (the id-0 hello is acked with a `HelloAck`), so the dispatch is
    /// unambiguous.
    fn read_reply(&mut self) -> Result<Reply, ServeError> {
        loop {
            match self.read_reply_raw()? {
                Reply::Single {
                    id: Some(0),
                    response: Response::Push(event),
                } => self.pushes.push_back(event),
                reply => return Ok(reply),
            }
        }
    }

    fn read_reply_raw(&mut self) -> Result<Reply, ServeError> {
        match self.encoding {
            Encoding::Json => {
                let mut line = String::new();
                let n = self.reader.read_line(&mut line).map_err(io_err)?;
                if n == 0 {
                    return Err(ServeError {
                        code: ErrorCode::Shutdown,
                        message: "server closed the connection".into(),
                    });
                }
                Reply::decode_line(&line)
            }
            Encoding::Binary => {
                match frame::read_frame(&mut self.reader, MAX_FRAME_BYTES).map_err(io_err)? {
                    FrameRead::Eof => Err(ServeError {
                        code: ErrorCode::Shutdown,
                        message: "server closed the connection".into(),
                    }),
                    FrameRead::Frame(payload) => wire::decode_reply(&payload),
                    FrameRead::TooLarge { declared } => Err(ServeError {
                        code: ErrorCode::BadRequest,
                        message: format!("server sent an oversized {declared}-byte frame"),
                    }),
                    FrameRead::Corrupt(message) => Err(ServeError {
                        code: ErrorCode::BadRequest,
                        message,
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{FilterSpec, PolicySpec, TranscriptFormat};
    use crate::service::{Service, ServiceConfig};
    use aware_data::census::CensusGenerator;
    use aware_data::predicate::CmpOp;
    use aware_data::value::Value;

    fn served() -> (Service, TcpServer) {
        let service = Service::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        service
            .handle()
            .register_table("census", CensusGenerator::new(11).generate(3_000));
        let server = TcpServer::bind("127.0.0.1:0", service.handle()).unwrap();
        (service, server)
    }

    #[test]
    fn end_to_end_over_a_socket() {
        let (_service, server) = served();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let sid = match client
            .call(&Command::CreateSession {
                dataset: "census".into(),
                alpha: 0.05,
                policy: PolicySpec::Fixed { gamma: 10.0 },
            })
            .unwrap()
        {
            Response::SessionCreated { session, .. } => session,
            other => panic!("{other:?}"),
        };

        match client
            .call(&Command::AddVisualization {
                session: sid,
                attribute: "education".into(),
                filter: FilterSpec::Cmp {
                    column: "salary_over_50k".into(),
                    op: CmpOp::Eq,
                    value: Value::Bool(true),
                },
            })
            .unwrap()
        {
            Response::VizAdded {
                hypothesis: Some(h),
                ..
            } => assert!(h.rejected),
            other => panic!("{other:?}"),
        }

        match client
            .call(&Command::Transcript {
                session: sid,
                format: TranscriptFormat::Text,
            })
            .unwrap()
        {
            Response::TranscriptText { text, .. } => {
                assert!(text.contains("AWARE session transcript"))
            }
            other => panic!("{other:?}"),
        }

        match client.call(&Command::Stats).unwrap() {
            Response::Stats(s) => assert_eq!(s.sessions_created, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_lines_get_error_responses_not_disconnects() {
        let (_service, server) = served();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        writer
            .write_all(b"this is not json\n{\"cmd\":\"warp\"}\n\n{\"cmd\":\"stats\"}\n")
            .unwrap();
        writer.flush().unwrap();

        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let (r, _) = Response::decode_line(&line).unwrap();
        assert!(
            matches!(r, Response::Error(ref e) if e.code == ErrorCode::BadRequest),
            "{r:?}"
        );

        line.clear();
        reader.read_line(&mut line).unwrap();
        let (r, _) = Response::decode_line(&line).unwrap();
        assert!(
            matches!(r, Response::Error(ref e) if e.code == ErrorCode::UnknownCommand),
            "{r:?}"
        );

        // The empty line was skipped; the stats request still answers.
        line.clear();
        reader.read_line(&mut line).unwrap();
        let (r, _) = Response::decode_line(&line).unwrap();
        assert!(matches!(r, Response::Stats(_)), "{r:?}");
    }

    #[test]
    fn request_line_cap_is_exact_at_the_newline_chunk() {
        // A line one byte over the cap whose newline arrives in the same
        // buffered chunk must still be rejected (regression: the cap was
        // once only enforced on newline-free chunks).
        let mut input = std::io::Cursor::new({
            let mut v = vec![b'x'; 10 + 1];
            v.push(b'\n');
            v.extend_from_slice(b"ok\n");
            v
        });
        match read_request_line(&mut input, 10).unwrap() {
            RequestLine::TooLong => {}
            RequestLine::Text(t) => panic!("accepted over-cap line of {} bytes", t.len()),
            RequestLine::Eof => panic!("eof"),
        }
        // The stream resynchronized at the newline.
        match read_request_line(&mut input, 10).unwrap() {
            RequestLine::Text(t) => assert_eq!(t, "ok"),
            other => panic!("{:?}", std::mem::discriminant(&other)),
        }
        // Exactly at the cap is accepted.
        let mut input = std::io::Cursor::new(
            vec![b'y'; 10]
                .into_iter()
                .chain(*b"\n")
                .collect::<Vec<u8>>(),
        );
        match read_request_line(&mut input, 10).unwrap() {
            RequestLine::Text(t) => assert_eq!(t.len(), 10),
            _ => panic!("at-cap line must pass"),
        }
        assert!(matches!(
            read_request_line(&mut input, 10).unwrap(),
            RequestLine::Eof
        ));
    }

    #[test]
    fn oversized_request_line_is_rejected_and_stream_resyncs() {
        let (_service, server) = served();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);

        // A 2 MiB line (deeply-nested-bomb shaped) followed by a valid
        // request on the same connection.
        let bomb = "[".repeat(2 * MAX_REQUEST_BYTES);
        writer.write_all(bomb.as_bytes()).unwrap();
        writer.write_all(b"\n{\"cmd\":\"stats\"}\n").unwrap();
        writer.flush().unwrap();

        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let (r, _) = Response::decode_line(&line).unwrap();
        assert!(
            matches!(r, Response::Error(ref e) if e.code == ErrorCode::BadRequest),
            "{r:?}"
        );
        line.clear();
        reader.read_line(&mut line).unwrap();
        let (r, _) = Response::decode_line(&line).unwrap();
        match r {
            // Protocol errors are visible to the stats counters.
            Response::Stats(s) => assert!(s.errors >= 1, "{s:?}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dropping_the_server_stops_accepting() {
        let (_service, server) = served();
        let addr = server.local_addr();
        drop(server);
        // The listener is gone: new connections are refused (or accepted
        // by nothing and immediately closed — read returns EOF).
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(stream) => {
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                let n = reader.read_line(&mut line).unwrap_or(0);
                assert_eq!(n, 0, "no server should answer: {line}");
            }
        }
    }

    #[test]
    fn two_clients_drive_independent_sessions() {
        let (_service, server) = served();
        let mut a = Client::connect(server.local_addr()).unwrap();
        let mut b = Client::connect(server.local_addr()).unwrap();
        let make = |c: &mut Client| match c
            .call(&Command::CreateSession {
                dataset: "census".into(),
                alpha: 0.05,
                policy: PolicySpec::Fixed { gamma: 10.0 },
            })
            .unwrap()
        {
            Response::SessionCreated { session, .. } => session,
            other => panic!("{other:?}"),
        };
        let sa = make(&mut a);
        let sb = make(&mut b);
        assert_ne!(sa, sb);
        // Interleave commands; each session only sees its own.
        for (c, sid) in [(&mut a, sa), (&mut b, sb)] {
            match c.call(&Command::Gauge { session: sid }).unwrap() {
                Response::GaugeText { session, text } => {
                    assert_eq!(session, sid);
                    assert!(text.contains("no hypotheses tracked yet"));
                }
                other => panic!("{other:?}"),
            }
        }
    }

    /// A reader whose first `n` reads fail with `Interrupted` before
    /// the payload flows — the shape a pending signal gives `read(2)`.
    struct InterruptedReader {
        interrupts: usize,
        data: &'static [u8],
    }

    impl std::io::Read for InterruptedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.interrupts > 0 {
                self.interrupts -= 1;
                return Err(std::io::Error::from(std::io::ErrorKind::Interrupted));
            }
            let n = self.data.len().min(buf.len());
            buf[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    #[test]
    fn first_byte_retries_through_eintr() {
        // Surface auto-detection must not classify (or kill) the
        // connection on a stray signal: the first byte after the
        // interrupts decides.
        let mut r = BufReader::new(InterruptedReader {
            interrupts: 3,
            data: b"AWR2",
        });
        assert_eq!(first_byte(&mut r).unwrap(), Some(b'A'));

        let mut r = BufReader::new(InterruptedReader {
            interrupts: 2,
            data: b"{\"cmd\":\"stats\"}\n",
        });
        assert_eq!(first_byte(&mut r).unwrap(), Some(b'{'));

        // EINTR then clean close is still a clean zero-byte close.
        let mut r = BufReader::new(InterruptedReader {
            interrupts: 1,
            data: b"",
        });
        assert_eq!(first_byte(&mut r).unwrap(), None);

        // Other errors still propagate.
        struct Broken;
        impl std::io::Read for Broken {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::ConnectionReset))
            }
        }
        let mut r = BufReader::new(Broken);
        assert_eq!(
            first_byte(&mut r).unwrap_err().kind(),
            std::io::ErrorKind::ConnectionReset
        );
    }
}
