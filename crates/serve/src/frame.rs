//! Length-prefixed binary framing for protocol v2.
//!
//! Every binary wire message is one frame:
//!
//! ```text
//! offset 0  magic   "AWR2"          (4 bytes)
//! offset 4  version 0x02            (1 byte)
//! offset 5  length  u32 big-endian  (payload bytes that follow)
//! offset 9  payload                 (see `crate::wire` for the codec)
//! ```
//!
//! The magic's first byte (`A`, 0x41) is what the TCP front end keys
//! v1/v2 auto-detection on: no JSON request line can start with it
//! (lines open with `{` or whitespace), so the first byte of a
//! connection decides the surface.
//!
//! Framing errors are classified so the connection loop can react
//! proportionately: an oversized frame is skippable (the length prefix
//! says exactly how many bytes to discard, so the stream stays
//! synchronized), while bad magic or a truncated header means framing
//! is lost and the connection must close.

use std::io::{BufRead, Read, Write};

/// Frame magic; `MAGIC[0]` doubles as the v2 auto-detection byte.
pub const MAGIC: [u8; 4] = *b"AWR2";

/// Frame-format version carried in every header.
pub const VERSION: u8 = 2;

/// Bytes before the payload: magic + version + u32 length.
pub const HEADER_LEN: usize = 9;

/// Hard ceiling on a frame payload. Mirrors the NDJSON request-line cap
/// in purpose (a client cannot make the server buffer unbounded input)
/// but is higher because batches legitimately carry many commands.
pub const MAX_FRAME_BYTES: usize = 8 << 20;

/// How reading one frame ended.
#[derive(Debug)]
pub enum FrameRead {
    /// Clean end of stream at a frame boundary.
    Eof,
    /// One complete payload.
    Frame(Vec<u8>),
    /// The header declared more than the cap; the payload has NOT been
    /// consumed — call [`skip_payload`] to resynchronize.
    TooLarge { declared: u32 },
    /// Framing is lost (bad magic, unsupported version, or the stream
    /// ended mid-frame); the connection cannot be trusted further.
    Corrupt(String),
}

/// Reads one frame, enforcing `max` on the declared payload length.
pub fn read_frame(reader: &mut impl BufRead, max: usize) -> std::io::Result<FrameRead> {
    let mut header = [0u8; HEADER_LEN];
    // EOF before the first header byte is a clean close; EOF anywhere
    // later is a truncated frame.
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = reader.read(&mut header[filled..])?;
        if n == 0 {
            return Ok(if filled == 0 {
                FrameRead::Eof
            } else {
                FrameRead::Corrupt(format!(
                    "stream ended after {filled} of {HEADER_LEN} header bytes"
                ))
            });
        }
        filled += n;
    }
    if header[..4] != MAGIC {
        return Ok(FrameRead::Corrupt(format!(
            "bad frame magic {:02x}{:02x}{:02x}{:02x} (expected \"AWR2\")",
            header[0], header[1], header[2], header[3]
        )));
    }
    if header[4] != VERSION {
        return Ok(FrameRead::Corrupt(format!(
            "unsupported frame version {} (expected {VERSION})",
            header[4]
        )));
    }
    let declared = u32::from_be_bytes([header[5], header[6], header[7], header[8]]);
    if declared as usize > max {
        return Ok(FrameRead::TooLarge { declared });
    }
    let mut payload = vec![0u8; declared as usize];
    if let Err(e) = reader.read_exact(&mut payload) {
        return Ok(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameRead::Corrupt(format!("stream ended inside a {declared}-byte payload"))
        } else {
            return Err(e);
        });
    }
    Ok(FrameRead::Frame(payload))
}

/// Discards the payload of a [`FrameRead::TooLarge`] frame so the next
/// header starts cleanly. Bounded memory (64 KiB scratch), unbounded
/// patience — the same trade the NDJSON reader makes when it consumes
/// an over-long line through its newline.
pub fn skip_payload(reader: &mut impl Read, mut remaining: u64) -> std::io::Result<()> {
    let mut scratch = [0u8; 64 * 1024];
    while remaining > 0 {
        let want = remaining.min(scratch.len() as u64) as usize;
        let n = reader.read(&mut scratch[..want])?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "stream ended while skipping an oversized frame",
            ));
        }
        remaining -= n as u64;
    }
    Ok(())
}

/// Writes one frame around `payload`.
///
/// Panics if `payload` exceeds `u32::MAX` bytes — the in-process
/// encoders cap batches far below that.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).expect("frame payload fits u32");
    writer.write_all(&MAGIC)?;
    writer.write_all(&[VERSION])?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        buf
    }

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", &[0u8; 1000]] {
            let mut cursor = Cursor::new(framed(payload));
            match read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap() {
                FrameRead::Frame(read) => assert_eq!(read, payload),
                other => panic!("{other:?}"),
            }
            assert!(matches!(
                read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap(),
                FrameRead::Eof
            ));
        }
    }

    #[test]
    fn back_to_back_frames_stay_synchronized() {
        let mut bytes = framed(b"first");
        bytes.extend_from_slice(&framed(b"second"));
        let mut cursor = Cursor::new(bytes);
        for expected in [&b"first"[..], b"second"] {
            match read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap() {
                FrameRead::Frame(read) => assert_eq!(read, expected),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn truncated_header_and_payload_are_corrupt() {
        // Header cut short.
        let mut cursor = Cursor::new(b"AWR2".to_vec());
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap(),
            FrameRead::Corrupt(_)
        ));
        // Payload cut short.
        let mut bytes = framed(b"full payload");
        bytes.truncate(bytes.len() - 3);
        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap() {
            FrameRead::Corrupt(msg) => assert!(msg.contains("payload"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version_are_corrupt() {
        let mut bytes = framed(b"x");
        bytes[0] = b'B';
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes), MAX_FRAME_BYTES).unwrap(),
            FrameRead::Corrupt(_)
        ));
        let mut bytes = framed(b"x");
        bytes[4] = 9; // version
        match read_frame(&mut Cursor::new(bytes), MAX_FRAME_BYTES).unwrap() {
            FrameRead::Corrupt(msg) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_frame_is_reported_and_skippable() {
        let payload = vec![7u8; 100];
        let mut bytes = framed(&payload);
        bytes.extend_from_slice(&framed(b"next"));
        let mut cursor = Cursor::new(bytes);
        let declared = match read_frame(&mut cursor, 10).unwrap() {
            FrameRead::TooLarge { declared } => declared,
            other => panic!("{other:?}"),
        };
        assert_eq!(declared, 100);
        skip_payload(&mut cursor, declared as u64).unwrap();
        // The stream resynchronized at the next frame.
        match read_frame(&mut cursor, 10).unwrap() {
            FrameRead::Frame(read) => assert_eq!(read, b"next"),
            other => panic!("{other:?}"),
        }
    }
}
