//! The readiness-based front end: the same wire protocol as
//! [`crate::tcp`], served by the [`aware_reactor`] event loop instead
//! of a thread per connection.
//!
//! [`ProtoReactorService`] is the adapter: it implements
//! [`aware_reactor::ReactorService`] over any [`Dispatch`], mirroring
//! the blocking front end's semantics *byte for byte* — same replies,
//! same error strings, same close decisions — so a transcript captured
//! against one front end replays identically against the other. The
//! framing-properties test battery in `crates/reactor/tests` holds the
//! two to that contract.
//!
//! Where the two fronts deliberately differ: the reactor front can
//! deliver frames to a connection at any time, so it *grants* the
//! hello `push` capability (when the dispatcher supports it), while
//! the blocking front honestly declines it. Granted connections
//! receive eviction notices and cache-reset announcements as id-0
//! envelopes — see [`crate::proto::PushEvent`].

use crate::error::{ErrorCode, ServeError};
use crate::frame::MAX_FRAME_BYTES;
use crate::proto::{Encoding, Envelope, PushEvent, Reply, Response};
use crate::service::Dispatch;
use crate::tcp::{negotiate, run_batch, write_reply_frame, TcpServer, MAX_REQUEST_BYTES};
use crate::{frame, wire};
use aware_reactor::{ConnState, Inbound, Outcome, ReactorConfig, ReactorServer, ReactorService};

/// Adapts a [`Dispatch`] to the reactor's connection state machine.
pub struct ProtoReactorService<H> {
    handle: H,
}

impl<H: Dispatch> ProtoReactorService<H> {
    pub fn new(handle: H) -> Self {
        ProtoReactorService { handle }
    }

    /// One NDJSON line, mirroring `serve_ndjson`'s loop body.
    fn handle_line(&self, state: &mut ConnState, line: &str) -> Outcome {
        if line.trim().is_empty() {
            return Outcome::none();
        }
        self.handle.record_wire_request(Encoding::Json);
        let reply_line = match Envelope::decode_line(line) {
            Ok(Envelope::Hello {
                id,
                version,
                encoding,
                push,
            }) => match negotiate(version, encoding, Encoding::Json) {
                Ok(Reply::HelloAck {
                    version,
                    encoding,
                    max_frame,
                    ..
                }) => {
                    // Unlike the blocking front end, this one can write
                    // to a connection whenever the loop pleases, so the
                    // push capability is granted — if the client asked
                    // and the dispatcher can actually emit events.
                    let granted = push && self.handle.push_supported();
                    state.push = granted;
                    let ack = Reply::HelloAck {
                        id,
                        version,
                        encoding,
                        max_frame,
                        push: granted,
                    };
                    let mut bytes = ack.encode_line().into_bytes();
                    bytes.push(b'\n');
                    if encoding == Encoding::Binary {
                        // The ack was the last JSON line; frames from
                        // here on, both directions. The JSON hello
                        // counts as the binary greeting.
                        state.greeted = true;
                        return Outcome {
                            reply: bytes,
                            close: false,
                            upgrade_to_frames: true,
                        };
                    }
                    return Outcome::reply(bytes);
                }
                Ok(_) => unreachable!("negotiate acks with HelloAck"),
                Err(e) => {
                    self.handle.record_protocol_error();
                    Response::Error(e).encode_line(id)
                }
            },
            Ok(Envelope::Batch { id, batch }) => Reply::Batch {
                id,
                items: run_batch(&self.handle, batch, aware_obs::trace::adopt_or_new(id)),
            }
            .encode_line(),
            Ok(Envelope::Single { id, cmd }) => self
                .handle
                .call_traced(cmd, aware_obs::trace::adopt_or_new(id))
                .encode_line(id),
            Err(e) => {
                self.handle.record_protocol_error();
                Response::Error(e).encode_line(None)
            }
        };
        let encode_start = std::time::Instant::now();
        let mut bytes = reply_line.into_bytes();
        bytes.push(b'\n');
        self.handle
            .record_wire_encode(encode_start.elapsed().as_micros() as u64);
        Outcome::reply(bytes)
    }

    /// One reassembled binary frame, mirroring `serve_binary`'s loop
    /// body (minus the framing errors, which arrive as their own
    /// [`Inbound`] variants).
    fn handle_frame(&self, state: &mut ConnState, payload: &[u8]) -> Outcome {
        self.handle.record_wire_request(Encoding::Binary);
        let reply = match wire::decode_envelope(payload) {
            Ok(Envelope::Hello {
                id,
                version,
                encoding,
                push,
            }) => match negotiate(version, encoding, Encoding::Binary) {
                Ok(Reply::HelloAck {
                    version,
                    encoding,
                    max_frame,
                    ..
                }) => {
                    state.greeted = true;
                    let granted = push && self.handle.push_supported();
                    state.push = granted;
                    Reply::HelloAck {
                        id,
                        version,
                        encoding,
                        max_frame,
                        push: granted,
                    }
                }
                Ok(_) => unreachable!("negotiate acks with HelloAck"),
                Err(e) => {
                    self.handle.record_protocol_error();
                    Reply::Single {
                        id,
                        response: Response::Error(e),
                    }
                }
            },
            Ok(envelope) if !state.greeted => {
                // First frame was well-formed v2 but not a hello.
                self.handle.record_protocol_error();
                let id = match envelope {
                    Envelope::Batch { id, .. } | Envelope::Single { id, .. } => id,
                    Envelope::Hello { id, .. } => id,
                };
                let reply = Reply::Single {
                    id,
                    response: Response::Error(ServeError {
                        code: ErrorCode::BadRequest,
                        message: "a binary connection must open with a hello frame".into(),
                    }),
                };
                return Outcome::close_with(encode_reply_frame(&reply));
            }
            Ok(Envelope::Batch { id, batch }) => Reply::Batch {
                id,
                items: run_batch(&self.handle, batch, aware_obs::trace::adopt_or_new(id)),
            },
            Ok(Envelope::Single { id, cmd }) => Reply::Single {
                id,
                response: self
                    .handle
                    .call_traced(cmd, aware_obs::trace::adopt_or_new(id)),
            },
            Err(e) => {
                self.handle.record_protocol_error();
                let reply = Reply::Single {
                    id: None,
                    response: Response::Error(e),
                };
                let bytes = encode_reply_frame(&reply);
                // An un-greeted binary connection sending garbage is
                // held to the same hello-first contract as one sending
                // well-formed non-hello envelopes: one error, hang up.
                return if state.greeted {
                    Outcome::reply(bytes)
                } else {
                    Outcome::close_with(bytes)
                };
            }
        };
        let encode_start = std::time::Instant::now();
        let bytes = encode_reply_frame(&reply);
        self.handle
            .record_wire_encode(encode_start.elapsed().as_micros() as u64);
        Outcome::reply(bytes)
    }
}

/// Encodes one reply frame to bytes via the same path the blocking
/// front end writes through, so the oversize-reply fallback produces
/// identical bytes on both fronts.
fn encode_reply_frame(reply: &Reply) -> Vec<u8> {
    let mut buf = Vec::new();
    write_reply_frame(&mut buf, reply).expect("Vec<u8> writes are infallible");
    buf
}

impl<H: Dispatch + Send + Sync + 'static> ReactorService for ProtoReactorService<H> {
    type Push = PushEvent;

    fn handle(&self, state: &mut ConnState, inbound: Inbound) -> Outcome {
        match inbound {
            Inbound::Line(line) => self.handle_line(state, &line),
            Inbound::LineTooLong => {
                self.handle.record_protocol_error();
                let mut bytes = Response::Error(ServeError {
                    code: ErrorCode::BadRequest,
                    message: format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
                })
                .encode_line(None)
                .into_bytes();
                bytes.push(b'\n');
                Outcome::reply(bytes)
            }
            Inbound::Frame(payload) => self.handle_frame(state, &payload),
            Inbound::FrameTooLarge { declared } => {
                // The reactor's decoder already arranged to skip the
                // oversized payload; the stream stays synchronized,
                // the connection lives — same as the blocking front.
                self.handle.record_protocol_error();
                let reply = Reply::Single {
                    id: None,
                    response: Response::Error(ServeError {
                        code: ErrorCode::BadRequest,
                        message: format!(
                            "frame payload of {declared} bytes exceeds {MAX_FRAME_BYTES}"
                        ),
                    }),
                };
                Outcome::reply(encode_reply_frame(&reply))
            }
            Inbound::FrameCorrupt(message) => {
                // Framing is lost — answer once and hang up.
                self.handle.record_protocol_error();
                let reply = Reply::Single {
                    id: None,
                    response: Response::Error(ServeError {
                        code: ErrorCode::BadRequest,
                        message,
                    }),
                };
                Outcome::close_with(encode_reply_frame(&reply))
            }
        }
    }

    fn encode_push(&self, frames: bool, event: &PushEvent) -> Option<Vec<u8>> {
        let reply = Reply::Single {
            id: Some(0),
            response: Response::Push(event.clone()),
        };
        Some(if frames {
            encode_reply_frame(&reply)
        } else {
            let mut bytes = reply.encode_line().into_bytes();
            bytes.push(b'\n');
            bytes
        })
    }

    fn on_wakeup(&self) {
        self.handle.record_reactor_wakeup();
    }

    fn on_conn_open(&self) {
        self.handle.record_conn_open();
    }

    fn on_conn_close(&self) {
        self.handle.record_conn_close();
    }

    fn on_push_frame(&self) {
        self.handle.record_push_frame();
    }
}

/// The reactor config matching the protocol limits the blocking front
/// end enforces, so both fronts reject the same inputs with the same
/// messages.
pub fn proto_reactor_config() -> ReactorConfig {
    ReactorConfig {
        line_max: MAX_REQUEST_BYTES,
        frame_max: MAX_FRAME_BYTES,
        magic: frame::MAGIC,
        frame_version: frame::VERSION,
        ..ReactorConfig::default()
    }
}

/// Binds the reactor front end on `addr` and wires the dispatcher's
/// push events through to subscribed connections.
pub fn bind_reactor<H>(addr: &str, handle: H) -> std::io::Result<ReactorServer<PushEvent>>
where
    H: Dispatch + Clone + Send + Sync + 'static,
{
    bind_reactor_with(addr, handle, proto_reactor_config())
}

/// [`bind_reactor`] with an explicit config — tests use this to shrink
/// buffer caps and idle timeouts to exercisable sizes.
pub fn bind_reactor_with<H>(
    addr: &str,
    handle: H,
    cfg: ReactorConfig,
) -> std::io::Result<ReactorServer<PushEvent>>
where
    H: Dispatch + Clone + Send + Sync + 'static,
{
    // The sink has to be registered *after* binding — the push handle
    // only exists once the server does. Events emitted in the gap are
    // dropped, which is fine: no connection can have subscribed yet.
    let subscriber = handle.clone();
    let server = ReactorServer::bind(addr, ProtoReactorService::new(handle), cfg)?;
    if subscriber.push_supported() {
        let push = server.push_handle();
        subscriber.subscribe_push(Box::new(move |event: &PushEvent| push.send(event.clone())));
    }
    Ok(server)
}

/// Either front end behind one type, so binaries can pick at runtime
/// from a `--reactor` flag without duplicating their serve loop.
pub enum ServerFront {
    /// Thread-per-connection (the default): [`crate::tcp::TcpServer`].
    Thread(TcpServer),
    /// Readiness-based event loop: [`ReactorServer`].
    Reactor(ReactorServer<PushEvent>),
}

impl ServerFront {
    /// Binds the chosen front end over the same dispatcher. Choosing
    /// the reactor also raises the process's soft file-descriptor
    /// limit (best effort) — ten thousand idle connections need more
    /// than the usual 1024.
    pub fn bind<H>(addr: &str, handle: H, reactor: bool) -> std::io::Result<ServerFront>
    where
        H: Dispatch + Clone + Send + Sync + 'static,
    {
        if reactor {
            let _ = aware_reactor::sys::raise_nofile_limit(65_536);
            Ok(ServerFront::Reactor(bind_reactor(addr, handle)?))
        } else {
            Ok(ServerFront::Thread(TcpServer::bind(addr, handle)?))
        }
    }

    pub fn local_addr(&self) -> std::net::SocketAddr {
        match self {
            ServerFront::Thread(s) => s.local_addr(),
            ServerFront::Reactor(s) => s.local_addr(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Command, PolicySpec};
    use crate::service::{Service, ServiceConfig};
    use crate::tcp::Client;
    use aware_data::census::CensusGenerator;
    use std::time::Duration;

    fn test_service(config: ServiceConfig) -> Service {
        let service = Service::start(config);
        service
            .handle()
            .register_table("census", CensusGenerator::new(7).generate(2_000));
        service
    }

    fn create(client: &mut Client) -> crate::proto::SessionId {
        match client
            .call(&Command::CreateSession {
                dataset: "census".into(),
                alpha: 0.05,
                policy: PolicySpec::Fixed { gamma: 10.0 },
            })
            .expect("create session")
        {
            Response::SessionCreated { session, .. } => session,
            other => panic!("create failed: {other:?}"),
        }
    }

    #[test]
    fn reactor_front_serves_all_three_surfaces() {
        let service = test_service(ServiceConfig::default());
        let server = bind_reactor("127.0.0.1:0", service.handle()).expect("bind reactor");
        let addr = server.local_addr();

        // v1 NDJSON, no handshake.
        let mut v1 = Client::connect(addr).expect("connect");
        let sid = create(&mut v1);
        match v1
            .call(&Command::Gauge { session: sid })
            .expect("gauge over v1")
        {
            Response::GaugeText { .. } => {}
            other => panic!("{other:?}"),
        }

        // v2 JSON and v2 binary, each its own connection and session.
        for encoding in [Encoding::Json, Encoding::Binary] {
            let mut client = Client::connect_with(addr, encoding).expect("hello");
            let sid = create(&mut client);
            match client
                .call(&Command::Gauge { session: sid })
                .expect("gauge")
            {
                Response::GaugeText { .. } => {}
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn reactor_grants_push_and_blocking_declines_it() {
        let service = test_service(ServiceConfig::default());
        let handle = service.handle();
        let reactor = bind_reactor("127.0.0.1:0", handle.clone()).expect("bind reactor");
        let thread = TcpServer::bind("127.0.0.1:0", handle).expect("bind thread front");

        for encoding in [Encoding::Json, Encoding::Binary] {
            let mut c = Client::connect(reactor.local_addr()).expect("connect");
            assert!(
                c.hello_push(encoding).expect("hello"),
                "reactor front grants push ({encoding:?})"
            );

            // Not requested → not granted, even where it could be.
            let mut c = Client::connect(reactor.local_addr()).expect("connect");
            c.hello(encoding).expect("hello");
            assert!(!c.push_granted(), "push must be opt-in ({encoding:?})");

            let mut c = Client::connect(thread.local_addr()).expect("connect");
            assert!(
                !c.hello_push(encoding).expect("hello"),
                "blocking front declines push ({encoding:?})"
            );
        }
    }

    #[test]
    fn subscribed_connection_receives_idle_eviction_pushes() {
        let service = test_service(ServiceConfig {
            idle_timeout: Duration::from_millis(1),
            sweep_interval: Some(Duration::from_millis(10)),
            ..ServiceConfig::default()
        });
        let server = bind_reactor("127.0.0.1:0", service.handle()).expect("bind reactor");

        for encoding in [Encoding::Json, Encoding::Binary] {
            let mut c = Client::connect(server.local_addr()).expect("connect");
            assert!(c.hello_push(encoding).expect("hello"));
            let sid = create(&mut c);
            // The session goes idle immediately; the sweeper evicts it
            // and the eviction notice arrives as an id-0 push frame.
            let event = c.recv_push().expect("push event");
            match event {
                PushEvent::SessionEvicted { session, reason } => {
                    assert_eq!(session, sid);
                    assert_eq!(reason, "idle");
                }
                other => panic!("unexpected push: {other:?}"),
            }
        }
    }

    #[test]
    fn binary_native_subscriber_receives_pushes_as_frames() {
        use crate::proto::PROTOCOL_VERSION;
        use std::io::BufReader;

        let service = test_service(ServiceConfig {
            idle_timeout: Duration::from_millis(1),
            sweep_interval: Some(Duration::from_millis(10)),
            ..ServiceConfig::default()
        });
        let server = bind_reactor("127.0.0.1:0", service.handle()).expect("bind reactor");

        // The hello itself goes out as an AWR2 frame — the connection
        // is binary from its first byte, so it never passes through the
        // JSON→binary upgrade path. Pushes must still arrive framed:
        // an NDJSON line spliced into this stream would corrupt framing
        // ("bad frame magic") and kill the connection.
        let sock = std::net::TcpStream::connect(server.local_addr()).expect("connect");
        sock.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut writer = sock.try_clone().expect("clone");
        let mut reader = BufReader::new(sock);
        let hello = wire::encode_envelope(&Envelope::Hello {
            id: Some(1),
            version: PROTOCOL_VERSION,
            encoding: Encoding::Binary,
            push: true,
        });
        crate::frame::write_frame(&mut writer, &hello).expect("write hello frame");

        let read_reply =
            |reader: &mut BufReader<std::net::TcpStream>| match crate::frame::read_frame(
                reader,
                MAX_FRAME_BYTES,
            )
            .expect("read frame")
            {
                crate::frame::FrameRead::Frame(payload) => {
                    wire::decode_reply(&payload).expect("decode reply")
                }
                other => panic!("expected a frame, got {other:?}"),
            };
        match read_reply(&mut reader) {
            Reply::HelloAck { push: true, .. } => {}
            other => panic!("expected push-granting ack, got {other:?}"),
        }

        let payload = wire::encode_envelope(&Envelope::Single {
            id: Some(2),
            cmd: Command::CreateSession {
                dataset: "census".into(),
                alpha: 0.05,
                policy: PolicySpec::Fixed { gamma: 10.0 },
            },
        });
        crate::frame::write_frame(&mut writer, &payload).expect("write create");
        let created = match read_reply(&mut reader) {
            Reply::Single {
                id: Some(2),
                response: Response::SessionCreated { session, .. },
            } => session,
            other => panic!("create failed: {other:?}"),
        };

        // The idle sweeper evicts the session; the notice must arrive
        // as a well-formed id-0 *frame* on this never-upgraded binary
        // connection.
        match read_reply(&mut reader) {
            Reply::Single {
                id: Some(0),
                response: Response::Push(PushEvent::SessionEvicted { session, reason }),
            } => {
                assert_eq!(session, created);
                assert_eq!(reason, "idle");
            }
            other => panic!("expected framed eviction push, got {other:?}"),
        }
    }

    #[test]
    fn unsubscribed_connection_never_sees_push_traffic() {
        let service = test_service(ServiceConfig {
            idle_timeout: Duration::from_millis(1),
            sweep_interval: Some(Duration::from_millis(10)),
            ..ServiceConfig::default()
        });
        let server = bind_reactor("127.0.0.1:0", service.handle()).expect("bind reactor");

        let mut c = Client::connect_with(server.local_addr(), Encoding::Binary).expect("hello");
        let _sid = create(&mut c);
        std::thread::sleep(Duration::from_millis(100));
        // The session was evicted, but this connection never opted in:
        // the next reply must be the answer to the next request, not a
        // stray push frame.
        match c.call(&Command::Stats).expect("stats") {
            Response::Stats(s) => assert!(s.sessions_evicted >= 1),
            other => panic!("{other:?}"),
        }
        assert!(c.take_pushes().is_empty());
    }

    #[test]
    fn cold_binary_connection_must_greet_through_the_reactor() {
        use std::io::{Read, Write};
        let service = test_service(ServiceConfig::default());
        let server = bind_reactor("127.0.0.1:0", service.handle()).expect("bind reactor");

        // A well-formed non-hello first frame gets one error, then EOF.
        let mut sock = std::net::TcpStream::connect(server.local_addr()).expect("connect");
        let payload = wire::encode_envelope(&Envelope::Single {
            id: Some(9),
            cmd: Command::Stats,
        });
        crate::frame::write_frame(&mut sock, &payload).expect("write frame");
        let mut buf = Vec::new();
        sock.read_to_end(&mut buf).expect("read to EOF");
        let frame =
            crate::frame::read_frame(&mut std::io::BufReader::new(&buf[..]), MAX_FRAME_BYTES)
                .expect("read reply frame");
        let crate::frame::FrameRead::Frame(payload) = frame else {
            panic!("expected one reply frame, got {frame:?}");
        };
        match wire::decode_reply(&payload).expect("decode reply") {
            Reply::Single {
                id: Some(9),
                response: Response::Error(e),
            } => assert!(
                e.message.contains("must open with a hello frame"),
                "got: {}",
                e.message
            ),
            other => panic!("unexpected reply: {other:?}"),
        }

        // Garbage after the magic byte — a full header's worth, so the
        // decoder can see the magic mismatch: one corrupt-frame error,
        // then EOF.
        let mut sock = std::net::TcpStream::connect(server.local_addr()).expect("connect");
        sock.write_all(b"AWRX\0\0\0\0\0\0\0\0")
            .expect("write garbage");
        let mut buf = Vec::new();
        sock.read_to_end(&mut buf).expect("read to EOF");
        assert!(!buf.is_empty(), "corrupt framing still gets one reply");
    }
}
