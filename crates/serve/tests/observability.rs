//! Observability conformance: the metrics exposition endpoint serves
//! parseable Prometheus text with the families the README documents,
//! latency histograms fill and surface through `stats`, slow commands
//! count, and per-session risk telemetry rides the JSON stats surface.

use aware_data::census::CensusGenerator;
use aware_data::predicate::CmpOp;
use aware_data::value::Value;
use aware_obs::expose::{validate_exposition, MetricsServer};
use aware_serve::proto::{Command, FilterSpec, PolicySpec, Response};
use aware_serve::service::{Service, ServiceConfig};
use std::io::{Read, Write};
use std::net::TcpStream;

fn served(slow_ms: Option<u64>) -> Service {
    let service = Service::start(ServiceConfig {
        workers: 2,
        slow_ms,
        ..ServiceConfig::default()
    });
    service
        .handle()
        .register_table("census", CensusGenerator::new(11).generate(3_000));
    service
}

fn create(service: &Service) -> u64 {
    match service.handle().call(Command::CreateSession {
        dataset: "census".into(),
        alpha: 0.05,
        policy: PolicySpec::Fixed { gamma: 10.0 },
    }) {
        Response::SessionCreated { session, .. } => session,
        other => panic!("{other:?}"),
    }
}

fn viz(session: u64) -> Command {
    Command::AddVisualization {
        session,
        attribute: "education".into(),
        filter: FilterSpec::Cmp {
            column: "salary_over_50k".into(),
            op: CmpOp::Eq,
            value: Value::Bool(true),
        },
    }
}

/// Plain-socket HTTP GET — the same shape the CI curl step performs.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    raw
}

#[test]
fn metrics_endpoint_serves_valid_exposition_over_http() {
    let service = served(None);
    let handle = service.handle();
    let sid = create(&service);
    assert!(handle.call(viz(sid)).is_ok());

    let h = handle.clone();
    let metrics = MetricsServer::bind("127.0.0.1:0", move || h.metrics_text()).unwrap();
    let raw = http_get(metrics.local_addr(), "/metrics");
    assert!(raw.starts_with("HTTP/1.1 200 OK"), "{raw}");
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let samples =
        validate_exposition(body).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{body}"));
    assert!(samples > 10, "only {samples} samples:\n{body}");

    // The families the README's metrics table names must be present.
    for family in [
        "aware_up",
        "aware_uptime_seconds",
        "aware_sessions_live",
        "aware_commands_total",
        "aware_slow_queries_total",
        "aware_command_latency_us",
        "aware_stage_latency_us",
        "aware_cache_hits_total",
        "aware_session_wealth",
        "aware_batch_size",
    ] {
        assert!(
            body.contains(&format!("# TYPE {family} ")),
            "family {family} missing:\n{body}"
        );
    }
    // The one command kind that ran is labeled; stages all present.
    assert!(body.contains("kind=\"add_visualization\""), "{body}");
    for stage in ["queue_wait", "execute", "wire_encode", "snapshot_flush"] {
        assert!(body.contains(&format!("stage=\"{stage}\"")), "{body}");
    }
    assert!(body.contains("dataset=\"census\""), "{body}");

    // Unknown paths 404; bare / serves the same body.
    let miss = http_get(metrics.local_addr(), "/nope");
    assert!(miss.starts_with("HTTP/1.1 404"), "{miss}");
    let root = http_get(metrics.local_addr(), "/");
    assert!(root.starts_with("HTTP/1.1 200 OK"), "{root}");
}

#[test]
fn latency_and_slow_query_telemetry_reach_the_stats_snapshot() {
    // slow_ms = 0: every command is past the threshold, so the counter
    // must track command execution exactly.
    let service = served(Some(0));
    let handle = service.handle();
    let sid = create(&service);
    for _ in 0..3 {
        assert!(handle.call(viz(sid)).is_ok());
    }
    match handle.call(Command::Stats) {
        Response::Stats(s) => {
            assert!(s.slow_queries >= 4, "create + 3 viz: {}", s.slow_queries);
            assert!(s.latency_p99_us >= s.latency_p50_us);
            assert!(s.latency_p999_us > 0, "histograms must have filled");
            // Per-session risk telemetry: one row, spent wealth visible.
            assert_eq!(s.sessions.len(), 1);
            let row = &s.sessions[0];
            assert_eq!(row.session, sid);
            assert_eq!(row.dataset, "census");
            assert_eq!(row.tests_run, 3);
            // Three tests ran, so α was bid three times; the cumulative
            // spend is positive even though discoveries earn wealth back.
            assert!(row.wealth > 0.0);
            assert!(row.risk_spent > 0.0);
            assert_eq!(row.discoveries, 3);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn session_risk_rows_round_trip_the_json_stats_surface() {
    let service = served(None);
    let handle = service.handle();
    let sid = create(&service);
    assert!(handle.call(viz(sid)).is_ok());
    match handle.call(Command::Stats) {
        Response::Stats(s) => {
            let line = Response::Stats(s.clone()).encode_line(None);
            assert!(line.contains("\"sessions\""), "{line}");
            let (decoded, _) = Response::decode_line(&line).unwrap();
            match decoded {
                Response::Stats(back) => {
                    assert_eq!(back.sessions.len(), s.sessions.len());
                    assert_eq!(back.sessions[0].session, sid);
                    assert_eq!(back.uptime_seconds, s.uptime_seconds);
                    assert_eq!(back.latency_p999_us, s.latency_p999_us);
                }
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
}
