//! Protocol conformance: the real `serve` binary, driven end-to-end on
//! both surfaces.
//!
//! The test spawns the production binary (not an in-process server),
//! waits for it to announce its port, then runs the same exploration
//! script twice against it — once as a v1 NDJSON client writing raw
//! request lines, once as a v2 binary-framed client submitting one
//! pipelined batch — and asserts the resulting gauges and transcripts
//! are byte-identical. The two sessions share the server's one census
//! table, so any divergence is protocol-induced by construction.
//!
//! CI runs this as its protocol-conformance step:
//! `cargo test -p aware-serve --test conformance`.

use aware_data::predicate::CmpOp;
use aware_data::value::Value;
use aware_serve::proto::{
    BatchMode, Command, Encoding, FilterSpec, PolicySpec, Response, SessionId, TranscriptFormat,
};
use aware_serve::tcp::Client;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command as Proc, Stdio};

/// Kills the spawned server even when an assertion panics.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_server() -> (ServerGuard, SocketAddr) {
    let mut child = Proc::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--rows",
            "1500",
            "--workers",
            "2",
            "--seed",
            "7",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn the serve binary");
    let stderr = child.stderr.take().expect("piped stderr");
    let guard = ServerGuard(child);
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("read serve stderr");
        if let Some(rest) = line.strip_prefix("aware-serve listening on ") {
            let addr = rest
                .split_whitespace()
                .next()
                .expect("address token")
                .parse()
                .expect("parse announced address");
            break addr;
        }
    };
    // Keep draining stderr so the child can never block on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (guard, addr)
}

/// The exploration script, session id patched in per client. The
/// filters hit both planted dependencies and null views, so transcripts
/// carry rejections, acceptances, and a policy swap.
fn script(session: SessionId) -> Vec<Command> {
    let eq = |column: &str, value: Value| FilterSpec::Cmp {
        column: column.into(),
        op: CmpOp::Eq,
        value,
    };
    vec![
        Command::AddVisualization {
            session,
            attribute: "sex".into(),
            filter: FilterSpec::True,
        },
        Command::AddVisualization {
            session,
            attribute: "education".into(),
            filter: eq("salary_over_50k", Value::Bool(true)),
        },
        Command::AddVisualization {
            session,
            attribute: "race".into(),
            filter: eq("survey_wave", Value::Str("Wave-2".into())),
        },
        Command::SetPolicy {
            session,
            policy: PolicySpec::Hopeful { delta: 5.0 },
        },
        Command::AddVisualization {
            session,
            attribute: "marital_status".into(),
            filter: FilterSpec::Between {
                column: "age".into(),
                lo: 25.0,
                hi: 45.0,
            },
        },
        Command::AddVisualization {
            session,
            attribute: "occupation".into(),
            filter: eq("native_region", Value::Str("South".into())),
        },
        Command::Gauge { session },
        Command::Transcript {
            session,
            format: TranscriptFormat::Csv,
        },
        Command::Transcript {
            session,
            format: TranscriptFormat::Text,
        },
    ]
}

fn create_command() -> Command {
    Command::CreateSession {
        dataset: "census".into(),
        alpha: 0.05,
        policy: PolicySpec::Fixed { gamma: 10.0 },
    }
}

/// gauge, csv, text — the session's observable final state.
type Transcripts = (String, String, String);

fn collect(responses: &[Response]) -> Transcripts {
    let n = responses.len();
    let gauge = match &responses[n - 3] {
        Response::GaugeText { text, .. } => text.clone(),
        other => panic!("{other:?}"),
    };
    let csv = match &responses[n - 2] {
        Response::TranscriptText { text, .. } => text.clone(),
        other => panic!("{other:?}"),
    };
    let text = match &responses[n - 1] {
        Response::TranscriptText { text, .. } => text.clone(),
        other => panic!("{other:?}"),
    };
    (gauge, csv, text)
}

/// v1: raw NDJSON lines, one round trip per command.
fn drive_v1(addr: SocketAddr) -> Transcripts {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let mut id = 0u64;
    let mut call = |cmd: &Command| -> Response {
        let line = cmd.encode_line(Some(id));
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let (response, echoed) = Response::decode_line(&reply).unwrap();
        assert_eq!(echoed, Some(id), "{reply}");
        id += 1;
        response
    };
    let session = match call(&create_command()) {
        Response::SessionCreated { session, .. } => session,
        other => panic!("{other:?}"),
    };
    let responses: Vec<Response> = script(session).iter().map(&mut call).collect();
    for r in &responses {
        assert!(r.is_ok(), "{r:?}");
    }
    collect(&responses)
}

/// v2: binary framing, the whole script pipelined as one batch.
fn drive_v2(addr: SocketAddr) -> Transcripts {
    let mut client = Client::connect_with(addr, Encoding::Binary).unwrap();
    let session = match client.call(&create_command()).unwrap() {
        Response::SessionCreated { session, .. } => session,
        other => panic!("{other:?}"),
    };
    let responses = client
        .call_batch(&script(session), BatchMode::FailFast)
        .unwrap();
    for r in &responses {
        assert!(r.is_ok(), "{r:?}");
    }
    collect(&responses)
}

#[test]
fn v1_and_v2_transcripts_are_byte_identical() {
    let (_guard, addr) = spawn_server();
    let (v1_gauge, v1_csv, v1_text) = drive_v1(addr);
    let (v2_gauge, v2_csv, v2_text) = drive_v2(addr);
    assert!(
        v1_csv.lines().count() > 1,
        "script produced an empty transcript: {v1_csv}"
    );
    assert_eq!(v1_gauge, v2_gauge, "gauges diverged between surfaces");
    assert_eq!(v1_csv, v2_csv, "CSV transcripts diverged between surfaces");
    assert_eq!(
        v1_text, v2_text,
        "text transcripts diverged between surfaces"
    );
    // The v2 run replayed the same filters over the same dataset as the
    // v1 run, so the shared per-dataset evaluation cache was warm: the
    // server must report hits, and the transcript equality above is what
    // proves those hits changed nothing.
    let mut client = Client::connect_with(addr, Encoding::Binary).unwrap();
    match client.call(&Command::Stats).unwrap() {
        Response::Stats(s) => {
            assert!(
                s.cache_hits > 0,
                "warm second run reported no cache hits: {s:?}"
            );
            assert!(
                s.cache_misses > 0,
                "the cold first run must have missed: {s:?}"
            );
        }
        other => panic!("{other:?}"),
    }
}
