//! The snapshot round-trip battery.
//!
//! Two layers of proof:
//!
//! * a property test replays random explorations (random census
//!   tables × random command streams, with mid-stream policy swaps)
//!   through `snapshot → encode → decode → restore` at **every**
//!   step-k cut point and requires the gauge/CSV/text transcripts of
//!   the resumed session to be byte-identical to the uninterrupted
//!   reference — persistence must be invisible;
//! * golden fixtures pin the version-1 file format: the checked-in
//!   bytes under `tests/fixtures/` must decode to a known image and
//!   the current encoder must reproduce them byte for byte, so any
//!   grammar change forces a version bump + migration instead of
//!   silently orphaning old files.

use aware_core::hypothesis::{
    Hypothesis, HypothesisId, HypothesisStatus, NullSpec, ShiftMethod, TestRecord,
};
use aware_core::session::{Session, SessionSnapshot};
use aware_core::viz::{Visualization, VizId};
use aware_data::cache::EvalCache;
use aware_data::census::{CensusGenerator, EDUCATION, MARITAL, RACE};
use aware_data::predicate::{CmpOp, Predicate};
use aware_data::table::Table;
use aware_data::value::Value;
use aware_mht::investing::{LedgerEntry, MachineSnapshot};
use aware_mht::Decision;
use aware_serve::proto::{BoxedPolicy, PolicySpec};
use aware_serve::snapshot::{self, SessionImage};
use aware_serve::{ErrorCode, ServeError};
use aware_stats::power::{FlipDirection, FlipEstimate};
use aware_stats::tests::{TestKind, TestOutcome};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Round-trip property: snapshot→restore at every cut point is invisible
// ---------------------------------------------------------------------------

/// One exploration step: a visualization or a policy swap.
#[derive(Debug, Clone)]
enum Action {
    Viz {
        attr: &'static str,
        filter: Predicate,
    },
    Policy(PolicySpec),
}

/// Mirrors the serving layer's per-session persistence bookkeeping: the
/// active policy spec and the ledger index it was installed at.
struct Replay {
    session: Session<BoxedPolicy>,
    fingerprint: u64,
    policy: PolicySpec,
    policy_since: u64,
}

impl Replay {
    fn open(table: Arc<Table>, cache: Arc<EvalCache>) -> Replay {
        let policy = PolicySpec::Fixed { gamma: 10.0 };
        let fingerprint = table.fingerprint();
        let session =
            Session::shared_with_cache(table, 0.05, policy.build().unwrap(), cache).unwrap();
        Replay {
            session,
            fingerprint,
            policy,
            policy_since: 0,
        }
    }

    fn from_image(table: Arc<Table>, cache: Arc<EvalCache>, image: SessionImage) -> Replay {
        let boxed = image.policy.build().unwrap();
        let fingerprint = table.fingerprint();
        if let Some(stamped) = image.fingerprint {
            assert_eq!(stamped, fingerprint, "fixture table drifted");
        }
        let session = Session::restore(
            table,
            Some(cache),
            image.session,
            boxed,
            image.policy_since as usize,
        )
        .expect("restore a freshly encoded snapshot");
        Replay {
            session,
            fingerprint,
            policy: image.policy,
            policy_since: image.policy_since,
        }
    }

    /// Applies one action; `false` means the α-wealth ran out and the
    /// exploration stops (exactly as the reference replay stops).
    fn apply(&mut self, action: &Action) -> bool {
        match action {
            Action::Viz { attr, filter } => {
                match self.session.add_visualization(*attr, filter.clone()) {
                    Ok(_) => true,
                    Err(e) if e.is_wealth_exhausted() => false,
                    Err(e) => panic!("unexpected session error: {e}"),
                }
            }
            Action::Policy(spec) => {
                self.session.replace_policy(spec.build().unwrap());
                self.policy = spec.clone();
                self.policy_since = self.session.tests_run() as u64;
                true
            }
        }
    }

    fn image(&self) -> SessionImage {
        SessionImage {
            id: 77,
            dataset: "census".into(),
            fingerprint: Some(self.fingerprint),
            policy: self.policy.clone(),
            policy_since: self.policy_since,
            session: self.session.snapshot(),
        }
    }

    fn transcripts(&self) -> (String, String, String) {
        (
            aware_core::gauge::render(&self.session),
            aware_core::transcript::export_csv(&self.session),
            aware_core::transcript::export_text(&self.session),
        )
    }
}

fn action() -> impl Strategy<Value = Action> {
    (0..10usize, 0..4usize, 0..6usize, any::<bool>()).prop_map(|(kind, attr_i, value_i, negate)| {
        match kind {
            // One step in ten swaps the policy — streams with and
            // without replaced policies are both generated.
            9 => Action::Policy(match value_i % 5 {
                0 => PolicySpec::Fixed { gamma: 8.0 },
                1 => PolicySpec::Hopeful { delta: 5.0 },
                2 => PolicySpec::EpsilonHybrid {
                    gamma: 10.0,
                    delta: 5.0,
                    epsilon: 0.5,
                    window: Some(4),
                },
                3 => PolicySpec::Farsighted { beta: 0.25 },
                _ => PolicySpec::PsiSupport {
                    gamma: 10.0,
                    psi: 0.5,
                },
            }),
            _ => {
                let attr = ["education", "race", "marital_status", "hours_per_week"][attr_i];
                let filter = match value_i % 4 {
                    0 => Predicate::eq("salary_over_50k", true),
                    1 => Predicate::eq("education", EDUCATION[value_i % EDUCATION.len()]),
                    2 => Predicate::eq("marital_status", MARITAL[value_i % MARITAL.len()]),
                    _ => Predicate::eq("race", RACE[value_i % RACE.len()]),
                };
                let filter = if negate { filter.negate() } else { filter };
                Action::Viz { attr, filter }
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For every cut point k of a random exploration, running k steps,
    /// snapshotting through the real file codec, restoring, and running
    /// the remaining steps must produce gauge/CSV/text transcripts
    /// byte-identical to the uninterrupted reference session.
    #[test]
    fn snapshot_restore_at_every_cut_point_is_invisible(
        seed in 0u64..1_000,
        rows in 300usize..700,
        actions in proptest::collection::vec(action(), 1..10),
    ) {
        let table = Arc::new(CensusGenerator::new(seed).generate(rows));
        let cache = Arc::new(EvalCache::new());

        // Uninterrupted reference.
        let mut reference = Replay::open(table.clone(), cache.clone());
        for a in &actions {
            if !reference.apply(a) {
                break;
            }
        }
        let want = reference.transcripts();

        for cut in 0..=actions.len() {
            let mut head = Replay::open(table.clone(), cache.clone());
            let mut exhausted_early = false;
            for a in &actions[..cut] {
                if !head.apply(a) {
                    exhausted_early = true;
                    break;
                }
            }
            // Through the real file bytes, not just the structs.
            let image = head.image();
            let bytes = snapshot::encode(&image);
            let decoded = snapshot::decode(&bytes).unwrap();
            prop_assert_eq!(&decoded, &image, "codec round trip at cut {}", cut);

            let mut resumed = Replay::from_image(table.clone(), cache.clone(), decoded);
            prop_assert_eq!(
                head.transcripts(),
                resumed.transcripts(),
                "restored state differs at cut {}",
                cut
            );
            if !exhausted_early {
                for a in &actions[cut..] {
                    if !resumed.apply(a) {
                        break;
                    }
                }
            }
            prop_assert_eq!(
                &resumed.transcripts(),
                &want,
                "resumed exploration diverged from the uninterrupted run at cut {}",
                cut
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Golden fixtures: version-1 bytes are pinned forever
// ---------------------------------------------------------------------------

/// A hand-built image exercising every corner of the snapshot grammar:
/// all six null-spec variants, all four hypothesis statuses, both flip
/// directions, every predicate node type, and the most complex policy
/// spec. The values are arbitrary but frozen — they only need to be
/// *stable*, not statistically meaningful. The fingerprint is a frozen
/// constant (version 2 field; the version-1 fixture carries none).
fn fixture_image() -> SessionImage {
    let salary = Predicate::eq("salary_over_50k", true);
    let chain = Predicate::And(vec![
        salary.clone(),
        Predicate::Not(Box::new(Predicate::eq("education", "PhD"))),
        Predicate::Between {
            column: "age".into(),
            lo: 18.5,
            hi: 64.0,
        },
        Predicate::Or(vec![
            Predicate::In {
                column: "race".into(),
                values: vec![Value::Str("White".into()), Value::Str("Asian".into())],
            },
            Predicate::Cmp {
                column: "hours_per_week".into(),
                op: CmpOp::Ge,
                value: Value::Int(-40),
            },
        ]),
    ]);
    let tested = TestRecord {
        outcome: TestOutcome {
            kind: TestKind::ChiSquareGof,
            statistic: 223.4375,
            df: 15.0,
            p_value: 4.9e-324, // subnormal edge: bit-exactness matters
            effect_size: 0.21875,
            support: 1_337,
        },
        bid: 0.004724409448818898,
        decision: Decision::Reject,
        wealth_after: 0.0975,
        support_fraction: 0.66845703125,
        flip: Some(FlipEstimate {
            direction: FlipDirection::ToAcceptance,
            factor: 11.5,
            additional_observations: 14_043,
        }),
    };
    let accepted = TestRecord {
        outcome: TestOutcome {
            kind: TestKind::WelchT,
            statistic: -0.71875,
            df: f64::NAN, // NaN df must survive bit-exactly too
            p_value: 0.47265625,
            effect_size: -0.015625,
            support: 512,
        },
        bid: 0.0093994140625,
        decision: Decision::Accept,
        wealth_after: 0.08801269531250001,
        support_fraction: 0.25,
        flip: Some(FlipEstimate {
            direction: FlipDirection::ToRejection,
            factor: 7.75,
            additional_observations: 3_456,
        }),
    };
    SessionImage {
        id: 42,
        dataset: "census".into(),
        fingerprint: Some(0x1bad_b002_dead_f00d),
        policy: PolicySpec::EpsilonHybrid {
            gamma: 10.0,
            delta: 5.0,
            epsilon: 0.5,
            window: Some(8),
        },
        policy_since: 1,
        session: SessionSnapshot {
            machine: MachineSnapshot {
                alpha: 0.05,
                eta: 0.95,
                omega: 0.05,
                ledger: vec![
                    LedgerEntry {
                        index: 0,
                        p_value: 4.9e-324,
                        bid: 0.004724409448818898,
                        decision: Decision::Reject,
                        wealth_before: 0.0475,
                        wealth_after: 0.0975,
                    },
                    LedgerEntry {
                        index: 1,
                        p_value: 0.47265625,
                        bid: 0.0093994140625,
                        decision: Decision::Accept,
                        wealth_before: 0.0975,
                        wealth_after: 0.08801269531250001,
                    },
                ],
            },
            visualizations: vec![
                Visualization {
                    id: VizId(0),
                    attribute: "sex".into(),
                    filter: Predicate::True,
                },
                Visualization {
                    id: VizId(1),
                    attribute: "education".into(),
                    filter: chain.clone(),
                },
                Visualization {
                    id: VizId(2),
                    attribute: "ấge😀".into(), // non-ASCII survives
                    filter: salary.clone().negate(),
                },
            ],
            hypotheses: vec![
                Hypothesis {
                    id: HypothesisId(0),
                    null: NullSpec::NoFilterEffect {
                        attribute: "education".into(),
                        filter: chain,
                    },
                    source: Some(VizId(1)),
                    status: HypothesisStatus::Superseded {
                        by: HypothesisId(1),
                    },
                    bookmarked: false,
                },
                Hypothesis {
                    id: HypothesisId(1),
                    null: NullSpec::NoDistributionDifference {
                        attribute: "education".into(),
                        filter_a: salary.clone(),
                        filter_b: salary.clone().negate(),
                    },
                    source: Some(VizId(2)),
                    status: HypothesisStatus::Tested(tested),
                    bookmarked: true,
                },
                Hypothesis {
                    id: HypothesisId(2),
                    null: NullSpec::MeanEquality {
                        attribute: "age".into(),
                        filter_a: salary.clone(),
                        filter_b: salary.clone().negate(),
                    },
                    source: None,
                    status: HypothesisStatus::Tested(accepted),
                    bookmarked: false,
                },
                Hypothesis {
                    id: HypothesisId(3),
                    null: NullSpec::IndependenceWithin {
                        attribute_a: "education".into(),
                        attribute_b: "salary_over_50k".into(),
                        filter: Predicate::True,
                        use_g_test: true,
                    },
                    source: None,
                    status: HypothesisStatus::Untestable,
                    bookmarked: false,
                },
                Hypothesis {
                    id: HypothesisId(4),
                    null: NullSpec::NoGroupMeanDifference {
                        value_attribute: "hours_per_week".into(),
                        group_attribute: "occupation".into(),
                        filter: salary.clone(),
                    },
                    source: None,
                    status: HypothesisStatus::Deleted,
                    bookmarked: false,
                },
                Hypothesis {
                    id: HypothesisId(5),
                    null: NullSpec::StochasticEquality {
                        attribute: "hours_per_week".into(),
                        filter_a: salary.clone(),
                        filter_b: salary.negate(),
                        method: ShiftMethod::KolmogorovSmirnov,
                    },
                    source: None,
                    status: HypothesisStatus::Untestable,
                    bookmarked: true,
                },
            ],
        },
    }
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// NaN-tolerant equality: the fixture's Welch record carries a NaN df,
/// which `PartialEq` would (correctly) refuse to equate. Compare via
/// the encoder instead — bit-exact f64 serialization makes the byte
/// strings the canonical identity.
fn assert_images_equal(a: &SessionImage, b: &SessionImage) {
    assert_eq!(snapshot::encode(a), snapshot::encode(b));
}

#[test]
fn golden_v1_fixture_is_pinned() {
    // The version-1 bytes are *frozen*: written by the PR 4 encoder,
    // never regenerated. What this pins is the migration path — a v1
    // file (which predates table fingerprints) must keep decoding to
    // exactly the old image, with `fingerprint: None`.
    let mut image = fixture_image();
    image.fingerprint = None;
    let path = fixture_path("session-v1.awrs");
    let pinned = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing frozen version-1 fixture {} ({e}) — these bytes cannot be \
             regenerated (the encoder now writes version 2); restore them from git",
            path.display()
        )
    });
    assert_eq!(pinned[4], 1, "fixture must stay a version-1 file");
    assert_images_equal(&snapshot::decode(&pinned).unwrap(), &image);
}

#[test]
fn golden_v2_fixture_is_pinned() {
    let image = fixture_image();
    let bytes = snapshot::encode(&image);
    let path = fixture_path("session-v2.awrs");
    if std::env::var_os("REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
    }
    let pinned = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with REGEN_FIXTURES=1 after a \
             deliberate format change — and bump SNAPSHOT_VERSION + write a migration",
            path.display()
        )
    });
    // Decoder compatibility: the checked-in version-2 bytes must keep
    // decoding to exactly this image …
    assert_images_equal(&snapshot::decode(&pinned).unwrap(), &image);
    // … and encoder stability: today's encoder must still produce the
    // version-2 bytes. If this fails, the format changed — that is a
    // version bump plus a migration, never a silent break.
    assert_eq!(
        bytes, pinned,
        "snapshot encoder no longer reproduces the version-2 fixture"
    );
}

#[test]
fn golden_fixture_of_a_real_exploration_restores() {
    // A second fixture captured from a real census exploration (seed
    // 2017, 1 000 rows) by the PR 4 (version 1) encoder — frozen, not
    // regenerable: decoding must succeed forever, and restoring must
    // reproduce the wealth the file itself records.
    let path = fixture_path("census-session-v1.awrs");
    let bytes = std::fs::read(&path).expect("checked-in census fixture");
    assert_eq!(bytes[4], 1, "fixture must stay a version-1 file");
    let image = snapshot::decode(&bytes).unwrap();
    assert_eq!(image.dataset, "census");
    assert_eq!(image.policy, PolicySpec::Hopeful { delta: 5.0 });
    let recorded_wealth = image
        .session
        .machine
        .ledger
        .last()
        .expect("fixture has tests")
        .wealth_after;
    // Restore over a regenerated table (the census generator is
    // deterministic) — the restored session's wealth must equal the
    // wealth frozen in the file, bit for bit.
    let table = Arc::new(CensusGenerator::new(2017).generate(1_000));
    let session: Session<BoxedPolicy> = Session::restore(
        table,
        Some(Arc::new(EvalCache::new())),
        image.session.clone(),
        image.policy.build().unwrap(),
        image.policy_since as usize,
    )
    .unwrap();
    assert_eq!(session.wealth().to_bits(), recorded_wealth.to_bits());
    assert_eq!(session.hypotheses().len(), image.session.hypotheses.len());
}

#[test]
fn corrupt_files_decode_to_corrupt_snapshot_errors() {
    let bytes = snapshot::encode(&fixture_image());
    let is_corrupt = |r: Result<SessionImage, ServeError>| matches!(r, Err(e) if e.code == ErrorCode::CorruptSnapshot);
    assert!(is_corrupt(snapshot::decode(&[])));
    assert!(is_corrupt(snapshot::decode(b"AWR2not-a-snapshot")));
    assert!(is_corrupt(snapshot::decode(&bytes[..bytes.len() - 1])));
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    assert!(is_corrupt(snapshot::decode(&flipped)));
    let mut versioned = bytes;
    versioned[4] = 99;
    assert!(is_corrupt(snapshot::decode(&versioned)));
}
