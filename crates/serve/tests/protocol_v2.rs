//! Protocol v2 negotiation, framing, and codec-identity tests.
//!
//! Three layers are exercised here:
//!
//! 1. **codec identity** — a property test drives randomly generated
//!    command batches (and reply batches) through both encodings and
//!    asserts encode→decode is the identity;
//! 2. **negotiation** — malformed hellos, v1/v2 auto-detection by first
//!    byte, and the JSON→binary in-place upgrade, over real sockets;
//! 3. **framing hostility** — truncated and oversized binary frames
//!    against a live server.

use aware_data::census::CensusGenerator;
use aware_data::predicate::CmpOp;
use aware_data::value::Value;
use aware_serve::frame::{self, FrameRead, MAX_FRAME_BYTES};
use aware_serve::proto::{
    Batch, BatchItem, BatchMode, Command, Encoding, Envelope, FilterSpec, HypothesisReport,
    PolicySpec, Reply, StatsSnapshot, TranscriptFormat, PROTOCOL_VERSION,
};
use aware_serve::service::{Service, ServiceConfig};
use aware_serve::tcp::{Client, TcpServer};
use aware_serve::{wire, ErrorCode, Response, ServeError};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;

// -- random protocol values (seeded LCG, so every case is a fresh but
// -- reproducible structure) ------------------------------------------------

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// A float that survives the JSON path: finite, and never integral
    /// (integral JSON numbers decode as `Value::Int` by design). The
    /// draw is a multiple of 1/64 and the offset is 1/128, so the sum
    /// is always an odd multiple of 1/128 — it cannot round to an
    /// integer.
    fn fractional(&mut self) -> f64 {
        (self.pick(2_000_000) as f64 - 1_000_000.0) / 64.0 + 0.0078125
    }

    /// Ids stay under 2^53 so the JSON number path is exact.
    fn id(&mut self) -> Option<u64> {
        match self.pick(3) {
            0 => None,
            _ => Some(self.next() % (1 << 53)),
        }
    }

    fn string(&mut self) -> String {
        const ALPHABET: [&str; 12] = [
            "a", "B", "7", "_", " ", "\"", "\\", "\n", "é", "😀", "─", "salary",
        ];
        (0..self.pick(12))
            .map(|_| ALPHABET[self.pick(ALPHABET.len())])
            .collect()
    }

    fn value(&mut self) -> Value {
        match self.pick(4) {
            0 => Value::Int(self.next() as i64 - (1 << 30)),
            1 => Value::Float(self.fractional()),
            2 => Value::Bool(self.pick(2) == 0),
            _ => Value::Str(self.string()),
        }
    }

    fn filter(&mut self, depth: usize) -> FilterSpec {
        let branchy = if depth < 3 { 7 } else { 4 };
        match self.pick(branchy) {
            0 => FilterSpec::True,
            1 => FilterSpec::Cmp {
                column: self.string(),
                op: [
                    CmpOp::Eq,
                    CmpOp::Neq,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ][self.pick(6)],
                value: self.value(),
            },
            2 => FilterSpec::Between {
                column: self.string(),
                lo: self.fractional(),
                hi: self.fractional(),
            },
            3 => FilterSpec::In {
                column: self.string(),
                values: (0..self.pick(4)).map(|_| self.value()).collect(),
            },
            4 => FilterSpec::Not(Box::new(self.filter(depth + 1))),
            5 => FilterSpec::And(
                (0..1 + self.pick(3))
                    .map(|_| self.filter(depth + 1))
                    .collect(),
            ),
            _ => FilterSpec::Or(
                (0..1 + self.pick(3))
                    .map(|_| self.filter(depth + 1))
                    .collect(),
            ),
        }
    }

    fn policy(&mut self) -> PolicySpec {
        match self.pick(5) {
            0 => PolicySpec::Fixed {
                gamma: self.fractional(),
            },
            1 => PolicySpec::Farsighted {
                beta: self.fractional(),
            },
            2 => PolicySpec::Hopeful {
                delta: self.fractional(),
            },
            3 => PolicySpec::EpsilonHybrid {
                gamma: self.fractional(),
                delta: self.fractional(),
                epsilon: self.fractional(),
                window: match self.pick(2) {
                    0 => None,
                    _ => Some(self.pick(64)),
                },
            },
            _ => PolicySpec::PsiSupport {
                gamma: self.fractional(),
                psi: self.fractional(),
            },
        }
    }

    fn command(&mut self) -> Command {
        let session = self.next() % (1 << 53);
        match self.pick(7) {
            0 => Command::CreateSession {
                dataset: self.string(),
                alpha: self.fractional(),
                policy: self.policy(),
            },
            1 | 2 => Command::AddVisualization {
                session,
                attribute: self.string(),
                filter: self.filter(0),
            },
            3 => Command::SetPolicy {
                session,
                policy: self.policy(),
            },
            4 => Command::Gauge { session },
            5 => Command::Transcript {
                session,
                format: [TranscriptFormat::Csv, TranscriptFormat::Text][self.pick(2)],
            },
            _ => match self.pick(2) {
                0 => Command::CloseSession { session },
                _ => Command::Stats,
            },
        }
    }

    fn batch(&mut self) -> Envelope {
        Envelope::Batch {
            id: self.id(),
            batch: Batch {
                mode: [BatchMode::Continue, BatchMode::FailFast][self.pick(2)],
                items: (0..self.pick(24))
                    .map(|_| BatchItem {
                        id: self.id(),
                        cmd: self.command(),
                    })
                    .collect(),
            },
        }
    }

    fn response(&mut self) -> Response {
        let session = self.next() % (1 << 53);
        match self.pick(8) {
            0 => Response::SessionCreated {
                session,
                wealth: self.fractional(),
                policy: self.string(),
            },
            1 | 2 => Response::VizAdded {
                session,
                viz: self.next() % (1 << 53),
                wealth: self.fractional(),
                hypothesis: match self.pick(2) {
                    0 => None,
                    _ => Some(HypothesisReport {
                        id: self.next() % (1 << 53),
                        test: self.string(),
                        statistic: self.fractional(),
                        // Stress the exponent-notation JSON path and
                        // binary bit-exactness with a subnormal-tiny
                        // p-value.
                        p_value: self.fractional().abs() * 1e-300,
                        bid: self.fractional(),
                        rejected: self.pick(2) == 0,
                        effect_size: self.fractional(),
                        support_fraction: self.fractional(),
                        wealth_after: self.fractional(),
                    }),
                },
            },
            3 => Response::PolicySet {
                session,
                policy: self.string(),
            },
            4 => Response::GaugeText {
                session,
                text: self.string(),
            },
            5 => Response::TranscriptText {
                session,
                format: [TranscriptFormat::Csv, TranscriptFormat::Text][self.pick(2)],
                text: self.string(),
            },
            6 => Response::SessionClosed {
                session,
                hypotheses: self.next(),
                discoveries: self.next(),
            },
            _ => match self.pick(2) {
                0 => Response::Stats(Box::new(StatsSnapshot {
                    sessions_created: self.next(),
                    commands: self.next(),
                    batches: self.next(),
                    batch_size_hist: [
                        self.next(),
                        self.next(),
                        self.next(),
                        self.next(),
                        self.next(),
                    ],
                    ..Default::default()
                })),
                _ => Response::Error(ServeError {
                    code: ErrorCode::parse(
                        ["bad_request", "unknown_session", "aborted", "overloaded"][self.pick(4)],
                    ),
                    message: self.string(),
                }),
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encode→decode identity for random command batches, both encodings.
    #[test]
    fn random_batches_round_trip_in_both_encodings(seed in 0u64..u64::MAX) {
        let envelope = Lcg(seed).batch();
        // Binary: byte-level identity of the structure.
        let decoded = wire::decode_envelope(&wire::encode_envelope(&envelope));
        prop_assert_eq!(decoded.as_ref(), Ok(&envelope));
        // JSON: one line, same structure back.
        let line = envelope.encode_line();
        let decoded = Envelope::decode_line(&line);
        prop_assert_eq!(decoded.as_ref(), Ok(&envelope), "line: {}", line);
    }

    /// Encode→decode identity for random reply batches, both encodings.
    #[test]
    fn random_replies_round_trip_in_both_encodings(seed in 0u64..u64::MAX) {
        let mut rng = Lcg(seed ^ 0xD1B54A32D192ED03);
        let items = (0..rng.pick(16))
            .map(|_| (rng.id(), rng.response()))
            .collect::<Vec<_>>();
        let reply = Reply::Batch { id: rng.id(), items };
        let decoded = wire::decode_reply(&wire::encode_reply(&reply));
        prop_assert_eq!(decoded.as_ref(), Ok(&reply));
        let line = reply.encode_line();
        let decoded = Reply::decode_line(&line);
        prop_assert_eq!(decoded.as_ref(), Ok(&reply), "line: {}", line);
    }

    /// A frame survives transport byte-for-byte around any payload.
    #[test]
    fn frames_carry_arbitrary_payloads(seed in 0u64..u64::MAX) {
        let mut rng = Lcg(seed);
        let payload: Vec<u8> = (0..rng.pick(4096)).map(|_| rng.next() as u8).collect();
        let mut framed = Vec::new();
        frame::write_frame(&mut framed, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(framed);
        match frame::read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap() {
            FrameRead::Frame(read) => prop_assert_eq!(read, payload),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }
}

// -- live-socket negotiation ------------------------------------------------

fn served() -> (Service, TcpServer) {
    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    service
        .handle()
        .register_table("census", CensusGenerator::new(23).generate(1_500));
    let server = TcpServer::bind("127.0.0.1:0", service.handle()).unwrap();
    (service, server)
}

#[test]
fn malformed_hellos_are_rejected_without_killing_the_connection() {
    let (_service, server) = served();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);

    // Wrong version.
    writer
        .write_all(b"{\"id\":1,\"cmd\":\"hello\",\"version\":99,\"encoding\":\"json\"}\n")
        .unwrap();
    // Unknown encoding.
    writer
        .write_all(b"{\"id\":2,\"cmd\":\"hello\",\"version\":3,\"encoding\":\"morse\"}\n")
        .unwrap();
    // Missing version entirely.
    writer.write_all(b"{\"cmd\":\"hello\"}\n").unwrap();
    // The connection must still answer plain v1 afterwards.
    writer.write_all(b"{\"id\":3,\"cmd\":\"stats\"}\n").unwrap();
    writer.flush().unwrap();

    let mut line = String::new();
    for expected_id in [Some(1), None, None] {
        line.clear();
        reader.read_line(&mut line).unwrap();
        let (r, id) = Response::decode_line(&line).unwrap();
        match r {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::InvalidArgument, "{line}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(id, expected_id, "{line}");
    }
    line.clear();
    reader.read_line(&mut line).unwrap();
    let (r, id) = Response::decode_line(&line).unwrap();
    assert!(matches!(r, Response::Stats(_)), "{r:?}");
    assert_eq!(id, Some(3));
}

#[test]
fn first_byte_separates_the_surfaces() {
    let (_service, server) = served();
    // '{' → NDJSON v1, no handshake needed.
    let mut v1 = Client::connect(server.local_addr()).unwrap();
    assert!(matches!(
        v1.call(&Command::Stats).unwrap(),
        Response::Stats(_)
    ));
    // 'A' (frame magic) → binary v2, hello-first.
    let mut v2 = Client::connect_with(server.local_addr(), Encoding::Binary).unwrap();
    assert_eq!(v2.encoding(), Encoding::Binary);
    match v2.call(&Command::Stats).unwrap() {
        Response::Stats(s) => {
            assert!(s.binary_frames >= 1, "{s:?}");
            assert!(s.ndjson_requests >= 1, "{s:?}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn json_hello_upgrades_the_connection_to_binary_in_place() {
    let (_service, server) = served();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Starts as JSON…
    assert!(matches!(
        client.call(&Command::Stats).unwrap(),
        Response::Stats(_)
    ));
    // …upgrades mid-connection…
    client.hello(Encoding::Binary).unwrap();
    assert_eq!(client.encoding(), Encoding::Binary);
    // …and keeps serving the same session space over frames.
    let responses = client
        .call_batch(
            &[
                Command::CreateSession {
                    dataset: "census".into(),
                    alpha: 0.05,
                    policy: PolicySpec::Fixed { gamma: 10.0 },
                },
                Command::Stats,
            ],
            BatchMode::Continue,
        )
        .unwrap();
    assert!(matches!(responses[0], Response::SessionCreated { .. }));
    assert!(matches!(responses[1], Response::Stats(_)));
}

#[test]
fn json_batches_execute_in_order_with_item_ids() {
    let (_service, server) = served();
    let mut client = Client::connect_with(server.local_addr(), Encoding::Json).unwrap();
    let sid = match client
        .call(&Command::CreateSession {
            dataset: "census".into(),
            alpha: 0.05,
            policy: PolicySpec::Fixed { gamma: 10.0 },
        })
        .unwrap()
    {
        Response::SessionCreated { session, .. } => session,
        other => panic!("{other:?}"),
    };
    let responses = client
        .call_batch(
            &[
                Command::AddVisualization {
                    session: sid,
                    attribute: "education".into(),
                    filter: FilterSpec::Cmp {
                        column: "salary_over_50k".into(),
                        op: CmpOp::Eq,
                        value: Value::Bool(true),
                    },
                },
                Command::Gauge { session: sid },
                Command::Transcript {
                    session: sid,
                    format: TranscriptFormat::Csv,
                },
            ],
            BatchMode::Continue,
        )
        .unwrap();
    assert!(matches!(
        responses[0],
        Response::VizAdded {
            hypothesis: Some(_),
            ..
        }
    ));
    assert!(matches!(responses[1], Response::GaugeText { .. }));
    assert!(matches!(responses[2], Response::TranscriptText { .. }));
}

#[test]
fn cold_binary_connection_must_greet_first() {
    let (_service, server) = served();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    // A well-formed frame that is not a hello.
    let payload = wire::encode_envelope(&Envelope::Single {
        id: Some(1),
        cmd: Command::Stats,
    });
    frame::write_frame(&mut writer, &payload).unwrap();
    writer.flush().unwrap();
    match frame::read_frame(&mut reader, MAX_FRAME_BYTES).unwrap() {
        FrameRead::Frame(bytes) => match wire::decode_reply(&bytes).unwrap() {
            Reply::Single {
                response: Response::Error(e),
                ..
            } => assert!(e.message.contains("hello"), "{e}"),
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
    // The server hangs up after the protocol violation.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
}

#[test]
fn truncated_frames_close_the_connection_but_not_the_server() {
    let (_service, server) = served();
    {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        // A frame header promising 100 bytes, followed by only 3.
        writer.write_all(b"AWR2\x02").unwrap();
        writer.write_all(&100u32.to_be_bytes()).unwrap();
        writer.write_all(b"abc").unwrap();
        writer.flush().unwrap();
        drop(writer);
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        // The server answers a corrupt-frame error (or just closes —
        // both end with EOF on our side, never a hang).
        let mut reader = BufReader::new(stream);
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        if !rest.is_empty() {
            let mut cursor = std::io::Cursor::new(rest);
            match frame::read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap() {
                FrameRead::Frame(bytes) => match wire::decode_reply(&bytes).unwrap() {
                    Reply::Single {
                        response: Response::Error(e),
                        ..
                    } => assert_eq!(e.code, ErrorCode::BadRequest),
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            }
        }
    }
    // A fresh connection still works.
    let mut client = Client::connect_with(server.local_addr(), Encoding::Binary).unwrap();
    assert!(client.call(&Command::Stats).unwrap().is_ok());
}

#[test]
fn oversized_frames_are_rejected_and_the_stream_resynchronizes() {
    let (_service, server) = served();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);

    // Greet properly first.
    let hello = wire::encode_envelope(&Envelope::Hello {
        id: Some(1),
        version: PROTOCOL_VERSION,
        encoding: Encoding::Binary,
        push: false,
    });
    frame::write_frame(&mut writer, &hello).unwrap();
    writer.flush().unwrap();
    match frame::read_frame(&mut reader, MAX_FRAME_BYTES).unwrap() {
        FrameRead::Frame(bytes) => {
            assert!(matches!(
                wire::decode_reply(&bytes).unwrap(),
                Reply::HelloAck { .. }
            ));
        }
        other => panic!("{other:?}"),
    }

    // A frame one byte over the cap: header + (cap + 1) junk bytes.
    let oversize = MAX_FRAME_BYTES + 1;
    writer.write_all(b"AWR2\x02").unwrap();
    writer.write_all(&(oversize as u32).to_be_bytes()).unwrap();
    let chunk = vec![0u8; 64 * 1024];
    let mut sent = 0;
    while sent < oversize {
        let n = chunk.len().min(oversize - sent);
        writer.write_all(&chunk[..n]).unwrap();
        sent += n;
    }
    // Then a valid frame on the same connection.
    let stats = wire::encode_envelope(&Envelope::Single {
        id: Some(2),
        cmd: Command::Stats,
    });
    frame::write_frame(&mut writer, &stats).unwrap();
    writer.flush().unwrap();

    match frame::read_frame(&mut reader, MAX_FRAME_BYTES).unwrap() {
        FrameRead::Frame(bytes) => match wire::decode_reply(&bytes).unwrap() {
            Reply::Single {
                response: Response::Error(e),
                ..
            } => {
                assert_eq!(e.code, ErrorCode::BadRequest);
                assert!(e.message.contains("exceeds"), "{e}");
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
    // The declared length let the server skip the junk exactly: the
    // follow-up frame answers normally.
    match frame::read_frame(&mut reader, MAX_FRAME_BYTES).unwrap() {
        FrameRead::Frame(bytes) => match wire::decode_reply(&bytes).unwrap() {
            Reply::Single {
                id: Some(2),
                response: Response::Stats(_),
            } => {}
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn binary_surface_refuses_a_json_downgrade() {
    let (_service, server) = served();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let hello = wire::encode_envelope(&Envelope::Hello {
        id: Some(1),
        version: PROTOCOL_VERSION,
        encoding: Encoding::Json,
        push: false,
    });
    frame::write_frame(&mut writer, &hello).unwrap();
    writer.flush().unwrap();
    match frame::read_frame(&mut reader, MAX_FRAME_BYTES).unwrap() {
        FrameRead::Frame(bytes) => match wire::decode_reply(&bytes).unwrap() {
            Reply::Single {
                response: Response::Error(e),
                ..
            } => assert_eq!(e.code, ErrorCode::InvalidArgument),
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}
