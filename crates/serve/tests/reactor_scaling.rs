//! Connection-scaling conformance for the reactor front end, against
//! the real `serve` binary.
//!
//! The sweep test holds tiers of 1K/5K/10K mostly-idle connections
//! (connected, never written — parked in the decoder's `Detect` state)
//! against a `--reactor` server while 64 active sessions spread over 8
//! binary-framed clients hammer gauge batches. The bar is the ISSUE 9
//! acceptance criterion: active-session throughput at every tier within
//! 5% of the no-idle-load baseline, and RSS growth across the whole
//! sweep bounded by per-connection buffer state (O(buffers), not
//! O(threads) — a thread-per-connection front end would burn a stack
//! per socket).
//!
//! The identity test replays one deterministic exploration transcript
//! per protocol surface (v1 NDJSON, v2 JSON lines, v2 binary frames,
//! and the JSON→binary hello upgrade) against two freshly-spawned
//! binaries — one `--reactor`, one thread-per-connection — and asserts
//! the reply streams are byte-identical. The in-process variant lives
//! in `crates/reactor/tests/framing_props.rs` as a property test; this
//! one goes through `main()`, flag parsing, and real process lifecycle.
//!
//! Everything here is Linux-only (the reactor is epoll-backed) and
//! serialized on one mutex: the sweep saturates the box's only
//! guaranteed core and the fd table, so concurrent tests would bill
//! their noise to each other.

#![cfg(target_os = "linux")]

use aware_data::predicate::CmpOp;
use aware_data::value::Value;
use aware_serve::proto::{
    Batch, BatchItem, BatchMode, Command, Encoding, Envelope, FilterSpec, PolicySpec, Response,
    SessionId, PROTOCOL_VERSION,
};
use aware_serve::tcp::Client;
use aware_serve::{frame, wire};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::process::{Child, Command as Proc, Stdio};
use std::sync::Mutex;
use std::time::Instant;

/// Serializes the tests: both spawn real processes and the sweep
/// monopolizes the fd table and the CPU.
static SERIAL: Mutex<()> = Mutex::new(());

/// Kills the spawned server even when an assertion panics.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_serve(reactor: bool) -> (ServerGuard, SocketAddr) {
    let mut args = vec![
        "--addr",
        "127.0.0.1:0",
        "--rows",
        "1500",
        "--workers",
        "2",
        "--seed",
        "7",
    ];
    if reactor {
        args.push("--reactor");
    }
    let mut child = Proc::new(env!("CARGO_BIN_EXE_serve"))
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn the serve binary");
    let stderr = child.stderr.take().expect("piped stderr");
    let guard = ServerGuard(child);
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("read serve stderr");
        if let Some(rest) = line.strip_prefix("aware-serve listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .parse()
                .expect("parse announced address");
        }
    };
    // Keep draining stderr so the child can never block on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (guard, addr)
}

/// The spawned server's resident set, in KiB, from `/proc/PID/status`.
fn rss_kib(pid: u32) -> u64 {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).expect("read proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|l| l.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("VmRSS line")
}

fn create_session(client: &mut Client) -> SessionId {
    match client
        .call(&Command::CreateSession {
            dataset: "census".into(),
            alpha: 0.05,
            policy: PolicySpec::Fixed { gamma: 100.0 },
        })
        .unwrap()
    {
        Response::SessionCreated { session, .. } => session,
        other => panic!("create failed: {other:?}"),
    }
}

const ACTIVE_CLIENTS: usize = 8;
const SESSIONS_PER_CLIENT: usize = 8;
const GAUGES_PER_SESSION: usize = 8;

/// One measured round: every client submits one pipelined batch of
/// gauges across its sessions. Returns commands issued.
fn run_round(clients: &mut [(Client, Vec<SessionId>)]) -> usize {
    let mut ops = 0;
    for (client, sids) in clients.iter_mut() {
        let cmds: Vec<Command> = sids
            .iter()
            .flat_map(|&sid| {
                std::iter::repeat_with(move || Command::Gauge { session: sid })
                    .take(GAUGES_PER_SESSION)
            })
            .collect();
        ops += cmds.len();
        let replies = client.call_batch(&cmds, BatchMode::Continue).unwrap();
        assert!(replies.iter().all(Response::is_ok), "gauge batch failed");
    }
    ops
}

/// Best-of-N throughput in commands/sec. Best-of, not median: the
/// question is capacity ("can the active sessions still go this
/// fast?"), and on a shared single-core runner the max over samples is
/// the estimator least polluted by scheduler noise.
fn best_throughput(clients: &mut [(Client, Vec<SessionId>)]) -> f64 {
    const SAMPLES: usize = 7;
    const ROUNDS: usize = 8;
    // Warm-up: connections hot, session caches primed.
    for _ in 0..2 {
        run_round(clients);
    }
    let mut best = 0.0f64;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let mut ops = 0;
        for _ in 0..ROUNDS {
            ops += run_round(clients);
        }
        best = best.max(ops as f64 / start.elapsed().as_secs_f64());
    }
    best
}

/// Polls the server's `reactor_connections` gauge until it reaches
/// `expect`: connect() returns on SYN-ACK (the listen backlog), before
/// the event loop has accepted the socket, so a tier must settle
/// before its throughput means anything.
fn await_connection_gauge(client: &mut Client, expect: u64) {
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let got = match client.call(&Command::Stats).unwrap() {
            Response::Stats(s) => s.reactor_connections,
            other => panic!("stats failed: {other:?}"),
        };
        if got == expect {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "connection gauge stuck at {got} (want {expect})"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

#[test]
fn idle_connection_tiers_leave_active_throughput_intact() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The throughput bar: 95% is the acceptance criterion, enforced on
    // the optimized build CI runs this suite with (and on demand via
    // AWARE_SCALING_STRICT=1). The debug build every `cargo test -q`
    // sweep runs is 20-30× slower per command, so scheduler noise on a
    // shared single-core runner swamps a 5% margin; there the bar only
    // rules out catastrophic regressions (idle connections costing
    // per-connection CPU would show far below 50%).
    let strict =
        !cfg!(debug_assertions) || std::env::var("AWARE_SCALING_STRICT").is_ok_and(|v| v == "1");
    let bar = if strict { 0.95 } else { 0.50 };
    // The test process holds every socket: tiers + active clients +
    // slack for the harness's own fds.
    let limit = aware_reactor::sys::raise_nofile_limit(65_536);
    let (guard, addr) = spawn_serve(true);
    let pid = guard.0.id();

    let mut clients: Vec<(Client, Vec<SessionId>)> = (0..ACTIVE_CLIENTS)
        .map(|_| {
            let mut client = Client::connect_with(addr, Encoding::Binary).unwrap();
            let sids = (0..SESSIONS_PER_CLIENT)
                .map(|_| {
                    let sid = create_session(&mut client);
                    let reply = client
                        .call(&Command::AddVisualization {
                            session: sid,
                            attribute: "education".into(),
                            filter: FilterSpec::Cmp {
                                column: "salary_over_50k".into(),
                                op: CmpOp::Eq,
                                value: Value::Bool(true),
                            },
                        })
                        .unwrap();
                    assert!(reply.is_ok(), "{reply:?}");
                    sid
                })
                .collect();
            (client, sids)
        })
        .collect();

    let baseline = best_throughput(&mut clients);
    let rss_baseline = rss_kib(pid);
    assert!(baseline > 0.0);

    let mut idle: Vec<TcpStream> = Vec::new();
    for target in [1_000usize, 5_000, 10_000] {
        // Adapt to the box: never run the fd table dry. The CI image
        // grants 20K fds, so the full 10K tier runs there.
        let target = target.min(limit.saturating_sub(256) as usize);
        while idle.len() < target {
            idle.push(TcpStream::connect(addr).unwrap_or_else(|e| {
                panic!("idle connect #{} refused: {e}", idle.len());
            }));
        }
        // Settle: every idle socket accepted and registered before the
        // tier is measured, so the samples price carrying the
        // connections, not racing the accept loop.
        await_connection_gauge(&mut clients[0].0, (idle.len() + ACTIVE_CLIENTS) as u64);
        // Throughput under load, retried: a tight bar on a shared
        // runner deserves more than one roll of the scheduler dice,
        // and the claim under test is "the tier CAN sustain the bar".
        let mut tier = 0.0f64;
        for attempt in 0..5 {
            if attempt > 0 {
                std::thread::sleep(std::time::Duration::from_millis(150));
            }
            tier = tier.max(best_throughput(&mut clients));
            if tier >= bar * baseline {
                break;
            }
        }
        assert!(
            tier >= bar * baseline,
            "{} idle connections dragged active throughput to {:.0}/s \
             ({:.1}% of the {:.0}/s baseline; bar is {:.0}%)",
            idle.len(),
            tier,
            100.0 * tier / baseline,
            baseline,
            100.0 * bar,
        );
    }

    // RSS growth across the sweep is per-connection buffer state, not
    // per-connection threads: idle sockets that never wrote a byte hold
    // empty decode buffers, so even 16 KiB per connection is generous.
    // (A thread per connection would page in a stack each.)
    let growth_kib = rss_kib(pid).saturating_sub(rss_baseline);
    assert!(
        growth_kib <= 16 * idle.len() as u64,
        "RSS grew {growth_kib} KiB over {} idle connections \
         (> 16 KiB per connection — that is not O(buffers))",
        idle.len(),
    );

    // A connection that idled through the entire sweep is still a
    // first-class citizen: its first bytes auto-detect and serve v1.
    let mut survivor = idle.pop().unwrap();
    survivor.write_all(b"{\"cmd\":\"stats\"}\n").unwrap();
    survivor.shutdown(Shutdown::Write).unwrap();
    let mut reply = String::new();
    survivor.read_to_string(&mut reply).unwrap();
    assert!(
        reply.contains("sessions_live"),
        "idle survivor got a broken stats reply: {reply:?}"
    );
}

/// One deterministic exploration transcript per surface. Mirrors the
/// shape of the framing_props generator but with fixed commands, so a
/// failure here names the exact envelope that diverged.
fn transcript(surface: usize, session: SessionId) -> Vec<u8> {
    let mut out = Vec::new();
    let hello = |encoding: Encoding| Envelope::Hello {
        id: Some(0),
        version: PROTOCOL_VERSION,
        encoding,
        // Push is the one deliberate divergence between the fronts
        // (the reactor grants it, the blocking front declines), so
        // identity transcripts must not request it.
        push: false,
    };
    let binary = match surface {
        0 => false, // v1: no hello at all
        1 => {
            out.extend_from_slice(hello(Encoding::Json).encode_line().as_bytes());
            out.push(b'\n');
            false
        }
        2 => {
            let mut payload = Vec::new();
            frame::write_frame(
                &mut payload,
                &wire::encode_envelope(&hello(Encoding::Binary)),
            )
            .unwrap();
            out.extend_from_slice(&payload);
            true
        }
        _ => {
            // JSON hello upgrading the stream to binary frames.
            out.extend_from_slice(hello(Encoding::Binary).encode_line().as_bytes());
            out.push(b'\n');
            true
        }
    };
    let mut push_envelope = |envelope: &Envelope| {
        if binary {
            let mut payload = Vec::new();
            frame::write_frame(&mut payload, &wire::encode_envelope(envelope)).unwrap();
            out.extend_from_slice(&payload);
        } else {
            out.extend_from_slice(envelope.encode_line().as_bytes());
            out.push(b'\n');
        }
    };
    let gauge = Command::Gauge { session };
    push_envelope(&Envelope::Single {
        id: Some(1),
        cmd: Command::CreateSession {
            dataset: "census".into(),
            alpha: 0.05,
            policy: PolicySpec::Fixed { gamma: 10.0 },
        },
    });
    push_envelope(&Envelope::Single {
        id: Some(2),
        cmd: Command::AddVisualization {
            session,
            attribute: "education".into(),
            filter: FilterSpec::Cmp {
                column: "salary_over_50k".into(),
                op: CmpOp::Eq,
                value: Value::Bool(true),
            },
        },
    });
    push_envelope(&Envelope::Single {
        id: Some(3),
        cmd: gauge.clone(),
    });
    push_envelope(&Envelope::Batch {
        id: Some(4),
        batch: Batch {
            mode: BatchMode::Continue,
            items: vec![
                BatchItem {
                    id: Some(400),
                    cmd: gauge.clone(),
                },
                BatchItem {
                    id: Some(401),
                    cmd: Command::SetPolicy {
                        session,
                        policy: PolicySpec::Fixed { gamma: 11.0 },
                    },
                },
                BatchItem {
                    id: Some(402),
                    cmd: gauge.clone(),
                },
            ],
        },
    });
    // An error reply is part of the identity contract too.
    push_envelope(&Envelope::Single {
        id: Some(5),
        cmd: Command::Gauge { session: 1_000_000 },
    });
    if !binary {
        out.extend_from_slice(b"{\"cmd\":\"no_such_command\"}\n");
    }
    out
}

fn replay(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.set_nodelay(true).unwrap();
    sock.write_all(bytes).expect("write transcript");
    sock.shutdown(Shutdown::Write).expect("half-close");
    let mut replies = Vec::new();
    sock.read_to_end(&mut replies).expect("read replies");
    replies
}

#[test]
fn real_binary_replies_are_byte_identical_across_front_ends() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (_thread_guard, thread_addr) = spawn_serve(false);
    let (_reactor_guard, reactor_addr) = spawn_serve(true);

    // Both servers were spawned with the same seed, and both replay the
    // same transcripts in the same order, so their session-id counters
    // stay in lockstep: transcript k creates session k+1 on each.
    for surface in 0..4 {
        let bytes = transcript(surface, surface as SessionId + 1);
        let from_thread = replay(thread_addr, &bytes);
        let from_reactor = replay(reactor_addr, &bytes);
        assert!(
            !from_thread.is_empty(),
            "surface {surface}: empty reply stream"
        );
        assert_eq!(
            from_thread, from_reactor,
            "surface {surface}: reply streams diverged between front ends"
        );
    }
}
