//! The determinism-under-concurrency smoke test.
//!
//! The α-investing guarantee is sequential *per session*: hypothesis
//! j's bid is a function of the wealth left by hypotheses 1..j−1, so a
//! server may only scale across sessions, never reorder within one.
//! This test drives ≥ 64 sessions from ≥ 8 client threads (≥ 10 000
//! commands total, interleaved across sessions, workers, registry
//! shards, and one shared table) and then asserts that every session's
//! final gauge and transcripts are **byte-identical** to a
//! single-threaded replay of that session's exact command stream on a
//! fresh single-worker service.

use aware_data::census::{CensusGenerator, EDUCATION, MARITAL, RACE, REGION, WAVE};
use aware_data::predicate::CmpOp;
use aware_data::table::Table;
use aware_data::value::Value;
use aware_serve::proto::{Command, FilterSpec, PolicySpec, SessionId, TranscriptFormat};
use aware_serve::service::{Service, ServiceConfig};
use aware_serve::{Response, ServiceHandle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SESSIONS: usize = 72;
const THREADS: usize = 12;
const STEPS_PER_SESSION: usize = 150;
const TABLE_ROWS: usize = 3_000;
const TABLE_SEED: u64 = 4217;

/// Tiny deterministic generator for command scripts (independent of the
/// workspace RNG so the script is fixed forever).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn eq(column: &str, value: Value) -> FilterSpec {
    FilterSpec::Cmp {
        column: column.into(),
        op: CmpOp::Eq,
        value,
    }
}

/// The deterministic per-session exploration script. `session`
/// placeholder 0 — the driver rewrites ids after `create_session`.
fn session_script(index: usize) -> Vec<Command> {
    let mut rng = Lcg(0x5EED ^ (index as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut script = Vec::with_capacity(STEPS_PER_SESSION);
    for step in 0..STEPS_PER_SESSION {
        let cmd = match step % 15 {
            // A read command every few steps keeps the recency stamps and
            // render paths in the concurrent mix.
            4 => Command::Gauge { session: 0 },
            9 => Command::Transcript {
                session: 0,
                format: TranscriptFormat::Csv,
            },
            // An occasional policy swap (wealth/ledger carry over).
            12 => Command::SetPolicy {
                session: 0,
                policy: match rng.pick(3) {
                    0 => PolicySpec::Fixed {
                        gamma: 5.0 + rng.pick(20) as f64,
                    },
                    1 => PolicySpec::Hopeful {
                        delta: 2.0 + rng.pick(10) as f64,
                    },
                    _ => PolicySpec::PsiSupport {
                        gamma: 10.0,
                        psi: 0.5,
                    },
                },
            },
            _ => {
                let attribute = [
                    "sex",
                    "education",
                    "marital_status",
                    "occupation",
                    "race",
                    "native_region",
                    "age",
                    "hours_per_week",
                    "salary_over_50k",
                ][rng.pick(9)];
                let filter = match rng.pick(8) {
                    0 => FilterSpec::True,
                    1 => eq("salary_over_50k", Value::Bool(true)),
                    2 => eq("race", Value::Str(RACE[rng.pick(RACE.len())].into())),
                    3 => eq(
                        "education",
                        Value::Str(EDUCATION[rng.pick(EDUCATION.len())].into()),
                    ),
                    4 => eq("survey_wave", Value::Str(WAVE[rng.pick(WAVE.len())].into())),
                    5 => {
                        let lo = 18.0 + rng.pick(40) as f64;
                        FilterSpec::Between {
                            column: "age".into(),
                            lo,
                            hi: lo + 12.0,
                        }
                    }
                    6 => FilterSpec::Not(Box::new(eq(
                        "marital_status",
                        Value::Str(MARITAL[rng.pick(MARITAL.len())].into()),
                    ))),
                    _ => FilterSpec::And(vec![
                        eq("sex", Value::Str(["Male", "Female"][rng.pick(2)].into())),
                        eq(
                            "native_region",
                            Value::Str(REGION[rng.pick(REGION.len())].into()),
                        ),
                    ]),
                };
                Command::AddVisualization {
                    session: 0,
                    attribute: attribute.into(),
                    filter,
                }
            }
        };
        script.push(cmd);
    }
    script
}

fn with_session_id(cmd: &Command, sid: SessionId) -> Command {
    let mut cmd = cmd.clone();
    match &mut cmd {
        Command::AddVisualization { session, .. }
        | Command::SetPolicy { session, .. }
        | Command::Gauge { session }
        | Command::Transcript { session, .. }
        | Command::CloseSession { session } => *session = sid,
        // This suite's random scripts only produce the session-stream
        // commands above (plus creates handled by the caller).
        _ => {}
    }
    cmd
}

/// Final observable state of one session: gauge + both transcripts.
#[derive(PartialEq)]
struct Fingerprint {
    gauge: String,
    csv: String,
    text: String,
}

fn shared_table() -> Arc<Table> {
    Arc::new(CensusGenerator::new(TABLE_SEED).generate(TABLE_ROWS))
}

fn create_session(handle: &ServiceHandle) -> SessionId {
    match handle.call(Command::CreateSession {
        dataset: "census".into(),
        alpha: 0.05,
        policy: PolicySpec::Fixed { gamma: 10.0 },
    }) {
        Response::SessionCreated { session, .. } => session,
        other => panic!("create_session failed: {other:?}"),
    }
}

/// Runs `script` against an existing session, returning its fingerprint.
/// Command errors (wealth exhaustion under an aggressive policy draw)
/// are part of the deterministic record, not failures.
fn drive(
    handle: &ServiceHandle,
    sid: SessionId,
    script: &[Command],
    commands: &AtomicU64,
) -> Fingerprint {
    for cmd in script {
        let response = handle.call(with_session_id(cmd, sid));
        commands.fetch_add(1, Ordering::Relaxed);
        if let Response::Error(e) = &response {
            assert!(
                matches!(e.code, aware_serve::ErrorCode::WealthExhausted),
                "unexpected error for {cmd:?}: {e}"
            );
        }
    }
    let gauge = match handle.call(Command::Gauge { session: sid }) {
        Response::GaugeText { text, .. } => text,
        other => panic!("{other:?}"),
    };
    let csv = match handle.call(Command::Transcript {
        session: sid,
        format: TranscriptFormat::Csv,
    }) {
        Response::TranscriptText { text, .. } => text,
        other => panic!("{other:?}"),
    };
    let text = match handle.call(Command::Transcript {
        session: sid,
        format: TranscriptFormat::Text,
    }) {
        Response::TranscriptText { text, .. } => text,
        other => panic!("{other:?}"),
    };
    commands.fetch_add(3, Ordering::Relaxed);
    Fingerprint { gauge, csv, text }
}

#[test]
fn concurrent_sessions_replay_byte_identically() {
    let table = shared_table();

    // --- Concurrent run: 12 threads × 6 sessions each, command-major
    // interleaving within each thread so its sessions' commands mix on
    // the worker queues.
    let service = Service::start(ServiceConfig {
        workers: 8,
        shards: 16,
        ..Default::default()
    });
    let handle = service.handle();
    handle.register_shared("census", table.clone());
    let commands = Arc::new(AtomicU64::new(0));

    let mut fingerprints: Vec<Option<Fingerprint>> = (0..SESSIONS).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut chunks: Vec<&mut [Option<Fingerprint>]> = Vec::new();
        let per_thread = SESSIONS / THREADS;
        let mut rest = &mut fingerprints[..];
        for _ in 0..THREADS {
            let (head, tail) = rest.split_at_mut(per_thread);
            chunks.push(head);
            rest = tail;
        }
        for (t, chunk) in chunks.into_iter().enumerate() {
            let handle = handle.clone();
            let commands = commands.clone();
            scope.spawn(move || {
                let base = t * per_thread;
                let scripts: Vec<Vec<Command>> =
                    (0..per_thread).map(|i| session_script(base + i)).collect();
                let sids: Vec<SessionId> =
                    (0..per_thread).map(|_| create_session(&handle)).collect();
                commands.fetch_add(per_thread as u64, Ordering::Relaxed);
                // Command-major: step k of every owned session before
                // step k+1 of any — maximal cross-session interleaving.
                for step in 0..STEPS_PER_SESSION {
                    for (script, sid) in scripts.iter().zip(&sids) {
                        let response = handle.call(with_session_id(&script[step], *sid));
                        commands.fetch_add(1, Ordering::Relaxed);
                        if let Response::Error(e) = &response {
                            assert!(
                                matches!(e.code, aware_serve::ErrorCode::WealthExhausted),
                                "unexpected error: {e}"
                            );
                        }
                    }
                }
                for (i, sid) in sids.iter().enumerate() {
                    let gauge = match handle.call(Command::Gauge { session: *sid }) {
                        Response::GaugeText { text, .. } => text,
                        other => panic!("{other:?}"),
                    };
                    let csv = match handle.call(Command::Transcript {
                        session: *sid,
                        format: TranscriptFormat::Csv,
                    }) {
                        Response::TranscriptText { text, .. } => text,
                        other => panic!("{other:?}"),
                    };
                    let text = match handle.call(Command::Transcript {
                        session: *sid,
                        format: TranscriptFormat::Text,
                    }) {
                        Response::TranscriptText { text, .. } => text,
                        other => panic!("{other:?}"),
                    };
                    commands.fetch_add(3, Ordering::Relaxed);
                    chunk[i] = Some(Fingerprint { gauge, csv, text });
                }
            });
        }
    });
    let total_commands = commands.load(Ordering::Relaxed);
    assert!(
        total_commands >= 10_000,
        "acceptance floor: drove only {total_commands} commands"
    );
    match handle.call(Command::Stats) {
        Response::Stats(s) => {
            assert_eq!(s.sessions_created as usize, SESSIONS);
            assert!(s.hypotheses_tested > 0);
            assert!(s.discoveries > 0, "planted dependencies must surface");
            // 72 sessions over one census share one evaluation cache:
            // the overlapping filter draws must have produced warm hits,
            // and the replay below then proves warm results are
            // byte-identical to a cold single-threaded run.
            assert!(s.cache_hits > 0, "shared-cache run reported no hits: {s:?}");
        }
        other => panic!("{other:?}"),
    }
    drop(handle);
    service.shutdown();

    // --- Sequential replay: one worker, one session at a time, same
    // table bytes, same scripts.
    let replay_service = Service::start(ServiceConfig {
        workers: 1,
        shards: 1,
        ..Default::default()
    });
    let replay = replay_service.handle();
    replay.register_shared("census", table);
    let replay_commands = AtomicU64::new(0);
    for (index, concurrent) in fingerprints.iter().enumerate() {
        let script = session_script(index);
        let sid = create_session(&replay);
        let sequential = drive(&replay, sid, &script, &replay_commands);
        let concurrent = concurrent
            .as_ref()
            .expect("driver thread filled every slot");
        assert_eq!(
            concurrent.gauge, sequential.gauge,
            "session {index}: gauge diverged under concurrency"
        );
        assert_eq!(
            concurrent.csv, sequential.csv,
            "session {index}: CSV transcript diverged under concurrency"
        );
        assert_eq!(
            concurrent.text, sequential.text,
            "session {index}: text transcript diverged under concurrency"
        );
    }
}

/// The v2 counterpart: the same byte-identity guarantee must hold when
/// commands arrive through `call_batch` in *mixed-session* batches —
/// same-session items execute as one pinned unit, cross-session items
/// fan out, and every session's final state must equal a v1
/// single-threaded replay of its command stream.
#[test]
fn batched_mixed_session_replay_matches_v1() {
    const BATCH_SESSIONS: usize = 24;
    const BATCH_THREADS: usize = 8;
    const PER_THREAD: usize = BATCH_SESSIONS / BATCH_THREADS;
    /// Steps of every owned session per batch: each submitted batch
    /// interleaves CHUNK_STEPS commands from each of the thread's
    /// sessions, step-major, so one wire message mixes sessions.
    const CHUNK_STEPS: usize = 5;

    let table = shared_table();
    let service = Service::start(ServiceConfig {
        workers: 4,
        shards: 8,
        ..Default::default()
    });
    let handle = service.handle();
    handle.register_shared("census", table.clone());

    let mut fingerprints: Vec<Option<Fingerprint>> = (0..BATCH_SESSIONS).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (t, chunk) in fingerprints.chunks_mut(PER_THREAD).enumerate() {
            let handle = handle.clone();
            scope.spawn(move || {
                let base = t * PER_THREAD;
                let scripts: Vec<Vec<Command>> =
                    (0..PER_THREAD).map(|i| session_script(base + i)).collect();
                // All of this thread's sessions open in one batch.
                let created = handle.call_batch(vec![
                    Command::CreateSession {
                        dataset: "census".into(),
                        alpha: 0.05,
                        policy: PolicySpec::Fixed { gamma: 10.0 },
                    };
                    PER_THREAD
                ]);
                let sids: Vec<SessionId> = created
                    .iter()
                    .map(|r| match r {
                        Response::SessionCreated { session, .. } => *session,
                        other => panic!("batched create failed: {other:?}"),
                    })
                    .collect();
                // Step-major mixed batches across the owned sessions.
                for start in (0..STEPS_PER_SESSION).step_by(CHUNK_STEPS) {
                    let steps =
                        (start..STEPS_PER_SESSION.min(start + CHUNK_STEPS)).flat_map(|step| {
                            scripts
                                .iter()
                                .zip(&sids)
                                .map(move |(script, sid)| with_session_id(&script[step], *sid))
                        });
                    for response in handle.call_batch(steps.collect()) {
                        if let Response::Error(e) = &response {
                            assert!(
                                matches!(e.code, aware_serve::ErrorCode::WealthExhausted),
                                "unexpected error in batch: {e}"
                            );
                        }
                    }
                }
                // Fingerprints read back through a batch as well.
                for (i, sid) in sids.iter().enumerate() {
                    let mut reads = handle.call_batch(vec![
                        Command::Gauge { session: *sid },
                        Command::Transcript {
                            session: *sid,
                            format: TranscriptFormat::Csv,
                        },
                        Command::Transcript {
                            session: *sid,
                            format: TranscriptFormat::Text,
                        },
                    ]);
                    let text = match reads.pop() {
                        Some(Response::TranscriptText { text, .. }) => text,
                        other => panic!("{other:?}"),
                    };
                    let csv = match reads.pop() {
                        Some(Response::TranscriptText { text, .. }) => text,
                        other => panic!("{other:?}"),
                    };
                    let gauge = match reads.pop() {
                        Some(Response::GaugeText { text, .. }) => text,
                        other => panic!("{other:?}"),
                    };
                    chunk[i] = Some(Fingerprint { gauge, csv, text });
                }
            });
        }
    });
    drop(handle);
    service.shutdown();

    // v1 replay: one worker, single `call`s, one session at a time.
    let replay_service = Service::start(ServiceConfig {
        workers: 1,
        shards: 1,
        ..Default::default()
    });
    let replay = replay_service.handle();
    replay.register_shared("census", table);
    let replay_commands = AtomicU64::new(0);
    for (index, batched) in fingerprints.iter().enumerate() {
        let script = session_script(index);
        let sid = create_session(&replay);
        let sequential = drive(&replay, sid, &script, &replay_commands);
        let batched = batched.as_ref().expect("driver thread filled every slot");
        assert_eq!(
            batched.gauge, sequential.gauge,
            "session {index}: gauge diverged under batching"
        );
        assert_eq!(
            batched.csv, sequential.csv,
            "session {index}: CSV transcript diverged under batching"
        );
        assert_eq!(
            batched.text, sequential.text,
            "session {index}: text transcript diverged under batching"
        );
    }
}

/// Persistence under concurrency: a capacity-squeezed service spills
/// LRU victims to disk while multi-threaded load keeps creating
/// sessions; touching a spilled session must restore byte-identical
/// state, the restore must warm from the shared `EvalCache`
/// (`cache_hits` strictly increases across the touch phase), and no
/// snapshot file may carry anything outside the bitmap-free grammar.
#[test]
fn lru_spill_under_load_restores_byte_identical_state() {
    const SPILL_SESSIONS: usize = 24;
    const SPILL_THREADS: usize = 6;
    const PER_THREAD: usize = SPILL_SESSIONS / SPILL_THREADS;
    const SPILL_STEPS: usize = 24;
    const CAPACITY: u64 = 8;

    let dir = std::env::temp_dir().join(format!(
        "aware-spill-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let table = shared_table();
    let service = Service::start(ServiceConfig {
        workers: 4,
        shards: 8,
        max_sessions: CAPACITY,
        data_dir: Some(dir.clone()),
        ..Default::default()
    });
    let handle = service.handle();
    handle.register_shared("census", table);
    let commands = Arc::new(AtomicU64::new(0));

    // --- Load phase: 6 threads create+drive 24 sessions through an
    // 8-slot registry, forcing ≥ 16 LRU spills to disk.
    let mut driven: Vec<Option<(SessionId, Fingerprint)>> =
        (0..SPILL_SESSIONS).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (t, chunk) in driven.chunks_mut(PER_THREAD).enumerate() {
            let handle = handle.clone();
            let commands = commands.clone();
            scope.spawn(move || {
                let base = t * PER_THREAD;
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let sid = create_session(&handle);
                    let script = session_script(base + i);
                    let fingerprint = drive(&handle, sid, &script[..SPILL_STEPS], &commands);
                    *slot = Some((sid, fingerprint));
                }
            });
        }
    });
    // Concurrent creates may overshoot evictions by a little (the cap
    // is a resource bound, not an exact count), so the live count ends
    // at or just under capacity — never over.
    let live = handle.live_sessions();
    assert!(
        (1..=CAPACITY).contains(&live),
        "live sessions {live} escaped the {CAPACITY} cap"
    );
    let hits_before = match handle.call(Command::Stats) {
        Response::Stats(s) => {
            assert!(
                s.sessions_evicted >= (SPILL_SESSIONS as u64 - CAPACITY),
                "expected ≥ {} spills, saw {}",
                SPILL_SESSIONS as u64 - CAPACITY,
                s.sessions_evicted
            );
            assert!(
                s.persisted >= SPILL_SESSIONS as u64 - CAPACITY,
                "every evicted session must be parked on disk: {s:?}"
            );
            s.cache_hits
        }
        other => panic!("{other:?}"),
    };

    // --- Touch phase: every session — most of them spilled by now —
    // must come back byte-identical. Restores re-derive selections
    // through the shared cache, which the load phase left warm.
    let replay_commands = AtomicU64::new(0);
    for entry in &driven {
        let (sid, recorded) = entry.as_ref().expect("driver filled every slot");
        let restored = drive(&handle, *sid, &[], &replay_commands);
        assert!(
            recorded == &restored,
            "session {sid}: state changed across spill/restore\n\
             gauge equal: {}\ncsv equal: {}\ntext equal: {}",
            recorded.gauge == restored.gauge,
            recorded.csv == restored.csv,
            recorded.text == restored.text,
        );
    }
    match handle.call(Command::Stats) {
        Response::Stats(s) => assert!(
            s.cache_hits > hits_before,
            "restores must warm from the shared EvalCache: {} -> {}",
            hits_before,
            s.cache_hits
        ),
        other => panic!("{other:?}"),
    }

    // --- Format audit: every snapshot file on disk must be exactly the
    // bitmap-free grammar — decode must succeed and re-encoding must
    // reproduce the file byte for byte, so no byte of any file can be a
    // serialized selection.
    let mut audited = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        let image = aware_serve::snapshot::decode(&bytes)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            aware_serve::snapshot::encode(&image),
            bytes,
            "{}: snapshot bytes outside the grammar",
            path.display()
        );
        audited += 1;
    }
    assert!(
        audited >= (SPILL_SESSIONS - CAPACITY as usize),
        "only {audited} snapshot files on disk"
    );

    drop(handle);
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Session-free sanity floor for the constants above — keeps the
/// acceptance numbers from silently eroding in refactors.
#[test]
#[allow(clippy::assertions_on_constants)] // asserting the constants is the point
fn smoke_parameters_meet_acceptance_floor() {
    assert!(SESSIONS >= 64);
    assert!(THREADS >= 8);
    assert!(
        SESSIONS.is_multiple_of(THREADS),
        "sessions must split evenly across threads"
    );
    // create + steps + 3 reads per session.
    assert!(SESSIONS * (STEPS_PER_SESSION + 4) >= 10_000);
}
