//! Crash-recovery conformance: the real `serve` binary, killed hard.
//!
//! Persistence only counts if it survives the failure mode it was
//! built for, so this suite spawns the production binary with a
//! `--data-dir` in synchronous-snapshot mode, drives sessions over TCP
//! mid-exploration, **SIGKILLs** the process, restarts it over the same
//! directory, and asserts:
//!
//! * continued sessions produce gauge/CSV/text transcripts
//!   byte-identical to a never-killed reference server replaying the
//!   same commands (α-wealth, ledger, policy state, and hypothesis
//!   history all survived the kill);
//! * session-id allocation resumes above every persisted id;
//! * a snapshot file torn at a pseudo-random byte recovers cleanly to
//!   the previous generation — `corrupt_snapshot` handling, never a
//!   panic and never a silently reset wealth — and a session whose
//!   every generation is torn answers `corrupt_snapshot` while the
//!   server keeps serving.
//!
//! CI runs this as its crash-recovery step:
//! `cargo test -p aware-serve --release --test crash_recovery`.

use aware_data::predicate::CmpOp;
use aware_data::value::Value;
use aware_serve::proto::{Command, FilterSpec, PolicySpec, Response, SessionId, TranscriptFormat};
use aware_serve::tcp::Client;
use aware_serve::ErrorCode;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command as Proc, Stdio};

/// Kills the spawned server even when an assertion panics.
struct ServerGuard(Child);

impl ServerGuard {
    /// The crash under test: SIGKILL, no shutdown hooks, no flush.
    fn kill_hard(mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_server(data_dir: &Path) -> (ServerGuard, SocketAddr) {
    let mut child = Proc::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--rows",
            "1200",
            "--workers",
            "2",
            "--seed",
            "7",
            "--snapshot-every",
            "0", // synchronous: every mutation is on disk before its reply
        ])
        .arg("--data-dir")
        .arg(data_dir)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn the serve binary");
    let stderr = child.stderr.take().expect("piped stderr");
    let guard = ServerGuard(child);
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("read serve stderr");
        if let Some(rest) = line.strip_prefix("aware-serve listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .parse()
                .expect("parse announced address");
        }
    };
    std::thread::spawn(move || for _ in lines {});
    (guard, addr)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "aware-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn create_session(client: &mut Client) -> SessionId {
    match client
        .call(&Command::CreateSession {
            dataset: "census".into(),
            alpha: 0.05,
            policy: PolicySpec::Fixed { gamma: 10.0 },
        })
        .unwrap()
    {
        Response::SessionCreated { session, .. } => session,
        other => panic!("create failed: {other:?}"),
    }
}

fn eq(column: &str, value: Value) -> FilterSpec {
    FilterSpec::Cmp {
        column: column.into(),
        op: CmpOp::Eq,
        value,
    }
}

/// The per-session exploration: planted dependencies, null views, a
/// policy swap — rejections and acceptances both land in the ledger.
fn script(session: SessionId) -> Vec<Command> {
    vec![
        Command::AddVisualization {
            session,
            attribute: "sex".into(),
            filter: FilterSpec::True,
        },
        Command::AddVisualization {
            session,
            attribute: "education".into(),
            filter: eq("salary_over_50k", Value::Bool(true)),
        },
        Command::AddVisualization {
            session,
            attribute: "race".into(),
            filter: eq("survey_wave", Value::Str("Wave-2".into())),
        },
        Command::SetPolicy {
            session,
            policy: PolicySpec::Hopeful { delta: 5.0 },
        },
        Command::AddVisualization {
            session,
            attribute: "marital_status".into(),
            filter: FilterSpec::Between {
                column: "age".into(),
                lo: 25.0,
                hi: 45.0,
            },
        },
        Command::AddVisualization {
            session,
            attribute: "occupation".into(),
            filter: eq("native_region", Value::Str("South".into())),
        },
    ]
}

/// Index at which the crash interrupts each session's script.
const CUT: usize = 3;

fn run(client: &mut Client, commands: &[Command]) {
    for cmd in commands {
        let response = client.call(cmd).unwrap();
        assert!(response.is_ok(), "{cmd:?} -> {response:?}");
    }
}

/// gauge + csv + text — the session's complete observable state.
fn transcripts(client: &mut Client, session: SessionId) -> (String, String, String) {
    let gauge = match client.call(&Command::Gauge { session }).unwrap() {
        Response::GaugeText { text, .. } => text,
        other => panic!("{other:?}"),
    };
    let csv = match client
        .call(&Command::Transcript {
            session,
            format: TranscriptFormat::Csv,
        })
        .unwrap()
    {
        Response::TranscriptText { text, .. } => text,
        other => panic!("{other:?}"),
    };
    let text = match client
        .call(&Command::Transcript {
            session,
            format: TranscriptFormat::Text,
        })
        .unwrap()
    {
        Response::TranscriptText { text, .. } => text,
        other => panic!("{other:?}"),
    };
    (gauge, csv, text)
}

#[test]
fn sigkill_mid_exploration_loses_nothing() {
    // --- The crashing run: two sessions, killed mid-script.
    let dir = temp_dir("sigkill");
    let (server, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).unwrap();
    let a = create_session(&mut client);
    let b = create_session(&mut client);
    run(&mut client, &script(a)[..CUT]);
    run(&mut client, &script(b)[..CUT]);
    drop(client);
    server.kill_hard(); // SIGKILL: no flush, no goodbye

    // --- Restart over the same directory; both sessions continue.
    let (server, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).unwrap();
    run(&mut client, &script(a)[CUT..]);
    run(&mut client, &script(b)[CUT..]);
    let continued_a = transcripts(&mut client, a);
    let continued_b = transcripts(&mut client, b);
    // Ids keep allocating above the persisted ones — a restart must
    // never hand a returning client's id to a stranger.
    let fresh = create_session(&mut client);
    assert!(fresh > a.max(b), "fresh id {fresh} collides with {a}/{b}");
    drop(client);
    drop(server);

    // --- Reference: a never-killed server replays the same commands.
    let ref_dir = temp_dir("sigkill-ref");
    let (server, addr) = spawn_server(&ref_dir);
    let mut client = Client::connect(addr).unwrap();
    let ra = create_session(&mut client);
    let rb = create_session(&mut client);
    assert_eq!((ra, rb), (a, b), "id allocation must be deterministic");
    run(&mut client, &script(ra));
    run(&mut client, &script(rb));
    let reference_a = transcripts(&mut client, ra);
    let reference_b = transcripts(&mut client, rb);
    drop(client);
    drop(server);

    assert!(
        reference_a.1.lines().count() > 1,
        "reference transcript is empty: {}",
        reference_a.1
    );
    assert_eq!(
        continued_a, reference_a,
        "session {a}: transcripts diverged across the SIGKILL"
    );
    assert_eq!(
        continued_b, reference_b,
        "session {b}: transcripts diverged across the SIGKILL"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// The snapshot files of `session`, newest generation first.
fn generations(dir: &Path, session: SessionId) -> Vec<PathBuf> {
    let prefix = format!("sess-{session}.g");
    let mut files: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter_map(|path| {
            let name = path.file_name()?.to_string_lossy().into_owned();
            let gen: u64 = name
                .strip_prefix(&prefix)?
                .strip_suffix(".awrs")?
                .parse()
                .ok()?;
            Some((gen, path))
        })
        .collect();
    files.sort_by_key(|(gen, _)| std::cmp::Reverse(*gen));
    files.into_iter().map(|(_, path)| path).collect()
}

/// Tears `path` at a pseudo-random byte (deterministically derived from
/// the file length, so failures reproduce). The byte-exhaustive proof
/// that *every* truncation point decodes to `corrupt_snapshot` lives in
/// the codec's unit tests; this exercises one point end to end.
fn tear(path: &Path) {
    let bytes = std::fs::read(path).unwrap();
    let cut = (bytes.len() * 7919 + 17) % bytes.len();
    std::fs::write(path, &bytes[..cut]).unwrap();
}

#[test]
fn torn_snapshot_recovers_to_previous_generation_never_resets_wealth() {
    let dir = temp_dir("torn");
    let (server, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).unwrap();
    let sid = create_session(&mut client);
    // Drive the script, capturing the CSV transcript after every step:
    // capture[k] is the exact state a generation written after step k+1
    // must restore to.
    let steps = script(sid);
    let mut capture: Vec<String> = Vec::new();
    for cmd in &steps {
        let response = client.call(cmd).unwrap();
        assert!(response.is_ok(), "{response:?}");
        capture.push(transcripts(&mut client, sid).1);
    }
    drop(client);
    server.kill_hard();

    // Tear the newest generation at a pseudo-random byte.
    let gens = generations(&dir, sid);
    assert!(gens.len() >= 2, "sync mode must keep two generations");
    tear(&gens[0]);

    // Restart: the session restores from the previous generation — the
    // state after the second-to-last mutation, wealth intact.
    let (server, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).unwrap();
    let (_, csv, _) = transcripts(&mut client, sid);
    assert_eq!(
        csv,
        capture[steps.len() - 2],
        "torn newest generation must fall back to the previous one"
    );
    assert_ne!(csv, capture[steps.len() - 1], "the torn write is lost");
    assert!(
        csv.lines().count() > 1,
        "fallback restored an empty (reset!) session: {csv}"
    );
    drop(client);
    server.kill_hard();

    // Tear every remaining generation: the session becomes
    // unrecoverable and must say so — corrupt_snapshot, not a fresh
    // budget, not unknown_session, and the server itself stays up.
    for path in generations(&dir, sid) {
        tear(&path);
    }
    let (server, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).unwrap();
    match client.call(&Command::Gauge { session: sid }).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::CorruptSnapshot, "{e}"),
        other => panic!("an unreadable ledger must never answer with state: {other:?}"),
    }
    // The server survives the corrupt file and keeps serving.
    let fresh = create_session(&mut client);
    match client.call(&Command::Gauge { session: fresh }).unwrap() {
        Response::GaugeText { .. } => {}
        other => panic!("{other:?}"),
    }
    match client.call(&Command::Stats).unwrap() {
        Response::Stats(s) => assert!(s.persisted >= 1),
        other => panic!("{other:?}"),
    }
    drop(client);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
