//! Hostile-client battery for the reactor front end.
//!
//! Every scenario here is an attack the thread-per-connection front
//! end survives by accident (a parked thread per victim) and the
//! reactor must survive by construction: slow-loris dribble, a peer
//! that never reads its replies, an oversized frame interrupting
//! reassembly, and abrupt FIN/RST at every protocol state. After each
//! assault the server must still answer a well-behaved client, no
//! session state may be damaged, and the connection accounting must
//! reconcile (opened == closed, gauge back to zero) — a leaked
//! connection slot is a slow death at 10K connections.

#![cfg(target_os = "linux")]

use aware_data::census::CensusGenerator;
use aware_reactor::ReactorConfig;
use aware_serve::frame;
use aware_serve::proto::{
    Batch, BatchItem, BatchMode, Command, Encoding, Envelope, PolicySpec, Reply, Response,
    PROTOCOL_VERSION,
};
use aware_serve::reactor_front::{bind_reactor_with, proto_reactor_config};
use aware_serve::service::{Service, ServiceConfig};
use aware_serve::tcp::Client;
use aware_serve::wire;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

type ReactorFront = aware_reactor::ReactorServer<aware_serve::proto::PushEvent>;

fn served(cfg: ReactorConfig) -> (Service, ReactorFront) {
    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    service
        .handle()
        .register_table("census", CensusGenerator::new(11).generate(1_500));
    let server = bind_reactor_with("127.0.0.1:0", service.handle(), cfg).expect("bind reactor");
    (service, server)
}

fn stats(service: &Service) -> Box<aware_serve::proto::StatsSnapshot> {
    match service.handle().call(Command::Stats) {
        Response::Stats(s) => s,
        other => panic!("stats: {other:?}"),
    }
}

/// Polls until the reactor's connection gauge drains to `expect`
/// (close accounting is asynchronous).
fn await_gauge(service: &Service, expect: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let s = stats(service);
        if s.reactor_connections == expect {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "connection gauge stuck at {} (want {}) — leaked a slot",
            s.reactor_connections,
            expect
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn create_session(client: &mut Client) -> u64 {
    match client
        .call(&Command::CreateSession {
            dataset: "census".into(),
            alpha: 0.05,
            policy: PolicySpec::Fixed { gamma: 10.0 },
        })
        .expect("create session")
    {
        Response::SessionCreated { session, .. } => session,
        other => panic!("create: {other:?}"),
    }
}

/// Closes the socket with an RST instead of an orderly FIN
/// (`SO_LINGER { on, 0 }` turns `close(2)` into a reset).
fn close_with_rst(sock: TcpStream) {
    use std::os::unix::io::AsRawFd;
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    let rc = unsafe {
        setsockopt(
            sock.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&linger as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_LINGER)");
    drop(sock);
}

/// Shrinks the socket's receive buffer so the server's replies hit
/// backpressure after a few KiB instead of megabytes.
fn shrink_rcvbuf(sock: &TcpStream) {
    use std::os::unix::io::AsRawFd;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    let size: i32 = 4096;
    let rc = unsafe {
        setsockopt(
            sock.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&size as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
}

#[test]
fn slow_loris_one_byte_at_a_time_still_gets_its_reply() {
    let (service, server) = served(proto_reactor_config());

    let mut sock = TcpStream::connect(server.local_addr()).expect("connect");
    sock.set_nodelay(true).unwrap();
    let request = b"{\"cmd\":\"stats\"}\n";
    for &b in request.iter() {
        sock.write_all(&[b]).expect("dribble one byte");
        sock.flush().unwrap();
        std::thread::sleep(Duration::from_millis(100));
    }
    let mut line = String::new();
    BufReader::new(&sock)
        .read_line(&mut line)
        .expect("read reply");
    let reply = Reply::decode_line(line.trim_end()).expect("parse reply");
    match reply {
        Reply::Single {
            response: Response::Stats(_),
            ..
        } => {}
        other => panic!("unexpected reply: {other:?}"),
    }

    drop(sock);
    await_gauge(&service, 0);
}

#[test]
fn peer_that_never_reads_is_dropped_but_its_session_survives() {
    // A tiny output cap so the test converges in KiB, not the 16 MiB
    // an operator would use.
    let (service, server) = served(ReactorConfig {
        out_cap: 8 * 1024,
        ..proto_reactor_config()
    });
    let addr = server.local_addr();

    let mut well_behaved = Client::connect(addr).expect("connect");
    let session = create_session(&mut well_behaved);

    // The abuser: pipelines huge batches of gauge requests and never
    // reads a single reply byte.
    let sock = TcpStream::connect(addr).expect("connect abuser");
    shrink_rcvbuf(&sock);
    let mut sock = sock;
    let batch = Envelope::Batch {
        id: Some(1),
        batch: Batch {
            mode: BatchMode::Continue,
            items: (0..512)
                .map(|k| BatchItem {
                    id: Some(k),
                    cmd: Command::Gauge { session },
                })
                .collect(),
        },
    };
    let line = {
        let mut l = batch.encode_line().into_bytes();
        l.push(b'\n');
        l
    };
    let mut dropped = false;
    for _ in 0..200 {
        if sock.write_all(&line).is_err() {
            dropped = true; // server hung up on us mid-write
            break;
        }
    }
    if !dropped {
        // Writes all queued in kernel buffers; the drop shows up as
        // EOF/reset on the read side instead.
        sock.shutdown(Shutdown::Write).ok();
        let mut sink = [0u8; 4096];
        loop {
            match sock.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    // The abused connection is gone; the session it was hammering is
    // not. (The well-behaved client still holds its own slot.)
    drop(sock);
    await_gauge(&service, 1);
    drop(well_behaved);
    await_gauge(&service, 0);
    let mut fresh = Client::connect(addr).expect("reconnect");
    match fresh.call(&Command::Gauge { session }).expect("gauge") {
        Response::GaugeText { session: s, .. } => assert_eq!(s, session),
        other => panic!("session damaged: {other:?}"),
    }
}

#[test]
fn oversized_frame_mid_reassembly_resyncs_the_stream() {
    let (service, server) = served(proto_reactor_config());
    let mut sock = TcpStream::connect(server.local_addr()).expect("connect");
    sock.set_nodelay(true).unwrap();

    // Greet on the binary surface.
    let hello = wire::encode_envelope(&Envelope::Hello {
        id: Some(1),
        version: PROTOCOL_VERSION,
        encoding: Encoding::Binary,
        push: false,
    });
    frame::write_frame(&mut sock, &hello).unwrap();
    let mut reader = BufReader::new(sock.try_clone().unwrap());
    match frame::read_frame(&mut reader, frame::MAX_FRAME_BYTES).unwrap() {
        frame::FrameRead::Frame(p) => match wire::decode_reply(&p).unwrap() {
            Reply::HelloAck { .. } => {}
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }

    // Declare one byte more than the ceiling; the error reply arrives
    // while the payload is still in flight …
    let declared = frame::MAX_FRAME_BYTES as u32 + 1;
    let mut header = Vec::new();
    header.extend_from_slice(b"AWR2");
    header.push(2);
    header.extend_from_slice(&declared.to_be_bytes());
    sock.write_all(&header).unwrap();
    sock.write_all(&vec![7u8; 1024]).unwrap(); // first sliver of payload

    match frame::read_frame(&mut reader, frame::MAX_FRAME_BYTES).unwrap() {
        frame::FrameRead::Frame(p) => match wire::decode_reply(&p).unwrap() {
            Reply::Single {
                response: Response::Error(e),
                ..
            } => assert!(
                e.message.contains("exceeds"),
                "unexpected error: {}",
                e.message
            ),
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }

    // … we keep pouring the rest of the oversized payload …
    let mut remaining = declared as usize - 1024;
    let junk = vec![7u8; 1 << 20];
    while remaining > 0 {
        let n = remaining.min(junk.len());
        sock.write_all(&junk[..n]).unwrap();
        remaining -= n;
    }

    // … and the very next frame decodes normally: the stream resynced.
    let stats_frame = wire::encode_envelope(&Envelope::Single {
        id: Some(2),
        cmd: Command::Stats,
    });
    frame::write_frame(&mut sock, &stats_frame).unwrap();
    match frame::read_frame(&mut reader, frame::MAX_FRAME_BYTES).unwrap() {
        frame::FrameRead::Frame(p) => match wire::decode_reply(&p).unwrap() {
            Reply::Single {
                id: Some(2),
                response: Response::Stats(_),
            } => {}
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }

    drop(sock);
    drop(reader);
    await_gauge(&service, 0);
}

#[test]
fn abrupt_fin_and_rst_at_every_protocol_state_leak_nothing() {
    let (service, server) = served(proto_reactor_config());
    let addr = server.local_addr();

    let json_hello = {
        let mut l = Envelope::Hello {
            id: Some(0),
            version: PROTOCOL_VERSION,
            encoding: Encoding::Binary,
            push: false,
        }
        .encode_line()
        .into_bytes();
        l.push(b'\n');
        l
    };
    let oversize_header = {
        let mut h = Vec::new();
        h.extend_from_slice(b"AWR2");
        h.push(2);
        h.extend_from_slice(&(frame::MAX_FRAME_BYTES as u32 + 1).to_be_bytes());
        h
    };

    // Each state is "the bytes a client has sent when it dies".
    let states: Vec<(&str, Vec<u8>)> = vec![
        ("pre-first-byte", Vec::new()),
        ("mid-line", b"{\"cmd\":\"sta".to_vec()),
        ("complete-line-no-read", b"{\"cmd\":\"stats\"}\n".to_vec()),
        ("mid-frame-header", b"AWR2\x02\0".to_vec()),
        ("mid-frame-payload", {
            let mut s = Vec::new();
            frame::write_frame(
                &mut s,
                &wire::encode_envelope(&Envelope::Hello {
                    id: Some(1),
                    version: PROTOCOL_VERSION,
                    encoding: Encoding::Binary,
                    push: false,
                }),
            )
            .unwrap();
            s.truncate(s.len() - 3);
            s
        }),
        ("mid-oversize-skip", {
            let mut s = oversize_header.clone();
            s.extend_from_slice(&[9u8; 512]);
            s
        }),
        ("post-upgrade", json_hello.clone()),
    ];

    for (name, bytes) in &states {
        for rst in [false, true] {
            let mut sock = TcpStream::connect(addr).expect("connect");
            sock.set_nodelay(true).unwrap();
            if !bytes.is_empty() {
                sock.write_all(bytes).expect("write state prefix");
            }
            // Give the reactor a moment to have actually read them, so
            // the death lands in the protocol state, not the backlog.
            std::thread::sleep(Duration::from_millis(30));
            if rst {
                close_with_rst(sock);
            } else {
                sock.shutdown(Shutdown::Both).ok();
                drop(sock);
            }
            let _ = name;
        }
    }

    // Every slot drains, and the server still works.
    await_gauge(&service, 0);
    let mut client = Client::connect_with(addr, Encoding::Binary).expect("hello");
    let session = create_session(&mut client);
    match client.call(&Command::Gauge { session }).expect("gauge") {
        Response::GaugeText { .. } => {}
        other => panic!("{other:?}"),
    }

    let s = stats(&service);
    assert!(
        s.reactor_wakeups > 0,
        "the readiness loop should have recorded wakeups"
    );
}
