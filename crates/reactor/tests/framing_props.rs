//! The protocol state-machine battery for the reactor's incremental
//! decoders and the reactor front end as a whole.
//!
//! Two layers:
//!
//! 1. **Chop invariance** (pure, no sockets): random valid-and-hostile
//!    v1/v2 byte streams are decoded whole, chopped at *every* byte
//!    boundary, and re-split into random coalescings — the observable
//!    [`Inbound`] sequence must be identical for every chop, including
//!    across a JSON→binary hello upgrade whose frame bytes were already
//!    buffered.
//! 2. **Front-end identity** (live sockets): the same pipelined
//!    transcript, written in random chunkings, is replayed against the
//!    blocking thread-per-connection front end and the reactor front
//!    end over identically-seeded services — the reply byte streams
//!    must match byte for byte, on every surface (v1 NDJSON, v2 JSON,
//!    v2 binary, and the mid-stream upgrade).
//!
//! `AWARE_PROPTEST_CASES` raises the case count (the CI nightly-style
//! job runs these hot); the default keeps `cargo test` quick.

use aware_data::census::CensusGenerator;
use aware_data::predicate::CmpOp;
use aware_data::value::Value;
use aware_reactor::decode::{DecoderConfig, StreamDecoder};
use aware_reactor::Inbound;
use aware_serve::frame;
use aware_serve::proto::{
    Batch, BatchItem, BatchMode, Command, Encoding, Envelope, FilterSpec, PolicySpec,
    PROTOCOL_VERSION,
};
use aware_serve::reactor_front::bind_reactor;
use aware_serve::service::{Service, ServiceConfig};
use aware_serve::tcp::TcpServer;
use aware_serve::wire;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};

/// `AWARE_PROPTEST_CASES` overrides the per-property case count.
fn cases(default: u32) -> u32 {
    std::env::var("AWARE_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// -- seeded random structures (same idiom as serve's protocol_v2) -----------

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    frame::write_frame(&mut out, payload).unwrap();
    out
}

/// Splits `stream` into `pieces` random contiguous chunks (some may be
/// empty — a 0-byte read must be harmless).
fn random_chunks(stream: &[u8], rng: &mut Lcg, pieces: usize) -> Vec<Vec<u8>> {
    let mut cuts: Vec<usize> = (0..pieces.saturating_sub(1))
        .map(|_| rng.pick(stream.len() + 1))
        .collect();
    cuts.sort_unstable();
    let mut out = Vec::new();
    let mut prev = 0;
    for cut in cuts {
        out.push(stream[prev..cut].to_vec());
        prev = cut;
    }
    out.push(stream[prev..].to_vec());
    out
}

/// Decodes a chunked stream, honouring upgrade requests: when a decoded
/// line equals `upgrade_after`, the decoder switches to frames — the
/// consumer-driven mid-stream upgrade.
fn decode_chunks(
    chunks: &[Vec<u8>],
    cfg: DecoderConfig,
    upgrade_after: Option<&str>,
) -> Vec<Inbound> {
    let mut d = StreamDecoder::new(cfg);
    let mut out = Vec::new();
    for chunk in chunks {
        d.push(chunk);
        while let Some(m) = d.next() {
            let upgrade = matches!((&m, upgrade_after), (Inbound::Line(l), Some(u)) if l == u);
            out.push(m);
            if upgrade {
                d.set_frames();
            }
        }
    }
    if let Some(m) = d.finish() {
        out.push(m);
    }
    out
}

/// A mixed stream: the surface prefix, hostile elements included.
fn build_stream(rng: &mut Lcg, cfg: &DecoderConfig) -> (Vec<u8>, Option<String>) {
    match rng.pick(3) {
        // NDJSON lines: normal, empty, overlong, binary garbage inside.
        0 => {
            let mut s = Vec::new();
            // First byte must not be the magic byte, or detection flips.
            s.extend_from_slice(b"{\"id\":1}\n");
            for _ in 0..rng.pick(8) {
                match rng.pick(4) {
                    0 => s.extend_from_slice(b"\n"),
                    1 => {
                        let long = vec![b'x'; cfg.line_max + 1 + rng.pick(32)];
                        s.extend_from_slice(&long);
                        s.push(b'\n');
                    }
                    2 => {
                        let n = rng.pick(40);
                        for _ in 0..n {
                            let b = (rng.next() % 255) as u8;
                            s.push(if b == b'\n' { b'.' } else { b });
                        }
                        s.push(b'\n');
                    }
                    _ => s.extend_from_slice(b"{\"cmd\":\"stats\"}\n"),
                }
            }
            if rng.pick(3) == 0 {
                s.extend_from_slice(b"trailing partial line with no newline");
            }
            (s, None)
        }
        // Binary frames: normal, empty, oversized, maybe corrupt tail.
        1 => {
            let mut s = Vec::new();
            for _ in 0..1 + rng.pick(6) {
                if rng.pick(5) == 0 {
                    let big = vec![9u8; cfg.frame_max + 1 + rng.pick(16)];
                    s.extend_from_slice(&frame_bytes(&big));
                } else {
                    let payload: Vec<u8> = (0..rng.pick(64)).map(|_| rng.next() as u8).collect();
                    s.extend_from_slice(&frame_bytes(&payload));
                }
            }
            match rng.pick(4) {
                // Truncated mid-header or mid-payload.
                0 => {
                    let cut = s.len() - rng.pick(8).min(s.len() - 1) - 1;
                    s.truncate(cut.max(1));
                }
                // Corrupt magic/version at a frame boundary.
                1 => s.extend_from_slice(b"AWRX\x02\0\0\0\0"),
                2 => s.extend_from_slice(b"AWR2\x09\0\0\0\0"),
                _ => {}
            }
            (s, None)
        }
        // Hello upgrade: lines, then the upgrade marker, then frames.
        _ => {
            let marker = "{\"cmd\":\"hello\",\"version\":3,\"encoding\":\"binary\"}";
            let mut s = Vec::new();
            for _ in 0..rng.pick(3) {
                s.extend_from_slice(b"{\"cmd\":\"stats\"}\n");
            }
            s.extend_from_slice(marker.as_bytes());
            s.push(b'\n');
            for _ in 0..rng.pick(4) {
                let payload: Vec<u8> = (0..rng.pick(48)).map(|_| rng.next() as u8).collect();
                s.extend_from_slice(&frame_bytes(&payload));
            }
            (s, Some(marker.to_string()))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// The decoded message sequence is invariant under chopping the
    /// stream at EVERY byte boundary (two-piece sweep) and under
    /// random multi-piece coalescings.
    #[test]
    fn decoding_is_chop_invariant(seed in 0u64..u64::MAX) {
        let mut rng = Lcg(seed);
        let cfg = DecoderConfig {
            line_max: 96,
            frame_max: 128,
            ..DecoderConfig::default()
        };
        let (stream, upgrade) = build_stream(&mut rng, &cfg);
        let upgrade = upgrade.as_deref();

        let reference = decode_chunks(
            std::slice::from_ref(&stream), cfg.clone(), upgrade);

        // Exhaustive two-piece sweep: every byte boundary.
        for cut in 0..=stream.len() {
            let halves = vec![stream[..cut].to_vec(), stream[cut..].to_vec()];
            let got = decode_chunks(&halves, cfg.clone(), upgrade);
            prop_assert_eq!(
                &got, &reference,
                "diverged at cut {} of {} (seed {})", cut, stream.len(), seed
            );
        }

        // Random coalescings, including byte-at-a-time.
        for pieces in [stream.len().max(1), 2 + rng.pick(9)] {
            let chunks = random_chunks(&stream, &mut rng, pieces);
            let got = decode_chunks(&chunks, cfg.clone(), upgrade);
            prop_assert_eq!(&got, &reference, "coalescing diverged (seed {})", seed);
        }
    }
}

// -- live front-end identity ------------------------------------------------

/// One surface of the protocol, as a transcript prefix.
#[derive(Clone, Copy, Debug)]
enum Surface {
    V1,
    V2Json,
    V2Binary,
    Upgrade,
}

impl Lcg {
    fn filter(&mut self) -> FilterSpec {
        match self.pick(4) {
            0 => FilterSpec::True,
            1 => FilterSpec::Cmp {
                column: "salary_over_50k".into(),
                op: [CmpOp::Eq, CmpOp::Neq][self.pick(2)],
                value: Value::Bool(true),
            },
            2 => FilterSpec::Cmp {
                column: "hours_per_week".into(),
                op: [CmpOp::Lt, CmpOp::Ge][self.pick(2)],
                value: Value::Int(40),
            },
            _ => FilterSpec::Between {
                column: "age".into(),
                lo: 20.0 + self.pick(20) as f64,
                hi: 50.0 + self.pick(20) as f64,
            },
        }
    }

    /// A deterministic-response command against known sessions.
    /// Session-creating commands stay OUT of batches so session-id
    /// allocation order (a global counter) cannot race across workers.
    fn op(&mut self, sessions: &[u64]) -> Command {
        let session = sessions[self.pick(sessions.len())];
        match self.pick(5) {
            0 | 1 => Command::AddVisualization {
                session,
                attribute: ["education", "sex", "race", "occupation"][self.pick(4)].into(),
                filter: self.filter(),
            },
            2 => Command::SetPolicy {
                session,
                policy: PolicySpec::Fixed {
                    gamma: 4.0 + self.pick(8) as f64,
                },
            },
            3 => Command::Gauge { session },
            // Commands against a session that never existed: the error
            // reply is part of the identity contract too.
            _ => Command::Gauge {
                session: 1_000_000 + self.next() % 1000,
            },
        }
    }
}

/// Builds one pipelined transcript: raw bytes to write, given the
/// session ids this connection will create (ids are allocated
/// sequentially per service, so the caller pre-computes them).
fn build_transcript(rng: &mut Lcg, surface: Surface, first_session: u64) -> Vec<u8> {
    let mut out = Vec::new();
    let hello = |encoding: Encoding| Envelope::Hello {
        id: Some(0),
        version: PROTOCOL_VERSION,
        encoding,
        // Identity across front ends requires declining push: granting
        // is the one deliberate behavioural difference (the reactor
        // grants, the blocking front declines) and is pinned by a
        // directed test in the serve crate instead.
        push: false,
    };
    let binary = match surface {
        Surface::V1 => false,
        Surface::V2Json => {
            out.extend_from_slice(hello(Encoding::Json).encode_line().as_bytes());
            out.push(b'\n');
            false
        }
        Surface::V2Binary => {
            out.extend_from_slice(&frame_bytes(&wire::encode_envelope(&hello(
                Encoding::Binary,
            ))));
            true
        }
        Surface::Upgrade => {
            out.extend_from_slice(hello(Encoding::Binary).encode_line().as_bytes());
            out.push(b'\n');
            true
        }
    };

    let push_envelope = |out: &mut Vec<u8>, envelope: &Envelope| {
        if binary {
            out.extend_from_slice(&frame_bytes(&wire::encode_envelope(envelope)));
        } else {
            out.extend_from_slice(envelope.encode_line().as_bytes());
            out.push(b'\n');
        }
    };

    // One session created up front (as a Single, never in a batch),
    // sometimes a second mid-stream.
    let create = Command::CreateSession {
        dataset: "census".into(),
        alpha: 0.05,
        policy: PolicySpec::Fixed { gamma: 10.0 },
    };
    push_envelope(
        &mut out,
        &Envelope::Single {
            id: Some(1),
            cmd: create.clone(),
        },
    );
    let mut sessions = vec![first_session];
    let envelopes = 2 + rng.pick(6) as u64;
    for next_id in 2..2 + envelopes {
        let id = Some(next_id);
        if sessions.len() < 2 && rng.pick(4) == 0 {
            sessions.push(first_session + sessions.len() as u64);
            push_envelope(
                &mut out,
                &Envelope::Single {
                    id,
                    cmd: create.clone(),
                },
            );
        } else if rng.pick(3) == 0 {
            let items = (0..1 + rng.pick(5))
                .map(|k| BatchItem {
                    id: Some(100 * next_id + k as u64),
                    cmd: rng.op(&sessions),
                })
                .collect();
            push_envelope(
                &mut out,
                &Envelope::Batch {
                    id,
                    batch: Batch {
                        mode: [BatchMode::Continue, BatchMode::FailFast][rng.pick(2)],
                        items,
                    },
                },
            );
        } else {
            push_envelope(
                &mut out,
                &Envelope::Single {
                    id,
                    cmd: rng.op(&sessions),
                },
            );
        }
    }
    if !binary && rng.pick(3) == 0 {
        // A malformed line: the error reply is deterministic too.
        out.extend_from_slice(b"{\"cmd\":\"no_such_command\"}\n");
    }
    out
}

/// Writes the transcript in the given chunks, half-closes, reads every
/// reply byte the server produces.
fn replay(addr: SocketAddr, chunks: &[Vec<u8>]) -> Vec<u8> {
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.set_nodelay(true).unwrap();
    for chunk in chunks {
        sock.write_all(chunk).expect("write transcript chunk");
    }
    sock.shutdown(Shutdown::Write).expect("half-close");
    let mut replies = Vec::new();
    sock.read_to_end(&mut replies).expect("read replies");
    replies
}

/// Two identically-seeded services, one behind each front end. Shared
/// across property cases: both sides replay the same transcripts in
/// the same order, so their session state stays in lockstep.
/// A blocking-front service and a reactor-front service, identically
/// seeded.
type FrontPair = (
    (Service, TcpServer),
    (
        Service,
        aware_reactor::ReactorServer<aware_serve::proto::PushEvent>,
    ),
);

fn identical_pair() -> FrontPair {
    let mk = || {
        let service = Service::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        service
            .handle()
            .register_table("census", CensusGenerator::new(23).generate(1_500));
        service
    };
    let blocking = mk();
    let reactor = mk();
    let tcp = TcpServer::bind("127.0.0.1:0", blocking.handle()).expect("bind tcp");
    let rct = bind_reactor("127.0.0.1:0", reactor.handle()).expect("bind reactor");
    ((blocking, tcp), (reactor, rct))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    /// Replies from the reactor front end are byte-identical to the
    /// blocking front end for the same transcript — across surfaces,
    /// pipelining, and arbitrary write chunkings.
    #[test]
    fn reactor_replies_match_blocking_front_byte_for_byte(seed in 0u64..u64::MAX) {
        use std::sync::OnceLock;
        static PAIR: OnceLock<FrontPair> = OnceLock::new();
        static NEXT_SESSION: std::sync::atomic::AtomicU64 =
            std::sync::atomic::AtomicU64::new(1);

        let pair = PAIR.get_or_init(identical_pair);
        let mut rng = Lcg(seed);
        let surface = [
            Surface::V1,
            Surface::V2Json,
            Surface::V2Binary,
            Surface::Upgrade,
        ][rng.pick(4)];
        // Up to 2 sessions are created per transcript; reserve both ids
        // whether or not the second create is drawn, so the prediction
        // can never drift from the services' global counters.
        let first_session =
            NEXT_SESSION.fetch_add(2, std::sync::atomic::Ordering::SeqCst);
        let transcript = build_transcript(&mut rng, surface, first_session);

        // Different chunkings per side on purpose: byte-boundary splits
        // must be unobservable in the reply stream.
        let pieces = 1 + rng.pick(6);
        let blocking_chunks = random_chunks(&transcript, &mut rng, pieces);
        let pieces = 1 + rng.pick(12);
        let reactor_chunks = random_chunks(&transcript, &mut rng, pieces);

        let expect = replay(pair.0 .1.local_addr(), &blocking_chunks);
        let got = replay(pair.1 .1.local_addr(), &reactor_chunks);
        prop_assert_eq!(
            &got, &expect,
            "reply streams diverged (surface {:?}, seed {}, transcript {} bytes)",
            surface, seed, transcript.len()
        );
        prop_assert!(!expect.is_empty(), "transcript produced no replies");
    }
}

/// The auto-detect first byte must survive 0-byte reads: a connection
/// that dribbles its first byte after several empty reads (EINTR
/// wakeups on the blocking front, spurious readiness on the reactor)
/// still detects the surface from the real first byte. Pins the seed
/// bug where the blocking read path trusted a 0-byte read's buffer.
#[test]
fn first_byte_detection_survives_empty_reads() {
    let mut d = StreamDecoder::new(DecoderConfig::default());
    for _ in 0..3 {
        d.push(&[]); // a 0-byte read
        assert_eq!(d.next(), None);
        assert!(!d.is_frames());
    }
    d.push(b"AWR2");
    assert!(d.next().is_none());
    assert!(d.is_frames(), "first real byte picks the binary surface");

    let mut d = StreamDecoder::new(DecoderConfig::default());
    d.push(&[]);
    assert_eq!(d.next(), None);
    d.push(b"{\"cmd\":\"stats\"}\n");
    assert_eq!(
        d.next(),
        Some(Inbound::Line("{\"cmd\":\"stats\"}".into())),
        "first real byte picks the NDJSON surface"
    );
}
