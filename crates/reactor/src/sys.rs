//! Raw `epoll(7)`/`eventfd(2)` bindings, std-only.
//!
//! There is no `libc` crate in this workspace, but std itself links
//! libc on every supported unix target, so the handful of entry points
//! a readiness loop needs can be declared directly — the same pattern
//! `obs/src/signal.rs` uses for `signal(2)`. Everything is wrapped in
//! safe functions returning `io::Result`, with errno read through
//! `io::Error::last_os_error()`.
//!
//! On non-Linux targets the module still compiles: every entry point
//! returns `ErrorKind::Unsupported`, and `ReactorServer::bind` fails
//! cleanly instead of at link time. (A kqueue port is a named ROADMAP
//! follow-up; the surface here is deliberately poll-mechanism-shaped,
//! not epoll-shaped, everywhere above this module.)

/// One readiness event: `events` is a bitmask of [`EPOLLIN`] /
/// [`EPOLLOUT`] / [`EPOLLERR`] / [`EPOLLHUP`] / [`EPOLLRDHUP`];
/// `data` round-trips the token registered with [`Poller::add`].
///
/// The kernel ABI packs this struct on x86_64 (12 bytes) but uses
/// natural alignment (16 bytes) everywhere else — glibc's header
/// carries the same conditional attribute.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct Event {
    pub events: u32,
    pub data: u64,
}

impl Event {
    pub const fn empty() -> Event {
        Event { events: 0, data: 0 }
    }

    /// Copies out of the possibly-packed struct (a direct field read
    /// of a packed struct is UB-adjacent to reference).
    pub fn mask(&self) -> u32 {
        let e = *self;
        e.events
    }

    pub fn token(&self) -> u64 {
        let e = *self;
        e.data
    }
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

#[cfg(target_os = "linux")]
mod imp {
    use super::Event;
    use std::io;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const RLIMIT_NOFILE: i32 = 7;

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    // All of these are in every Linux libc std already links.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
        fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An epoll instance; closes the fd on drop.
    pub struct Poller {
        epfd: i32,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: i32, interest: u32, token: u64) -> io::Result<()> {
            let mut ev = Event {
                events: interest,
                data: token,
            };
            let evp = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev as *mut Event
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, evp) }).map(|_| ())
        }

        pub fn add(&self, fd: i32, interest: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        pub fn modify(&self, fd: i32, interest: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        pub fn delete(&self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks up to `timeout_ms` (-1 = forever) and fills `events`.
        /// EINTR is swallowed (returns 0 ready events) so callers never
        /// see a spurious error from a stray signal.
        pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(n as usize)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }

    /// A nonblocking `eventfd(2)` used to wake the event loop from
    /// dispatcher threads. Cloning shares the fd via Arc in the caller;
    /// this struct owns it and closes on drop.
    pub struct WakeFd {
        fd: i32,
    }

    impl WakeFd {
        pub fn new() -> io::Result<WakeFd> {
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            Ok(WakeFd { fd })
        }

        pub fn fd(&self) -> i32 {
            self.fd
        }

        /// Signals the loop. EAGAIN (counter saturated) still wakes the
        /// reader, so it is ignored; a wake is idempotent.
        pub fn wake(&self) {
            let one: u64 = 1;
            unsafe {
                write(self.fd, &one as *const u64 as *const u8, 8);
            }
        }

        /// Drains the counter so level-triggered epoll stops reporting
        /// the fd readable.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe {
                read(self.fd, buf.as_mut_ptr(), 8);
            }
        }
    }

    impl Drop for WakeFd {
        fn drop(&mut self) {
            unsafe {
                close(self.fd);
            }
        }
    }

    /// Raises `RLIMIT_NOFILE`'s soft limit toward `target` (clamped to
    /// the hard limit) and returns the effective soft limit. Used by
    /// the connection-scaling tests before opening 10K sockets; the
    /// limit is inherited by spawned children.
    pub fn raise_nofile_limit(target: u64) -> u64 {
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return 0;
        }
        let want = target.min(lim.max);
        if want > lim.cur {
            let new = RLimit {
                cur: want,
                max: lim.max,
            };
            if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
                return want;
            }
            return lim.cur;
        }
        lim.cur
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::Event;
    use std::io;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "aware-reactor requires epoll (Linux); use the thread-per-connection front end",
        ))
    }

    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }
        pub fn add(&self, _fd: i32, _interest: u32, _token: u64) -> io::Result<()> {
            unsupported()
        }
        pub fn modify(&self, _fd: i32, _interest: u32, _token: u64) -> io::Result<()> {
            unsupported()
        }
        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            unsupported()
        }
        pub fn wait(&self, _events: &mut [Event], _timeout_ms: i32) -> io::Result<usize> {
            unsupported()
        }
    }

    pub struct WakeFd {}

    impl WakeFd {
        pub fn new() -> io::Result<WakeFd> {
            unsupported()
        }
        pub fn fd(&self) -> i32 {
            -1
        }
        pub fn wake(&self) {}
        pub fn drain(&self) {}
    }

    pub fn raise_nofile_limit(_target: u64) -> u64 {
        0
    }
}

pub use imp::{raise_nofile_limit, Poller, WakeFd};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn wakefd_roundtrip_wakes_poller() {
        let poller = Poller::new().unwrap();
        let wake = WakeFd::new().unwrap();
        poller.add(wake.fd(), EPOLLIN, 42).unwrap();

        let mut events = [Event::empty(); 4];
        // Nothing pending: a zero-timeout wait reports no readiness.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        wake.wake();
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].mask() & EPOLLIN, 0);

        // Drain resets level-triggered readiness.
        wake.drain();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn nofile_limit_reports_a_sane_value() {
        let eff = raise_nofile_limit(1024);
        assert!(eff >= 256, "soft NOFILE limit suspiciously low: {eff}");
    }
}
